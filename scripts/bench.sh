#!/usr/bin/env bash
# Host-performance benchmark: builds the release binary and regenerates
# the schema-versioned bench document (default BENCH_PR10.json at the
# repo root; override with BENCH_OUT or --out). Wall-clock numbers are
# machine-dependent; the committed document records the shape, the
# speedup vs the embedded baseline, the multi-RHS amortization, the
# cached-operator concurrency section, and the 20-matrix suite sweep.
#
# Usage: BENCH_OUT=FILE scripts/bench.sh [--smoke] [--iters N]
#                                        [--rhs K1,K2,..] [--matrix M1,M2,..] [--out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT:-BENCH_PR10.json}"

cargo build --release --offline -p memsci-bench --bin repro
# Flags parse left to right, so a user-supplied --out in "$@" overrides
# the BENCH_OUT default.
./target/release/repro bench --out "$BENCH_OUT" "$@"
