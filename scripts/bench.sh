#!/usr/bin/env bash
# Host-performance benchmark: builds the release binary and regenerates
# the schema-versioned bench document (default BENCH_PR5.json at the
# repo root). Wall-clock numbers are machine-dependent; the committed
# document records the shape and the speedup vs the embedded baseline.
#
# Usage: scripts/bench.sh [--smoke] [--iters N] [--out FILE]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p memsci-bench --bin repro
./target/release/repro bench "$@"
