#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails
# fastest. The build environment has no registry access, so every cargo
# invocation is --offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests =="
cargo test -q --offline --workspace

echo "== telemetry smoke =="
mkdir -p target/tmp
./target/release/repro smoke --scale 0.05 --telemetry-out target/tmp/check-smoke.json
./target/release/telemetry-verify target/tmp/check-smoke.json \
    --require-nonzero adc_conversions,adc_conversions_skipped,slices_skipped,an_corrections,solve_iterations

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "All checks passed."
