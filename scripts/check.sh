#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails
# fastest. The build environment has no registry access, so every cargo
# invocation is --offline (all dependencies are workspace-local).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests =="
cargo test -q --offline --workspace

echo "== telemetry smoke =="
mkdir -p target/tmp
./target/release/repro smoke --scale 0.05 --telemetry-out target/tmp/check-smoke.json
./target/release/telemetry-verify target/tmp/check-smoke.json \
    --require-nonzero adc_conversions,adc_conversions_skipped,slices_skipped,an_corrections,solve_iterations \
    --invariants

echo "== overlap/threads determinism matrix =="
# The staged pipeline promises bit-identical solve outcomes for every
# (MEMSCI_THREADS, MEMSCI_OVERLAP) combination; run the smoke experiment
# across the matrix and diff every manifest's solves against the serial
# non-overlapped baseline.
for t in 1 4; do
    for o in 0 1; do
        MEMSCI_THREADS=$t MEMSCI_OVERLAP=$o \
            ./target/release/repro smoke --scale 0.05 \
            --telemetry-out "target/tmp/check-smoke-t${t}-o${o}.json"
    done
done
for t in 1 4; do
    for o in 0 1; do
        [ "$t" = 1 ] && [ "$o" = 0 ] && continue
        ./target/release/telemetry-verify target/tmp/check-smoke-t1-o0.json \
            --invariants --quiet \
            --diff-solves "target/tmp/check-smoke-t${t}-o${o}.json"
    done
done
echo "solve outcomes bit-identical across threads {1,4} x overlap {off,on}"

echo "== bench smoke =="
# Reduced-shape host benchmark: proves the repro bench harness runs end
# to end and that its document matches the memsci-bench schema. The
# committed full-shape document is validated the same way.
./target/release/repro bench --smoke --out target/tmp/check-bench.json
./target/release/repro bench --validate target/tmp/check-bench.json
[ -f BENCH_PR5.json ] && ./target/release/repro bench --validate BENCH_PR5.json
[ -f BENCH_PR6.json ] && ./target/release/repro bench --validate BENCH_PR6.json
[ -f BENCH_PR9.json ] && ./target/release/repro bench --validate BENCH_PR9.json
[ -f BENCH_PR10.json ] && ./target/release/repro bench --validate BENCH_PR10.json

echo "== bench regression gate =="
# Perf-regression compare: the fresh smoke document must not be slower
# than the committed baseline beyond a generous host-variance
# tolerance (ratio ceiling 1 + tolerance). A nonzero exit here is the
# gate firing.
[ -f BENCH_PR10.json ] && ./target/release/repro bench \
    --compare BENCH_PR10.json target/tmp/check-bench.json --tolerance 3.0

echo "== concurrent identity smoke =="
# The service layer promises k concurrent solves of one cached operator
# are bitwise identical to k sequential re-programming solves, with
# exactly one program and k-1 cache hits in the run manifest; the
# cache-counter invariants (hits + misses == lookups, evictions <=
# misses) must hold in the manifest too.
./target/release/repro concurrent --k 8 \
    --telemetry-out target/tmp/check-concurrent.json
./target/release/telemetry-verify target/tmp/check-concurrent.json \
    --require-nonzero cache_lookups,cache_hits,operator_programs,solve_iterations \
    --invariants

echo "== trace smoke =="
# Timeline tracing: one traced pipeline run with the residual lane
# overlapped must export valid Chrome trace_event JSON whose stage
# lanes land on distinct thread ids (Perfetto shows them stacked).
MEMSCI_THREADS=4 MEMSCI_OVERLAP=1 ./target/release/repro trace \
    --scale 0.02 --iters 4 --out target/tmp/check-trace.json
./target/release/telemetry-verify --trace target/tmp/check-trace.json \
    --require-event cluster_mvm,residual_csr,batch_mvm,iter,exact/bank_shard \
    --min-tids 2

echo "== batch identity smoke =="
# The multi-RHS lane promises bitwise batch == k solo kernels on every
# platform, and program-once amortization on the exact engine.
cargo test -q --offline -p memsci-core --test batch_identity

echo "== trace identity smoke =="
# Tracing is observability, not physics: traced and untraced solves
# must agree bit for bit on every engine, and overlapped stage lanes
# must trace on distinct tids.
cargo test -q --offline -p memsci-core --test trace_identity

echo "== telemetry stream smoke =="
# Incremental JSONL manifests: one record per Monte-Carlo sweep point.
./target/release/repro fig13 --runs 2 \
    --telemetry-stream target/tmp/check-stream.jsonl > /dev/null
./target/release/telemetry-verify --stream target/tmp/check-stream.jsonl

echo "== fault campaign smoke =="
# Device-reliability gate: a tiny campaign at a nonzero fault rate must
# inject stuck cells, detect them through the AN code, repair via the
# wear-aware reprogram-and-retry lane, and keep the counter ledger
# consistent. Its JSONL stream and report must validate, and so must
# any committed campaign artifact.
./target/release/repro faults --runs 1 --scale 0.5 \
    --out target/tmp/check-faults.json \
    --telemetry-out target/tmp/check-faults-manifest.json \
    --telemetry-stream target/tmp/check-faults-stream.jsonl > /dev/null
./target/release/repro faults --validate target/tmp/check-faults.json
./target/release/telemetry-verify target/tmp/check-faults-manifest.json \
    --require-nonzero faults_injected,faults_detected,faults_corrected,cluster_reprograms,wear_writes_max \
    --invariants
./target/release/telemetry-verify --stream target/tmp/check-faults-stream.jsonl
[ -f FAULTS_PR7.json ] && ./target/release/repro faults --validate FAULTS_PR7.json
# The v2 variation axes (device-to-device sigma, endurance growth)
# must sweep and validate too.
./target/release/repro faults --runs 1 --scale 0.5 \
    --d2d 0,0.03 --endurance 0,0.02 \
    --out target/tmp/check-faults-sweep.json > /dev/null
./target/release/repro faults --validate target/tmp/check-faults-sweep.json

echo "== alloc gate (debug) =="
# The counting allocator only exists in debug builds; this gates the
# warm SpMV hot path against allocation regressions.
cargo test -q --offline -p memsci-core --test alloc_gate

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "All checks passed."
