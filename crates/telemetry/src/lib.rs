//! Telemetry for the memristive scientific-computing simulator:
//! hierarchical wall-clock spans, typed hardware event counters, and
//! schema-versioned JSON run manifests.
//!
//! The crate is dependency-free (like `memsci-exec`) and built around a
//! single global sink guarded by one `AtomicBool`:
//!
//! - **Disabled** (the default), every instrumentation point costs one
//!   relaxed atomic load and records nothing, so simulator hot paths
//!   stay clean in ordinary runs.
//! - **Enabled** via [`enable`], [`SolveOptions::with_telemetry`] in
//!   `memsci-solvers`, or the `MEMSCI_TELEMETRY` environment variable,
//!   spans aggregate per path, counters accumulate, and per-solve
//!   deltas can be captured with [`Capture`].
//!
//! Telemetry is strictly read-only on the math: enabling it must never
//! change a numeric result (the workspace carries bitwise-identity
//! tests for this).

#![warn(missing_docs)]

mod counters;
pub mod json;
pub mod manifest;
mod span;
pub mod stream;
pub mod trace;

pub use counters::{incr, Counter, HwCounters, COUNTER_COUNT};
pub use manifest::{
    build_manifest, check_invariants, diff_solves, validate_manifest, write_manifest,
    ManifestError, SCHEMA_MIN_VERSION, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use span::{span, LatencyHistogram, Span, SpanStat, HISTOGRAM_BUCKETS};
pub use stream::{validate_stream, ManifestStream, STREAM_SCHEMA_NAME, STREAM_SCHEMA_VERSION};
pub use trace::{validate_trace, TraceError, TraceEvent, TracePhase, TraceSummary};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Environment variable controlling the global sink for binaries that
/// opt in (see [`env_setting`]).
pub const TELEMETRY_ENV: &str = "MEMSCI_TELEMETRY";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Locks a mutex, recovering from poisoning (telemetry state stays
/// usable even if a panicking thread held a guard).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// True when the global sink is recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the global sink on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the global sink off (already-recorded data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// How a binary should interpret `MEMSCI_TELEMETRY`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvSetting {
    /// Telemetry stays off (unset, empty, `0`, `off`, `false`).
    Disabled,
    /// Telemetry on, no manifest file (`1`, `on`, `true`).
    Enabled,
    /// Telemetry on, manifest written to this path (any other value).
    File(String),
}

/// Parses the `MEMSCI_TELEMETRY` environment variable.
pub fn env_setting() -> EnvSetting {
    match std::env::var(TELEMETRY_ENV) {
        Err(_) => EnvSetting::Disabled,
        Ok(v) => match v.trim() {
            "" | "0" | "off" | "false" => EnvSetting::Disabled,
            "1" | "on" | "true" => EnvSetting::Enabled,
            path => EnvSetting::File(path.to_string()),
        },
    }
}

/// One recorded parallel section (mirrors `memsci_exec::ExecStats`
/// without depending on that crate).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecSection {
    /// Section name (e.g. `engine/spmv`).
    pub name: String,
    /// Times the section ran.
    pub calls: u64,
    /// Largest worker-thread count observed.
    pub max_threads: usize,
    /// Total tasks dispatched across all calls.
    pub tasks: u64,
    /// Total wall-clock seconds across all calls.
    pub wall_seconds: f64,
}

static EXEC_SECTIONS: Mutex<Vec<ExecSection>> = Mutex::new(Vec::new());

/// Records one execution of a parallel section. No-op while the sink is
/// disabled. Sections with the same name aggregate.
pub fn record_exec(name: &str, threads: usize, tasks: usize, wall_seconds: f64) {
    if !enabled() {
        return;
    }
    let mut sections = lock(&EXEC_SECTIONS);
    if let Some(s) = sections.iter_mut().find(|s| s.name == name) {
        s.calls += 1;
        s.max_threads = s.max_threads.max(threads);
        s.tasks += tasks as u64;
        s.wall_seconds += wall_seconds;
    } else {
        sections.push(ExecSection {
            name: name.to_string(),
            calls: 1,
            max_threads: threads,
            tasks: tasks as u64,
            wall_seconds,
        });
    }
}

/// One warning routed through the telemetry sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarningEvent {
    /// Stable category slug (e.g. `geometric_mean`).
    pub category: String,
    /// Human-readable message.
    pub message: String,
}

static WARNINGS: Mutex<Vec<WarningEvent>> = Mutex::new(Vec::new());
const MAX_WARNINGS: usize = 256;

/// Records a warning event and bumps [`Counter::Warnings`].
///
/// Unlike ordinary counters this records even while the sink is
/// disabled — warnings are rare and must not be lost. Stored events cap
/// at a fixed limit; the counter keeps the true total.
pub fn warn(category: &str, message: &str) {
    counters::incr_always(Counter::Warnings, 1);
    let mut warnings = lock(&WARNINGS);
    if warnings.len() < MAX_WARNINGS {
        warnings.push(WarningEvent {
            category: category.to_string(),
            message: message.to_string(),
        });
    }
}

/// Total warnings recorded so far (independent of the sink state).
pub fn warning_count() -> u64 {
    counters::snapshot_counters().get(Counter::Warnings)
}

/// Final state of one solve, as recorded for the run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Run label (matrix name, experiment id, ...).
    pub label: String,
    /// Solver name (`cg`, `bicgstab`, ...).
    pub solver: String,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the solve hit its tolerance.
    pub converged: bool,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Wall-clock seconds of the solve.
    pub time_seconds: f64,
    /// Modelled accelerator energy in joules.
    pub energy_joules: f64,
}

static OUTCOMES: Mutex<Vec<SolveOutcome>> = Mutex::new(Vec::new());

/// Records a solve outcome for the manifest. No-op while disabled.
pub fn record_outcome(outcome: SolveOutcome) {
    if !enabled() {
        return;
    }
    lock(&OUTCOMES).push(outcome);
}

/// A point-in-time copy of everything the sink has recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Hardware event counters.
    pub counters: HwCounters,
    /// Aggregated spans, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Recorded parallel sections, in first-seen order.
    pub exec: Vec<ExecSection>,
    /// Warning events (capped; the counter keeps the true total).
    pub warnings: Vec<WarningEvent>,
    /// Solve outcomes, in completion order.
    pub outcomes: Vec<SolveOutcome>,
}

/// Snapshots the entire sink.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: counters::snapshot_counters(),
        spans: span::snapshot_spans(),
        exec: lock(&EXEC_SECTIONS).clone(),
        warnings: lock(&WARNINGS).clone(),
        outcomes: lock(&OUTCOMES).clone(),
    }
}

/// Clears all recorded data (counters, spans, sections, warnings,
/// outcomes, trace events). The enabled flags — sink and trace — are
/// left untouched, as is the trace ring allocation.
pub fn reset() {
    counters::reset_counters();
    span::reset_spans();
    lock(&EXEC_SECTIONS).clear();
    lock(&WARNINGS).clear();
    lock(&OUTCOMES).clear();
    trace::clear();
}

/// Telemetry accumulated by one solve: counter deltas, span deltas, and
/// the parallel sections active during the solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunTelemetry {
    /// Hardware events attributed to this solve.
    pub counters: HwCounters,
    /// Span statistics attributed to this solve.
    pub spans: Vec<SpanStat>,
    /// Parallel sections recorded during this solve (cumulative values,
    /// since sections aggregate globally).
    pub exec: Vec<ExecSection>,
}

/// Captures the sink state at solve start so [`Capture::finish`] can
/// attribute the delta to that solve.
#[derive(Debug)]
pub struct Capture {
    counters: HwCounters,
    spans: Vec<SpanStat>,
    active: bool,
}

impl Capture {
    /// Starts a capture. When `active` is false (telemetry not
    /// requested), the capture is free and [`Capture::finish`] returns
    /// `None`.
    pub fn start(active: bool) -> Capture {
        if !active {
            return Capture {
                counters: HwCounters::default(),
                spans: Vec::new(),
                active: false,
            };
        }
        enable();
        Capture {
            counters: counters::snapshot_counters(),
            spans: span::snapshot_spans(),
            active: true,
        }
    }

    /// Finishes the capture, returning what accumulated since
    /// [`Capture::start`].
    pub fn finish(self) -> Option<RunTelemetry> {
        if !self.active {
            return None;
        }
        let now = snapshot();
        Some(RunTelemetry {
            counters: now.counters.delta_since(&self.counters),
            spans: span::delta_spans(&now.spans, &self.spans),
            exec: now.exec,
        })
    }
}

/// Serializes tests that assert on global sink state. Cargo runs tests
/// within one binary in parallel; every test that enables/resets the
/// sink or asserts exact counter values must hold this guard.
pub fn exclusive_for_tests() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    lock(&GATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_incr_is_dropped_and_enabled_incr_lands() {
        let _x = exclusive_for_tests();
        reset();
        disable();
        incr(Counter::AdcConversions, 5);
        assert_eq!(snapshot().counters.get(Counter::AdcConversions), 0);
        enable();
        incr(Counter::AdcConversions, 5);
        incr(Counter::SlicesSkipped, 2);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counters.get(Counter::AdcConversions), 5);
        assert_eq!(snap.counters.get(Counter::SlicesSkipped), 2);
        reset();
        assert!(snapshot().counters.is_zero());
    }

    #[test]
    fn capture_attributes_deltas() {
        let _x = exclusive_for_tests();
        reset();
        disable();

        // Inactive capture: free, returns None, leaves the sink off.
        let cap = Capture::start(false);
        incr(Counter::DotOps, 3);
        assert!(cap.finish().is_none());
        assert!(!enabled());

        // Active capture: enables the sink and attributes the delta.
        incr(Counter::DotOps, 100); // dropped: sink still off
        let cap = Capture::start(true);
        assert!(enabled());
        incr(Counter::DotOps, 3);
        {
            let _g = span("solve/test");
        }
        let run = cap.finish().unwrap();
        assert_eq!(run.counters.get(Counter::DotOps), 3);
        assert_eq!(run.spans.len(), 1);
        assert_eq!(run.spans[0].name, "solve/test");
        disable();
        reset();
    }

    #[test]
    fn exec_sections_aggregate_by_name() {
        let _x = exclusive_for_tests();
        reset();
        enable();
        record_exec("engine/spmv", 4, 10, 0.5);
        record_exec("engine/spmv", 2, 6, 0.25);
        record_exec("bench/entries", 4, 3, 1.0);
        disable();
        record_exec("dropped", 1, 1, 1.0);
        let snap = snapshot();
        reset();
        assert_eq!(snap.exec.len(), 2);
        let spmv = &snap.exec[0];
        assert_eq!(
            (spmv.name.as_str(), spmv.calls, spmv.max_threads, spmv.tasks),
            ("engine/spmv", 2, 4, 16)
        );
        assert!((spmv.wall_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn warnings_record_even_while_disabled() {
        let _x = exclusive_for_tests();
        reset();
        disable();
        warn("geometric_mean", "skipped 2 non-positive values");
        let snap = snapshot();
        assert_eq!(snap.counters.get(Counter::Warnings), 1);
        assert_eq!(snap.warnings.len(), 1);
        assert_eq!(snap.warnings[0].category, "geometric_mean");
        assert_eq!(warning_count(), 1);
        reset();
    }

    #[test]
    fn env_setting_parses_all_forms() {
        // env_setting reads the process env, so drive the parser via a
        // controlled set/remove sequence under the test gate.
        let _x = exclusive_for_tests();
        let cases = [
            ("", EnvSetting::Disabled),
            ("0", EnvSetting::Disabled),
            ("off", EnvSetting::Disabled),
            ("false", EnvSetting::Disabled),
            ("1", EnvSetting::Enabled),
            ("on", EnvSetting::Enabled),
            ("true", EnvSetting::Enabled),
            ("run.json", EnvSetting::File("run.json".to_string())),
        ];
        for (value, expected) in cases {
            std::env::set_var(TELEMETRY_ENV, value);
            assert_eq!(env_setting(), expected, "value {value:?}");
        }
        std::env::remove_var(TELEMETRY_ENV);
        assert_eq!(env_setting(), EnvSetting::Disabled);
    }
}
