//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no registry access, so manifests are
//! emitted and validated with this dependency-free implementation
//! instead of `serde_json`. Objects preserve insertion order (they are
//! vectors of pairs), which keeps emitted manifests deterministic and
//! diffable; the parser accepts arbitrary well-formed JSON so
//! `telemetry-verify` can check externally produced files too.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer, kept exact beyond 2^53.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace (JSONL records).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_string(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; null keeps the document valid and
        // makes the hole visible.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // Rust's shortest round-trip formatting is valid JSON.
        out.push_str(&format!("{v}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input, trailing garbage, or
/// nesting deeper than 128 levels.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: try to combine; otherwise
                            // substitute (validation never depends on
                            // exotic strings).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Keep exact integers exact where possible.
        if !s.contains(['.', 'e', 'E']) {
            if let Ok(v) = s.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("memsci \"quoted\"\n".into())),
            ("version".into(), Json::UInt(1)),
            ("ratio".into(), Json::Num(0.125)),
            ("big".into(), Json::UInt(u64::MAX)),
            ("none".into(), Json::Null),
            ("ok".into(), Json::Bool(true)),
            (
                "items".into(),
                Json::Arr(vec![Json::UInt(1), Json::Num(-2.5), Json::Str("x".into())]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_plain_json() {
        let v = parse(r#"{"a": [1, 2.5, "s", null, true], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "{} trailing",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb: fails cleanly instead of blowing the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let doc = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(
            parse(&doc.to_string_pretty()).unwrap().as_arr().unwrap(),
            &[Json::Null, Json::Null]
        );
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert!(v.as_obj().is_some());
        assert_eq!(Json::Num(2.5).as_u64(), None);
        assert_eq!(Json::Num(4.0).as_u64(), Some(4));
    }
}
