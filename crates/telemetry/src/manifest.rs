//! Schema-versioned JSON run manifests.
//!
//! A manifest captures everything needed to attribute a run's cost:
//! the schema identity, run configuration key/values, thread count,
//! per-span wall-clock statistics, the full hardware counter set,
//! recorded parallel sections, warnings, and per-solve outcomes.
//! [`validate_manifest`] is the machine-checkable contract used by the
//! `telemetry-verify` binary and by `scripts/check.sh`.

use crate::json::{parse, Json, JsonError};
use crate::{Counter, TelemetrySnapshot};

/// Manifest schema identifier.
pub const SCHEMA_NAME: &str = "memsci-telemetry-manifest";
/// Current manifest schema version. Version 2 added span latency
/// distributions (`min_seconds`/`max_seconds`/`p50`/`p95`/`p99` and
/// the log-bucketed histogram) to each `spans[]` entry.
pub const SCHEMA_VERSION: u64 = 2;
/// Oldest schema version [`validate_manifest`] still accepts.
pub const SCHEMA_MIN_VERSION: u64 = 1;

/// Builds a manifest document from a telemetry snapshot plus run
/// configuration pairs supplied by the caller (binary name, matrix,
/// scale, ...). The document is deterministic given identical inputs.
pub fn build_manifest(snapshot: &TelemetrySnapshot, config: &[(&str, Json)]) -> Json {
    let mut root = vec![
        ("schema".to_string(), Json::Str(SCHEMA_NAME.to_string())),
        ("schema_version".to_string(), Json::UInt(SCHEMA_VERSION)),
    ];

    root.push((
        "config".to_string(),
        Json::Obj(
            config
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        ),
    ));

    root.push((
        "counters".to_string(),
        Json::Obj(
            snapshot
                .counters
                .iter()
                .map(|(name, value)| (name.to_string(), Json::UInt(value)))
                .collect(),
        ),
    ));

    root.push((
        "spans".to_string(),
        Json::Arr(
            snapshot
                .spans
                .iter()
                .map(|s| {
                    let histogram = s
                        .histogram
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
                        .collect();
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(s.name.clone())),
                        ("calls".to_string(), Json::UInt(s.calls)),
                        ("seconds".to_string(), Json::Num(s.seconds)),
                        ("min_seconds".to_string(), Json::Num(s.min_seconds)),
                        ("max_seconds".to_string(), Json::Num(s.max_seconds)),
                        ("p50_seconds".to_string(), Json::Num(s.p50_seconds)),
                        ("p95_seconds".to_string(), Json::Num(s.p95_seconds)),
                        ("p99_seconds".to_string(), Json::Num(s.p99_seconds)),
                        ("histogram".to_string(), Json::Arr(histogram)),
                    ])
                })
                .collect(),
        ),
    ));

    root.push((
        "exec_sections".to_string(),
        Json::Arr(
            snapshot
                .exec
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("name".to_string(), Json::Str(e.name.clone())),
                        ("calls".to_string(), Json::UInt(e.calls)),
                        ("max_threads".to_string(), Json::UInt(e.max_threads as u64)),
                        ("tasks".to_string(), Json::UInt(e.tasks)),
                        ("wall_seconds".to_string(), Json::Num(e.wall_seconds)),
                    ])
                })
                .collect(),
        ),
    ));

    root.push((
        "warnings".to_string(),
        Json::Arr(
            snapshot
                .warnings
                .iter()
                .map(|w| {
                    Json::Obj(vec![
                        ("category".to_string(), Json::Str(w.category.clone())),
                        ("message".to_string(), Json::Str(w.message.clone())),
                    ])
                })
                .collect(),
        ),
    ));

    root.push((
        "solves".to_string(),
        Json::Arr(
            snapshot
                .outcomes
                .iter()
                .map(|o| {
                    Json::Obj(vec![
                        ("label".to_string(), Json::Str(o.label.clone())),
                        ("solver".to_string(), Json::Str(o.solver.clone())),
                        ("iterations".to_string(), Json::UInt(o.iterations as u64)),
                        ("converged".to_string(), Json::Bool(o.converged)),
                        (
                            "relative_residual".to_string(),
                            Json::Num(o.relative_residual),
                        ),
                        ("time_seconds".to_string(), Json::Num(o.time_seconds)),
                        ("energy_joules".to_string(), Json::Num(o.energy_joules)),
                    ])
                })
                .collect(),
        ),
    ));

    Json::Obj(root)
}

/// A manifest validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid manifest: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

impl From<JsonError> for ManifestError {
    fn from(e: JsonError) -> Self {
        ManifestError(e.to_string())
    }
}

fn fail(msg: impl Into<String>) -> ManifestError {
    ManifestError(msg.into())
}

/// Parses and validates manifest text against the supported schema
/// range ([`SCHEMA_MIN_VERSION`]`..=`[`SCHEMA_VERSION`]).
///
/// Checks the schema identity, that every cataloged counter is present
/// as a non-negative integer, and that spans / exec sections / solves
/// are well-formed. Version-2 documents must additionally carry the
/// span latency-distribution fields, with the histogram total equal to
/// the call count. Returns the parsed document for further inspection.
///
/// # Errors
///
/// Returns [`ManifestError`] describing the first violation found.
pub fn validate_manifest(text: &str) -> Result<Json, ManifestError> {
    let doc = parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA_NAME) {
        return Err(fail(format!("`schema` must be \"{SCHEMA_NAME}\"")));
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .filter(|v| (SCHEMA_MIN_VERSION..=SCHEMA_VERSION).contains(v))
        .ok_or_else(|| {
            fail(format!(
                "`schema_version` must be in {SCHEMA_MIN_VERSION}..={SCHEMA_VERSION}"
            ))
        })?;
    doc.get("config")
        .and_then(Json::as_obj)
        .ok_or_else(|| fail("`config` must be an object"))?;

    let counters = doc
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or_else(|| fail("`counters` must be an object"))?;
    for c in Counter::ALL {
        let value = counters
            .iter()
            .find(|(k, _)| k == c.name())
            .map(|(_, v)| v)
            .ok_or_else(|| fail(format!("missing counter `{}`", c.name())))?;
        if value.as_u64().is_none() {
            return Err(fail(format!(
                "counter `{}` must be a non-negative integer",
                c.name()
            )));
        }
    }

    let spans = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`spans` must be an array"))?;
    for (i, s) in spans.iter().enumerate() {
        let name = s.get("name").and_then(Json::as_str);
        let calls = s.get("calls").and_then(Json::as_u64);
        let seconds = s.get("seconds").and_then(Json::as_f64);
        if name.is_none() || calls.is_none() || seconds.is_none() {
            return Err(fail(format!(
                "spans[{i}] needs string `name`, integer `calls`, number `seconds`"
            )));
        }
        if calls == Some(0) {
            return Err(fail(format!("spans[{i}] has zero calls")));
        }
        if version >= 2 {
            validate_span_distribution(i, s, calls.unwrap_or(0))?;
        }
    }

    let sections = doc
        .get("exec_sections")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`exec_sections` must be an array"))?;
    for (i, e) in sections.iter().enumerate() {
        if e.get("name").and_then(Json::as_str).is_none()
            || e.get("calls").and_then(Json::as_u64).is_none()
            || e.get("max_threads").and_then(Json::as_u64).is_none()
            || e.get("tasks").and_then(Json::as_u64).is_none()
            || e.get("wall_seconds").and_then(Json::as_f64).is_none()
        {
            return Err(fail(format!("exec_sections[{i}] is malformed")));
        }
    }

    doc.get("warnings")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`warnings` must be an array"))?;

    let solves = doc
        .get("solves")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`solves` must be an array"))?;
    for (i, s) in solves.iter().enumerate() {
        if s.get("label").and_then(Json::as_str).is_none()
            || s.get("solver").and_then(Json::as_str).is_none()
            || s.get("iterations").and_then(Json::as_u64).is_none()
            || s.get("converged").and_then(Json::as_bool).is_none()
        {
            return Err(fail(format!("solves[{i}] is malformed")));
        }
    }

    Ok(doc)
}

/// Version ≥ 2 span entries carry the latency distribution: ordered
/// percentiles, min ≤ max, and a sparse `[bucket, count]` histogram
/// whose total equals the call count.
fn validate_span_distribution(i: usize, s: &Json, calls: u64) -> Result<(), ManifestError> {
    let field = |key: &str| -> Result<f64, ManifestError> {
        s.get(key)
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| {
                fail(format!(
                    "spans[{i}] needs a finite non-negative number `{key}`"
                ))
            })
    };
    let min = field("min_seconds")?;
    let max = field("max_seconds")?;
    let p50 = field("p50_seconds")?;
    let p95 = field("p95_seconds")?;
    let p99 = field("p99_seconds")?;
    if min > max {
        return Err(fail(format!(
            "spans[{i}] has min_seconds ({min}) above max_seconds ({max})"
        )));
    }
    if p50 > p95 || p95 > p99 {
        return Err(fail(format!(
            "spans[{i}] percentiles must be ordered: p50 {p50}, p95 {p95}, p99 {p99}"
        )));
    }
    let histogram = s
        .get("histogram")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail(format!("spans[{i}] needs a `histogram` array")))?;
    let mut total = 0u64;
    for (j, pair) in histogram.iter().enumerate() {
        let ok = pair.as_arr().is_some_and(|p| {
            p.len() == 2
                && p[0]
                    .as_u64()
                    .is_some_and(|b| b < crate::HISTOGRAM_BUCKETS as u64)
                && p[1].as_u64().is_some()
        });
        if !ok {
            return Err(fail(format!(
                "spans[{i}].histogram[{j}] must be a [bucket < {}, count] pair",
                crate::HISTOGRAM_BUCKETS
            )));
        }
        total += pair.as_arr().unwrap()[1].as_u64().unwrap();
    }
    if total != calls {
        return Err(fail(format!(
            "spans[{i}] histogram total ({total}) disagrees with calls ({calls})"
        )));
    }
    Ok(())
}

fn counter_value(doc: &Json, name: &str) -> u64 {
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Checks cross-counter physical invariants of a validated manifest —
/// relationships the hardware model guarantees regardless of workload:
///
/// * headstart hits are a subset of performed ADC conversions;
/// * every crossbar slice application converts (or skips) at least one
///   row and at most a full 512-row column set;
/// * vector slices applied never exceed total slice applications
///   (each activation applies one slice across ≥1 bit group);
/// * residual flops come in multiply-add pairs, so the count is even;
/// * every batched MVM kernel streams at least one right-hand side.
///
/// # Errors
///
/// Returns [`ManifestError`] naming the first violated invariant.
pub fn check_invariants(doc: &Json) -> Result<(), ManifestError> {
    let conversions = counter_value(doc, "adc_conversions");
    let skipped = counter_value(doc, "adc_conversions_skipped");
    let headstart = counter_value(doc, "adc_headstart_hits");
    if headstart > conversions {
        return Err(fail(format!(
            "adc_headstart_hits ({headstart}) exceeds adc_conversions ({conversions})"
        )));
    }
    let activations: u64 = [
        "xbar_activations_512",
        "xbar_activations_256",
        "xbar_activations_128",
        "xbar_activations_64",
        "xbar_activations_other",
    ]
    .iter()
    .map(|n| counter_value(doc, n))
    .sum();
    let outcomes = conversions + skipped;
    if activations > 0 {
        if outcomes < activations {
            return Err(fail(format!(
                "{activations} slice activations produced only {outcomes} conversion outcomes"
            )));
        }
        if outcomes > activations.saturating_mul(512) {
            return Err(fail(format!(
                "{outcomes} conversion outcomes from {activations} activations exceeds 512 rows each"
            )));
        }
    } else if outcomes > 0 {
        return Err(fail(format!(
            "{outcomes} conversion outcomes with zero slice activations"
        )));
    }
    let slices_applied = counter_value(doc, "slices_applied");
    if slices_applied > activations {
        return Err(fail(format!(
            "slices_applied ({slices_applied}) exceeds total crossbar activations ({activations})"
        )));
    }
    let residual_flops = counter_value(doc, "residual_flops");
    if !residual_flops.is_multiple_of(2) {
        return Err(fail(format!(
            "residual_flops ({residual_flops}) must be even (multiply-add pairs)"
        )));
    }
    let batch_ops = counter_value(doc, "batch_mvm_ops");
    let batch_rhs = counter_value(doc, "batch_rhs_vectors");
    if batch_rhs < batch_ops {
        return Err(fail(format!(
            "batch_rhs_vectors ({batch_rhs}) below batch_mvm_ops ({batch_ops}): every batch carries at least one RHS"
        )));
    }
    let faults_detected = counter_value(doc, "faults_detected");
    let an_detections = counter_value(doc, "an_detections");
    if faults_detected > an_detections {
        return Err(fail(format!(
            "faults_detected ({faults_detected}) exceeds an_detections ({an_detections}): fault attribution without an AN detection"
        )));
    }
    let faults_corrected = counter_value(doc, "faults_corrected");
    let an_corrections = counter_value(doc, "an_corrections");
    if faults_corrected > an_corrections {
        return Err(fail(format!(
            "faults_corrected ({faults_corrected}) exceeds an_corrections ({an_corrections}): fault attribution without an AN correction"
        )));
    }
    let reprograms = counter_value(doc, "cluster_reprograms");
    let exhausted = counter_value(doc, "retries_exhausted");
    let detected_events = faults_detected + an_detections;
    if reprograms > 0 && detected_events == 0 {
        return Err(fail(format!(
            "cluster_reprograms ({reprograms}) with zero detections: repairs must be triggered by detected faults"
        )));
    }
    if exhausted > 0 && reprograms == 0 {
        return Err(fail(format!(
            "retries_exhausted ({exhausted}) with zero cluster_reprograms: a retry budget cannot run out before any retry"
        )));
    }
    let wear_max = counter_value(doc, "wear_writes_max");
    let programs = counter_value(doc, "operator_programs");
    if wear_max > 0 && programs + reprograms == 0 {
        return Err(fail(format!(
            "wear_writes_max ({wear_max}) with zero operator_programs and zero cluster_reprograms: wear requires writes"
        )));
    }
    let cache_lookups = counter_value(doc, "cache_lookups");
    let cache_hits = counter_value(doc, "cache_hits");
    let cache_misses = counter_value(doc, "cache_misses");
    let cache_evictions = counter_value(doc, "cache_evictions");
    if cache_hits + cache_misses != cache_lookups {
        return Err(fail(format!(
            "cache_hits ({cache_hits}) + cache_misses ({cache_misses}) disagrees with cache_lookups ({cache_lookups}): every lookup is exactly one hit or one miss"
        )));
    }
    if cache_evictions > cache_misses {
        return Err(fail(format!(
            "cache_evictions ({cache_evictions}) exceeds cache_misses ({cache_misses}): only a miss inserts an operator to evict"
        )));
    }
    Ok(())
}

/// Compares the solve outcomes of two validated manifests for bitwise
/// equality: same solve count and, per solve, identical label, solver,
/// iteration count, convergence flag, and bit-identical residual, time,
/// and energy (floats are compared by [`f64::to_bits`]; the JSON writer
/// round-trips f64 exactly, so this detects any numeric divergence).
///
/// # Errors
///
/// Returns [`ManifestError`] locating the first divergence.
pub fn diff_solves(a: &Json, b: &Json) -> Result<(), ManifestError> {
    let sa = a
        .get("solves")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("left manifest has no `solves` array"))?;
    let sb = b
        .get("solves")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("right manifest has no `solves` array"))?;
    if sa.len() != sb.len() {
        return Err(fail(format!(
            "solve count differs: {} vs {}",
            sa.len(),
            sb.len()
        )));
    }
    for (i, (x, y)) in sa.iter().zip(sb).enumerate() {
        for key in ["label", "solver"] {
            let vx = x.get(key).and_then(Json::as_str);
            let vy = y.get(key).and_then(Json::as_str);
            if vx != vy {
                return Err(fail(format!("solves[{i}].{key} differs: {vx:?} vs {vy:?}")));
            }
        }
        let ix = x.get("iterations").and_then(Json::as_u64);
        let iy = y.get("iterations").and_then(Json::as_u64);
        if ix != iy {
            return Err(fail(format!(
                "solves[{i}].iterations differs: {ix:?} vs {iy:?}"
            )));
        }
        let cx = x.get("converged").and_then(Json::as_bool);
        let cy = y.get("converged").and_then(Json::as_bool);
        if cx != cy {
            return Err(fail(format!(
                "solves[{i}].converged differs: {cx:?} vs {cy:?}"
            )));
        }
        for key in ["relative_residual", "time_seconds", "energy_joules"] {
            let vx = x.get(key).and_then(Json::as_f64);
            let vy = y.get(key).and_then(Json::as_f64);
            if vx.map(f64::to_bits) != vy.map(f64::to_bits) {
                return Err(fail(format!(
                    "solves[{i}].{key} differs bitwise: {vx:?} vs {vy:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Renders a manifest and writes it to `path`.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_manifest(
    path: &std::path::Path,
    snapshot: &TelemetrySnapshot,
    config: &[(&str, Json)],
) -> std::io::Result<()> {
    let doc = build_manifest(snapshot, config);
    std::fs::write(path, doc.to_string_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecSection, SolveOutcome, SpanStat, WarningEvent};

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: crate::HwCounters::default(),
            spans: vec![SpanStat::from_durations("solve/cg", &[0.25])],
            exec: vec![ExecSection {
                name: "engine/spmv".into(),
                calls: 3,
                max_threads: 4,
                tasks: 12,
                wall_seconds: 0.125,
            }],
            warnings: vec![WarningEvent {
                category: "geometric_mean".into(),
                message: "skipped 1 non-positive value".into(),
            }],
            outcomes: vec![SolveOutcome {
                label: "Pres_Poisson".into(),
                solver: "cg".into(),
                iterations: 42,
                converged: true,
                relative_residual: 1e-9,
                time_seconds: 0.5,
                energy_joules: 0.001,
            }],
        }
    }

    #[test]
    fn built_manifest_validates() {
        let snap = sample_snapshot();
        let doc = build_manifest(&snap, &[("matrix", Json::Str("Pres_Poisson".into()))]);
        let text = doc.to_string_pretty();
        let parsed = validate_manifest(&text).unwrap();
        assert_eq!(
            parsed
                .get("config")
                .unwrap()
                .get("matrix")
                .unwrap()
                .as_str(),
            Some("Pres_Poisson")
        );
        assert_eq!(
            parsed.get("solves").unwrap().as_arr().unwrap()[0]
                .get("iterations")
                .unwrap()
                .as_u64(),
            Some(42)
        );
        // Determinism: same inputs, same bytes.
        assert_eq!(
            text,
            build_manifest(&snap, &[("matrix", Json::Str("Pres_Poisson".into()))])
                .to_string_pretty()
        );
    }

    #[test]
    fn validation_rejects_missing_counters() {
        let snap = sample_snapshot();
        let text = build_manifest(&snap, &[]).to_string_pretty();
        let broken = text.replace("\"adc_conversions\"", "\"adc_conversionz\"");
        let err = validate_manifest(&broken).unwrap_err();
        assert!(err.0.contains("adc_conversions"), "{err}");
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        assert!(validate_manifest("{\"schema\": \"other\"}").is_err());
        assert!(validate_manifest("not json").is_err());
        let snap = sample_snapshot();
        let text = build_manifest(&snap, &[]).to_string_pretty();
        let broken = text.replace("\"schema_version\": 2", "\"schema_version\": 99");
        assert!(validate_manifest(&broken).is_err());
    }

    #[test]
    fn version_1_manifests_still_validate() {
        // A v1 document has no distribution fields on its spans; the
        // validator must not demand them. (Extra fields are ignored,
        // so rewriting the version of a v2 doc exercises the same
        // acceptance path as a genuine v1 file.)
        let text = build_manifest(&sample_snapshot(), &[]).to_string_pretty();
        let v1 = text.replace("\"schema_version\": 2", "\"schema_version\": 1");
        validate_manifest(&v1).unwrap();
        // Version 0 and missing versions stay rejected.
        let v0 = text.replace("\"schema_version\": 2", "\"schema_version\": 0");
        assert!(validate_manifest(&v0).is_err());
    }

    #[test]
    fn v2_validation_rejects_broken_distributions() {
        let text = build_manifest(&sample_snapshot(), &[]).to_string_pretty();
        // Remove the histogram from the only span.
        let no_hist = text.replace("\"histogram\"", "\"histogram_gone\"");
        assert!(validate_manifest(&no_hist)
            .unwrap_err()
            .0
            .contains("histogram"));
        // A histogram that disagrees with the call count.
        let miscount = text.replace("\"calls\": 1", "\"calls\": 7");
        assert!(validate_manifest(&miscount)
            .unwrap_err()
            .0
            .contains("disagrees"));
        // Negative extremum (percentiles are bucket midpoints, so the
        // exact min is the one field with a predictable rendering).
        let negative = text.replace("\"min_seconds\": 0.25", "\"min_seconds\": -1");
        assert!(validate_manifest(&negative)
            .unwrap_err()
            .0
            .contains("min_seconds"));
    }

    fn manifest_with_counters(pairs: &[(&str, u64)]) -> Json {
        let text = build_manifest(&sample_snapshot(), &[]).to_string_pretty();
        let mut doc = validate_manifest(&text).unwrap();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields {
                if key == "counters" {
                    if let Json::Obj(counters) = value {
                        for (name, slot) in counters {
                            if let Some((_, v)) = pairs.iter().find(|(n, _)| n == name) {
                                *slot = Json::UInt(*v);
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn invariants_accept_consistent_counters() {
        // All-zero counters are trivially consistent.
        check_invariants(&manifest_with_counters(&[])).unwrap();
        // A plausible run: 2 activations of a 4-row cluster, one slice
        // applied, half the conversions headstarted, paired flops.
        check_invariants(&manifest_with_counters(&[
            ("xbar_activations_128", 2),
            ("adc_conversions", 6),
            ("adc_conversions_skipped", 2),
            ("adc_headstart_hits", 3),
            ("slices_applied", 1),
            ("residual_flops", 10),
        ]))
        .unwrap();
    }

    #[test]
    fn invariants_reject_impossible_counters() {
        let headstart = manifest_with_counters(&[("adc_headstart_hits", 1)]);
        assert!(check_invariants(&headstart)
            .unwrap_err()
            .0
            .contains("adc_headstart_hits"));
        // Conversions without a single crossbar activation.
        let orphan = manifest_with_counters(&[("adc_conversions", 4)]);
        assert!(check_invariants(&orphan).unwrap_err().0.contains("zero"));
        // More outcomes than 512-row columns can produce.
        let overfull =
            manifest_with_counters(&[("xbar_activations_64", 1), ("adc_conversions", 513)]);
        assert!(check_invariants(&overfull).unwrap_err().0.contains("512"));
        // A slice applied with no activation recorded.
        let slices = manifest_with_counters(&[("slices_applied", 1)]);
        assert!(check_invariants(&slices)
            .unwrap_err()
            .0
            .contains("slices_applied"));
        // An unpaired residual flop.
        let odd = manifest_with_counters(&[("residual_flops", 3)]);
        assert!(check_invariants(&odd).unwrap_err().0.contains("even"));
    }

    #[test]
    fn invariants_accept_consistent_fault_counters() {
        check_invariants(&manifest_with_counters(&[
            ("faults_injected", 3),
            ("an_detections", 5),
            ("faults_detected", 4),
            ("an_corrections", 7),
            ("faults_corrected", 7),
            ("operator_programs", 1),
            ("cluster_reprograms", 2),
            ("retries_exhausted", 1),
            ("wear_writes_max", 3),
        ]))
        .unwrap();
    }

    #[test]
    fn invariants_reject_impossible_fault_counters() {
        // A fault attributed with no AN detection backing it.
        let ghost = manifest_with_counters(&[("faults_detected", 1)]);
        assert!(check_invariants(&ghost)
            .unwrap_err()
            .0
            .contains("faults_detected"));
        // A fault correction with no AN correction backing it.
        let phantom = manifest_with_counters(&[("faults_corrected", 2)]);
        assert!(check_invariants(&phantom)
            .unwrap_err()
            .0
            .contains("faults_corrected"));
        // A repair with nothing detected to repair.
        let unprompted = manifest_with_counters(&[("cluster_reprograms", 1)]);
        assert!(check_invariants(&unprompted)
            .unwrap_err()
            .0
            .contains("cluster_reprograms"));
        // A retry budget exhausted without a single retry.
        let impossible = manifest_with_counters(&[("retries_exhausted", 1)]);
        assert!(check_invariants(&impossible)
            .unwrap_err()
            .0
            .contains("retries_exhausted"));
        // Wear with no writes anywhere.
        let wearless = manifest_with_counters(&[("wear_writes_max", 5)]);
        assert!(check_invariants(&wearless)
            .unwrap_err()
            .0
            .contains("wear_writes_max"));
    }

    #[test]
    fn diff_solves_detects_bitwise_divergence() {
        let base = build_manifest(&sample_snapshot(), &[]).to_string_pretty();
        let a = validate_manifest(&base).unwrap();
        diff_solves(&a, &a).unwrap();
        // A one-ULP change in the residual must be caught.
        let mut other = sample_snapshot();
        other.outcomes[0].relative_residual =
            f64::from_bits(other.outcomes[0].relative_residual.to_bits() + 1);
        let b_text = build_manifest(&other, &[]).to_string_pretty();
        let b = validate_manifest(&b_text).unwrap();
        let err = diff_solves(&a, &b).unwrap_err();
        assert!(err.0.contains("relative_residual"), "{err}");
        // Iteration-count divergence too.
        let mut other = sample_snapshot();
        other.outcomes[0].iterations += 1;
        let c_text = build_manifest(&other, &[]).to_string_pretty();
        let c = validate_manifest(&c_text).unwrap();
        assert!(diff_solves(&a, &c).unwrap_err().0.contains("iterations"));
        // Different solve counts.
        let mut other = sample_snapshot();
        other.outcomes.clear();
        let d_text = build_manifest(&other, &[]).to_string_pretty();
        let d = validate_manifest(&d_text).unwrap();
        assert!(diff_solves(&a, &d).unwrap_err().0.contains("count"));
    }

    #[test]
    fn write_manifest_round_trips() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/memsci-telemetry-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        write_manifest(&path, &sample_snapshot(), &[("runs", Json::UInt(1))]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_manifest(&text).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
