//! Incremental JSONL manifest streaming for long sweeps.
//!
//! A single end-of-run manifest is the wrong shape for Monte-Carlo
//! sweeps: a run killed at trial 900 of 1000 leaves nothing behind, and
//! the final document cannot attribute counters to individual sweep
//! points. A [`ManifestStream`] instead appends one compact JSON record
//! per trial batch — header first, then records carrying per-batch
//! counter deltas, then a closing summary — flushing after every line so
//! partial files stay useful. [`validate_stream`] is the machine
//! contract mirrored by `telemetry-verify --stream`.

use std::io::Write;
use std::path::Path;

use crate::json::{parse, Json};
use crate::manifest::ManifestError;
use crate::{Counter, HwCounters, TelemetrySnapshot};

/// Stream schema identifier (`schema` field of the header line).
pub const STREAM_SCHEMA_NAME: &str = "memsci-telemetry-stream";
/// Current stream schema version.
pub const STREAM_SCHEMA_VERSION: u64 = 1;

/// An append-only JSONL telemetry stream.
///
/// Records carry counter *deltas* between consecutive
/// [`record`](ManifestStream::record) calls, so each line attributes
/// hardware events to one trial batch. Zero deltas are omitted to keep
/// lines compact.
#[derive(Debug)]
pub struct ManifestStream {
    file: std::fs::File,
    records: u64,
    baseline: HwCounters,
}

impl ManifestStream {
    /// Creates (truncating) the stream file and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, config: &[(&str, Json)]) -> std::io::Result<ManifestStream> {
        let mut file = std::fs::File::create(path)?;
        let header = Json::Obj(vec![
            ("schema".to_string(), Json::Str(STREAM_SCHEMA_NAME.into())),
            (
                "schema_version".to_string(),
                Json::UInt(STREAM_SCHEMA_VERSION),
            ),
            ("kind".to_string(), Json::Str("header".into())),
            (
                "config".to_string(),
                Json::Obj(
                    config
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]);
        writeln!(file, "{}", header.to_string_compact())?;
        file.flush()?;
        Ok(ManifestStream {
            file,
            records: 0,
            baseline: HwCounters::default(),
        })
    }

    /// Appends one record attributing the counters accumulated since the
    /// previous record (or since stream creation) to `label`, plus the
    /// cumulative solve-outcome count, and flushes the line.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn record(&mut self, label: &str, snapshot: &TelemetrySnapshot) -> std::io::Result<()> {
        let delta = snapshot.counters.delta_since(&self.baseline);
        self.baseline = snapshot.counters;
        let counters: Vec<(String, Json)> = delta
            .iter()
            .filter(|&(_, v)| v != 0)
            .map(|(name, v)| (name.to_string(), Json::UInt(v)))
            .collect();
        let line = Json::Obj(vec![
            ("kind".to_string(), Json::Str("record".into())),
            ("index".to_string(), Json::UInt(self.records)),
            ("label".to_string(), Json::Str(label.into())),
            ("counters".to_string(), Json::Obj(counters)),
            (
                "solves".to_string(),
                Json::UInt(snapshot.outcomes.len() as u64),
            ),
        ]);
        writeln!(self.file, "{}", line.to_string_compact())?;
        self.file.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes the closing summary line and consumes the stream.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> std::io::Result<()> {
        let line = Json::Obj(vec![
            ("kind".to_string(), Json::Str("summary".into())),
            ("records".to_string(), Json::UInt(self.records)),
        ]);
        writeln!(self.file, "{}", line.to_string_compact())?;
        self.file.flush()
    }
}

fn fail(msg: impl Into<String>) -> ManifestError {
    ManifestError(msg.into())
}

/// Validates stream text against schema version 1 and returns the
/// record count.
///
/// Checks the header line (schema identity, `config` object), that
/// every record carries a string `label`, a `counters` object whose
/// keys are cataloged counter names with non-negative integer values,
/// monotonically increasing `index`, and that the closing summary's
/// `records` matches the record-line count. A missing summary (run
/// killed mid-sweep) is an error here; the record lines themselves
/// remain parseable for salvage.
///
/// # Errors
///
/// Returns [`ManifestError`] describing the first violation.
pub fn validate_stream(text: &str) -> Result<u64, ManifestError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = parse(lines.next().ok_or_else(|| fail("stream is empty"))?)?;
    if header.get("schema").and_then(Json::as_str) != Some(STREAM_SCHEMA_NAME) {
        return Err(fail(format!("`schema` must be \"{STREAM_SCHEMA_NAME}\"")));
    }
    if header.get("schema_version").and_then(Json::as_u64) != Some(STREAM_SCHEMA_VERSION) {
        return Err(fail(format!(
            "`schema_version` must be {STREAM_SCHEMA_VERSION}"
        )));
    }
    if header.get("kind").and_then(Json::as_str) != Some("header") {
        return Err(fail("first line must have kind \"header\""));
    }
    header
        .get("config")
        .and_then(Json::as_obj)
        .ok_or_else(|| fail("header `config` must be an object"))?;

    let known: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    let mut records = 0u64;
    let mut summary: Option<u64> = None;
    for (lineno, line) in lines.enumerate() {
        if summary.is_some() {
            return Err(fail(format!("line {}: content after summary", lineno + 2)));
        }
        let doc = parse(line)?;
        match doc.get("kind").and_then(Json::as_str) {
            Some("record") => {
                if doc.get("index").and_then(Json::as_u64) != Some(records) {
                    return Err(fail(format!("record {records}: `index` must be {records}")));
                }
                if doc.get("label").and_then(Json::as_str).is_none() {
                    return Err(fail(format!("record {records}: missing string `label`")));
                }
                let counters = doc.get("counters").and_then(Json::as_obj).ok_or_else(|| {
                    fail(format!("record {records}: `counters` must be an object"))
                })?;
                for (name, value) in counters {
                    if !known.contains(&name.as_str()) {
                        return Err(fail(format!("record {records}: unknown counter `{name}`")));
                    }
                    if value.as_u64().is_none() {
                        return Err(fail(format!(
                            "record {records}: counter `{name}` must be a non-negative integer"
                        )));
                    }
                }
                records += 1;
            }
            Some("summary") => {
                summary = Some(
                    doc.get("records")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| fail("summary needs integer `records`"))?,
                );
            }
            other => return Err(fail(format!("unexpected line kind {other:?}"))),
        }
    }
    match summary {
        None => Err(fail("missing summary line (stream truncated?)")),
        Some(s) if s != records => Err(fail(format!(
            "summary claims {s} records, stream has {records}"
        ))),
        Some(_) => Ok(records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(counter: Counter, value: u64) -> TelemetrySnapshot {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        crate::incr(counter, value);
        let snap = crate::snapshot();
        crate::disable();
        crate::reset();
        snap
    }

    #[test]
    fn stream_round_trips_and_validates() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/memsci-telemetry-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let mut stream =
            ManifestStream::create(&path, &[("sweep", Json::Str("rtn".into()))]).unwrap();
        stream
            .record("trial-0", &snap_with(Counter::SpmvOps, 3))
            .unwrap();
        stream
            .record("trial-1", &snap_with(Counter::SpmvOps, 5))
            .unwrap();
        assert_eq!(stream.records(), 2);
        stream.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_stream(&text), Ok(2));
        // Deltas, not totals: the second record attributes only the
        // growth since the first.
        let second = text.lines().nth(2).unwrap();
        let doc = parse(second).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("spmv_ops")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validation_rejects_malformed_streams() {
        assert!(validate_stream("").is_err());
        assert!(validate_stream("{\"schema\":\"other\"}").is_err());
        let header = format!(
            "{{\"schema\":\"{STREAM_SCHEMA_NAME}\",\"schema_version\":1,\
             \"kind\":\"header\",\"config\":{{}}}}"
        );
        // Truncated: no summary.
        assert!(validate_stream(&header).is_err());
        // Unknown counter name.
        let bad_counter = format!(
            "{header}\n{{\"kind\":\"record\",\"index\":0,\"label\":\"t\",\
             \"counters\":{{\"nope\":1}},\"solves\":0}}\n\
             {{\"kind\":\"summary\",\"records\":1}}"
        );
        assert!(validate_stream(&bad_counter)
            .unwrap_err()
            .0
            .contains("nope"));
        // Summary/record count mismatch.
        let miscount = format!("{header}\n{{\"kind\":\"summary\",\"records\":3}}");
        assert!(validate_stream(&miscount).unwrap_err().0.contains("3"));
        // Good minimal stream.
        let good = format!(
            "{header}\n{{\"kind\":\"record\",\"index\":0,\"label\":\"t\",\
             \"counters\":{{\"spmv_ops\":2}},\"solves\":1}}\n\
             {{\"kind\":\"summary\",\"records\":1}}"
        );
        assert_eq!(validate_stream(&good), Ok(1));
    }
}
