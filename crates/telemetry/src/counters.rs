//! The typed hardware event-counter set.
//!
//! Each [`Counter`] is one analog or digital cost driver of the paper's
//! evaluation: ADC conversions and headstart-shortened searches
//! (§V-B2), crossbar slice activations per block size, vector slices
//! applied vs skipped by early termination (§IV-B), AN-code
//! corrections/detections (§IV-E), residual-CSR flops, and
//! bias/CIC bookkeeping. Counters live in one global array of relaxed
//! atomics; [`incr`] is a no-op (one atomic load) while the sink is
//! disabled, so instrumented hot paths cost nothing in ordinary runs.

use std::sync::atomic::{AtomicU64, Ordering};

/// One hardware event class tracked by the global sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// SAR ADC conversions performed (§V-B).
    AdcConversions,
    /// Conversions skipped because the row's mantissa had settled
    /// (early termination, §IV-B).
    AdcConversionsSkipped,
    /// Conversions whose SAR search was shortened by the headstart
    /// optimization (searched fewer bits than the full resolution,
    /// §V-B2).
    AdcHeadstartHits,
    /// Crossbar slice applications on 512×512 clusters.
    XbarActivations512,
    /// Crossbar slice applications on 256×256 clusters.
    XbarActivations256,
    /// Crossbar slice applications on 128×128 clusters.
    XbarActivations128,
    /// Crossbar slice applications on 64×64 clusters.
    XbarActivations64,
    /// Crossbar slice applications on non-Table-I cluster sizes.
    XbarActivationsOther,
    /// Vector bit slices actually applied across all cluster MVMs.
    SlicesApplied,
    /// Vector bit slices skipped by early termination (total available
    /// minus applied).
    SlicesSkipped,
    /// Partial dot products corrected by the AN code (§IV-E).
    AnCorrections,
    /// Partial dot products with detected-but-uncorrectable AN errors.
    AnDetections,
    /// Bias removals from partial dot products (§IV-C).
    BiasDebiases,
    /// Columns stored inverted by computational invert coding at
    /// programming time (§V-B2).
    CicInvertedColumns,
    /// Floating-point operations on the residual-CSR path (one
    /// multiply-add pair per unblocked non-zero).
    ResidualFlops,
    /// Sparse MVMs executed by a platform.
    SpmvOps,
    /// Transpose sparse MVMs executed by a platform.
    SpmvTransposeOps,
    /// Dense dot products executed by a platform.
    DotOps,
    /// Dense AXPY/AXPBY kernels executed by a platform.
    AxpbyOps,
    /// Solver iterations completed.
    SolveIterations,
    /// Warnings routed through [`crate::warn`] (e.g. `geometric_mean`
    /// skipping non-positive values).
    Warnings,
    /// Staged kernels that ran their cluster and residual lanes
    /// overlapped on separate host threads (`MEMSCI_OVERLAP`).
    OverlapKernels,
    /// Per-bank shard tasks dispatched by the exact engine's cluster
    /// lane (one per populated bank per kernel).
    BankShardTasks,
    /// Cluster MVMs that ran against a warm scratch arena (buffers
    /// reused from a previous call instead of freshly allocated).
    ScratchReuse,
    /// Cluster MVMs served by a precomputed plan (operator-invariant
    /// state — active rows, row entry indices, bias multiples — derived
    /// at program time rather than per call).
    PlanHits,
    /// Batched multi-RHS MVM kernels executed (`spmv_batch` calls that
    /// push k vectors through one programmed operator).
    BatchMvmOps,
    /// Right-hand-side vectors streamed through batched MVM kernels
    /// (the k of every `spmv_batch` call, summed).
    BatchRhsVectors,
    /// Operators decomposed and programmed into crossbars (once per
    /// platform build — the expensive write the batch lane amortizes,
    /// §VIII-D).
    OperatorPrograms,
    /// Stuck-at cells injected by the fault model at program time.
    FaultsInjected,
    /// AN detections attributed to injected device faults (the cluster
    /// carries stuck cells, drift, or d2d spread).
    FaultsDetected,
    /// AN corrections attributed to injected device faults.
    FaultsCorrected,
    /// Cluster reprogram-and-retry repairs triggered by raised MVM
    /// faults.
    ClusterReprograms,
    /// Clusters whose bounded retry budget ran out, degrading them to
    /// the residual-CSR exact path.
    RetriesExhausted,
    /// High-water mark of per-cluster endurance writes (monotone; each
    /// platform publishes increases of its own maximum).
    WearWritesMax,
    /// Programmed-operator cache lookups performed by the service layer
    /// (every `get_or_program` call, hit or miss).
    CacheLookups,
    /// Cache lookups served by an already-programmed resident operator
    /// (no crossbar writes performed).
    CacheHits,
    /// Cache lookups that had to program the operator before caching it.
    CacheMisses,
    /// Resident operators evicted by the LRU policy when the cache
    /// exceeded its capacity.
    CacheEvictions,
}

/// Number of counters in the catalog.
pub const COUNTER_COUNT: usize = 38;

impl Counter {
    /// Every counter, in catalog (manifest) order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::AdcConversions,
        Counter::AdcConversionsSkipped,
        Counter::AdcHeadstartHits,
        Counter::XbarActivations512,
        Counter::XbarActivations256,
        Counter::XbarActivations128,
        Counter::XbarActivations64,
        Counter::XbarActivationsOther,
        Counter::SlicesApplied,
        Counter::SlicesSkipped,
        Counter::AnCorrections,
        Counter::AnDetections,
        Counter::BiasDebiases,
        Counter::CicInvertedColumns,
        Counter::ResidualFlops,
        Counter::SpmvOps,
        Counter::SpmvTransposeOps,
        Counter::DotOps,
        Counter::AxpbyOps,
        Counter::SolveIterations,
        Counter::Warnings,
        Counter::OverlapKernels,
        Counter::BankShardTasks,
        Counter::ScratchReuse,
        Counter::PlanHits,
        Counter::BatchMvmOps,
        Counter::BatchRhsVectors,
        Counter::OperatorPrograms,
        Counter::FaultsInjected,
        Counter::FaultsDetected,
        Counter::FaultsCorrected,
        Counter::ClusterReprograms,
        Counter::RetriesExhausted,
        Counter::WearWritesMax,
        Counter::CacheLookups,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheEvictions,
    ];

    /// Stable snake-case name used in manifests and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::AdcConversions => "adc_conversions",
            Counter::AdcConversionsSkipped => "adc_conversions_skipped",
            Counter::AdcHeadstartHits => "adc_headstart_hits",
            Counter::XbarActivations512 => "xbar_activations_512",
            Counter::XbarActivations256 => "xbar_activations_256",
            Counter::XbarActivations128 => "xbar_activations_128",
            Counter::XbarActivations64 => "xbar_activations_64",
            Counter::XbarActivationsOther => "xbar_activations_other",
            Counter::SlicesApplied => "slices_applied",
            Counter::SlicesSkipped => "slices_skipped",
            Counter::AnCorrections => "an_corrections",
            Counter::AnDetections => "an_detections",
            Counter::BiasDebiases => "bias_debiases",
            Counter::CicInvertedColumns => "cic_inverted_columns",
            Counter::ResidualFlops => "residual_flops",
            Counter::SpmvOps => "spmv_ops",
            Counter::SpmvTransposeOps => "spmv_transpose_ops",
            Counter::DotOps => "dot_ops",
            Counter::AxpbyOps => "axpby_ops",
            Counter::SolveIterations => "solve_iterations",
            Counter::Warnings => "warnings",
            Counter::OverlapKernels => "overlap_kernels",
            Counter::BankShardTasks => "bank_shard_tasks",
            Counter::ScratchReuse => "scratch_reuse",
            Counter::PlanHits => "plan_hits",
            Counter::BatchMvmOps => "batch_mvm_ops",
            Counter::BatchRhsVectors => "batch_rhs_vectors",
            Counter::OperatorPrograms => "operator_programs",
            Counter::FaultsInjected => "faults_injected",
            Counter::FaultsDetected => "faults_detected",
            Counter::FaultsCorrected => "faults_corrected",
            Counter::ClusterReprograms => "cluster_reprograms",
            Counter::RetriesExhausted => "retries_exhausted",
            Counter::WearWritesMax => "wear_writes_max",
            Counter::CacheLookups => "cache_lookups",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheEvictions => "cache_evictions",
        }
    }

    /// The slice-activation counter for a cluster of the given block
    /// edge (Table I sizes get their own bucket).
    pub fn xbar_activations_for_size(size: usize) -> Counter {
        match size {
            512 => Counter::XbarActivations512,
            256 => Counter::XbarActivations256,
            128 => Counter::XbarActivations128,
            64 => Counter::XbarActivations64,
            _ => Counter::XbarActivationsOther,
        }
    }
}

static VALUES: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

/// Adds `n` to a counter when the global sink is enabled.
///
/// The disabled-path cost is a single relaxed atomic load, so this can
/// sit on simulator hot paths.
#[inline]
pub fn incr(counter: Counter, n: u64) {
    if n != 0 && crate::enabled() {
        VALUES[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Adds `n` to a counter unconditionally (used for warnings, which must
/// not be lost while the sink is disabled).
#[inline]
pub(crate) fn incr_always(counter: Counter, n: u64) {
    if n != 0 {
        VALUES[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

pub(crate) fn snapshot_counters() -> HwCounters {
    let mut values = [0u64; COUNTER_COUNT];
    for (slot, atom) in values.iter_mut().zip(&VALUES) {
        *slot = atom.load(Ordering::Relaxed);
    }
    HwCounters { values }
}

pub(crate) fn reset_counters() {
    for atom in &VALUES {
        atom.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCounters {
    values: [u64; COUNTER_COUNT],
}

impl Default for HwCounters {
    fn default() -> Self {
        HwCounters {
            values: [0; COUNTER_COUNT],
        }
    }
}

impl HwCounters {
    /// Value of one counter.
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter as usize]
    }

    /// Iterates `(name, value)` pairs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.get(c)))
    }

    /// A copy with one counter zeroed. Reproducibility campaigns use
    /// this to drop host-knob-dependent counters (overlap scheduling)
    /// from stream records that promise byte-identity across hosts.
    pub fn without(mut self, counter: Counter) -> HwCounters {
        self.values[counter as usize] = 0;
        self
    }

    /// Events accumulated since `baseline` (saturating per counter, so
    /// a reset between snapshots cannot produce nonsense).
    pub fn delta_since(&self, baseline: &HwCounters) -> HwCounters {
        let mut values = [0u64; COUNTER_COUNT];
        for (i, slot) in values.iter_mut().enumerate() {
            *slot = self.values[i].saturating_sub(baseline.values[i]);
        }
        HwCounters { values }
    }

    /// Sum of the per-block-size crossbar activation buckets.
    pub fn xbar_activations_total(&self) -> u64 {
        self.get(Counter::XbarActivations512)
            + self.get(Counter::XbarActivations256)
            + self.get(Counter::XbarActivations128)
            + self.get(Counter::XbarActivations64)
            + self.get(Counter::XbarActivationsOther)
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent() {
        assert_eq!(Counter::ALL.len(), COUNTER_COUNT);
        // Names are unique and snake_case.
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
        for name in names {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
        // Discriminants index the value array densely.
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn size_buckets() {
        assert_eq!(
            Counter::xbar_activations_for_size(512),
            Counter::XbarActivations512
        );
        assert_eq!(
            Counter::xbar_activations_for_size(64),
            Counter::XbarActivations64
        );
        assert_eq!(
            Counter::xbar_activations_for_size(100),
            Counter::XbarActivationsOther
        );
    }

    #[test]
    fn delta_saturates() {
        let mut a = HwCounters::default();
        let mut b = HwCounters::default();
        a.values[0] = 5;
        b.values[0] = 7;
        b.values[1] = 3;
        let d = b.delta_since(&a);
        assert_eq!(d.values[0], 2);
        assert_eq!(d.values[1], 3);
        // A reset between snapshots must not underflow.
        let d = a.delta_since(&b);
        assert_eq!(d.values[0], 0);
        assert!(!b.is_zero() && HwCounters::default().is_zero());
        assert_eq!(b.iter().count(), COUNTER_COUNT);
    }
}
