//! Validates a telemetry run manifest against the current schema.
//!
//! ```text
//! telemetry-verify <manifest.json> [--require-nonzero c1,c2,...]
//!                  [--invariants] [--diff-solves other.json] [--quiet]
//! telemetry-verify --stream <stream.jsonl> [--quiet]
//! ```
//!
//! Exits 0 when the manifest parses, matches schema version 1, every
//! `--require-nonzero` counter is strictly positive, the cross-counter
//! physical invariants hold (`--invariants`), and the solve outcomes
//! are bitwise identical to the comparison manifest (`--diff-solves`);
//! exits 1 with a diagnostic otherwise. With `--stream` it instead
//! validates an incremental JSONL sweep stream (header, per-batch
//! records, summary). Used by `scripts/check.sh` to gate the smoke
//! repro run and the overlap/threads determinism matrix.

use memsci_telemetry::json::Json;
use memsci_telemetry::{
    check_invariants, diff_solves, validate_manifest, validate_stream, Counter,
};

fn usage() -> ! {
    eprintln!(
        "usage: telemetry-verify <manifest.json> [--require-nonzero c1,c2,...] \
         [--invariants] [--diff-solves other.json] [--quiet]\n\
         \x20      telemetry-verify --stream <stream.jsonl> [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut invariants = false;
    let mut diff_path: Option<String> = None;
    let mut stream_path: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-nonzero" => {
                let list = args.next().unwrap_or_else(|| usage());
                required.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--invariants" => invariants = true,
            "--diff-solves" => diff_path = Some(args.next().unwrap_or_else(|| usage())),
            "--stream" => stream_path = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }

    if let Some(stream_path) = stream_path {
        if path.is_some() || invariants || diff_path.is_some() || !required.is_empty() {
            usage();
        }
        let text = match std::fs::read_to_string(&stream_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("telemetry-verify: cannot read {stream_path}: {e}");
                std::process::exit(1);
            }
        };
        match validate_stream(&text) {
            Ok(records) => {
                if !quiet {
                    println!("telemetry-verify: {stream_path}: ok (stream, {records} records)");
                }
                return;
            }
            Err(e) => {
                eprintln!("telemetry-verify: {stream_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let path = path.unwrap_or_else(|| usage());

    let known: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    for name in &required {
        if !known.contains(&name.as_str()) {
            eprintln!("telemetry-verify: unknown counter `{name}`");
            eprintln!("known counters: {}", known.join(", "));
            std::process::exit(2);
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry-verify: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let doc = match validate_manifest(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("telemetry-verify: {path}: {e}");
            std::process::exit(1);
        }
    };

    let counters = doc
        .get("counters")
        .expect("validated manifest has counters");
    let mut failed = false;
    for name in &required {
        let value = counters
            .get(name)
            .and_then(Json::as_u64)
            .expect("validated counter is an integer");
        if value == 0 {
            eprintln!("telemetry-verify: {path}: counter `{name}` is zero");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    if invariants {
        if let Err(e) = check_invariants(&doc) {
            eprintln!("telemetry-verify: {path}: invariant violated: {e}");
            std::process::exit(1);
        }
    }

    if let Some(other_path) = &diff_path {
        let other_text = match std::fs::read_to_string(other_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("telemetry-verify: cannot read {other_path}: {e}");
                std::process::exit(1);
            }
        };
        let other = match validate_manifest(&other_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("telemetry-verify: {other_path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = diff_solves(&doc, &other) {
            eprintln!("telemetry-verify: {path} vs {other_path}: {e}");
            std::process::exit(1);
        }
    }

    if !quiet {
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        let solves = doc
            .get("solves")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        println!(
            "telemetry-verify: {path}: ok (schema v{}, {spans} spans, {solves} solves)",
            doc.get("schema_version")
                .and_then(Json::as_u64)
                .unwrap_or(0)
        );
    }
}
