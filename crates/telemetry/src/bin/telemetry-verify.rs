//! Validates a telemetry run manifest against the current schema.
//!
//! ```text
//! telemetry-verify <manifest.json> [--require-nonzero c1,c2,...] [--quiet]
//! ```
//!
//! Exits 0 when the manifest parses, matches schema version 1, and
//! every `--require-nonzero` counter is strictly positive; exits 1 with
//! a diagnostic otherwise. Used by `scripts/check.sh` to gate the smoke
//! repro run.

use memsci_telemetry::json::Json;
use memsci_telemetry::{validate_manifest, Counter};

fn usage() -> ! {
    eprintln!("usage: telemetry-verify <manifest.json> [--require-nonzero c1,c2,...] [--quiet]");
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-nonzero" => {
                let list = args.next().unwrap_or_else(|| usage());
                required.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());

    let known: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    for name in &required {
        if !known.contains(&name.as_str()) {
            eprintln!("telemetry-verify: unknown counter `{name}`");
            eprintln!("known counters: {}", known.join(", "));
            std::process::exit(2);
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry-verify: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let doc = match validate_manifest(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("telemetry-verify: {path}: {e}");
            std::process::exit(1);
        }
    };

    let counters = doc
        .get("counters")
        .expect("validated manifest has counters");
    let mut failed = false;
    for name in &required {
        let value = counters
            .get(name)
            .and_then(Json::as_u64)
            .expect("validated counter is an integer");
        if value == 0 {
            eprintln!("telemetry-verify: {path}: counter `{name}` is zero");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    if !quiet {
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        let solves = doc
            .get("solves")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        println!(
            "telemetry-verify: {path}: ok (schema v{}, {spans} spans, {solves} solves)",
            doc.get("schema_version")
                .and_then(Json::as_u64)
                .unwrap_or(0)
        );
    }
}
