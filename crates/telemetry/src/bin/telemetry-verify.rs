//! Validates a telemetry run manifest against the current schema.
//!
//! ```text
//! telemetry-verify <manifest.json> [--require-nonzero c1,c2,...]
//!                  [--invariants] [--diff-solves other.json]
//!                  [--spans] [--quiet]
//! telemetry-verify --stream <stream.jsonl> [--quiet]
//! telemetry-verify --trace <trace.json> [--require-event e1,e2,...]
//!                  [--min-tids N] [--quiet]
//! ```
//!
//! Exits 0 when the manifest parses, matches a supported schema
//! version, every `--require-nonzero` counter is strictly positive,
//! the cross-counter physical invariants hold (`--invariants`), and
//! the solve outcomes are bitwise identical to the comparison manifest
//! (`--diff-solves`); exits 1 with a diagnostic otherwise. `--spans`
//! pretty-prints the per-path latency table (calls, total, min, p50,
//! p95, p99, max). With `--stream` it instead validates an incremental
//! JSONL sweep stream (header, per-batch records, summary); with
//! `--trace` it structurally validates Chrome `trace_event` JSON
//! (phases, monotone timestamps, per-thread begin/end balance) and can
//! require specific event names (`--require-event`) and a minimum
//! thread fan-out (`--min-tids`, e.g. 2 under `MEMSCI_OVERLAP=1`).
//! Used by `scripts/check.sh` to gate the smoke repro run, the
//! overlap/threads determinism matrix, and the trace smoke run.

use memsci_telemetry::json::Json;
use memsci_telemetry::{
    check_invariants, diff_solves, validate_manifest, validate_stream, validate_trace, Counter,
};

fn usage() -> ! {
    eprintln!(
        "usage: telemetry-verify <manifest.json> [--require-nonzero c1,c2,...] \
         [--invariants] [--diff-solves other.json] [--spans] [--quiet]\n\
         \x20      telemetry-verify --stream <stream.jsonl> [--quiet]\n\
         \x20      telemetry-verify --trace <trace.json> [--require-event e1,e2,...] \
         [--min-tids N] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut invariants = false;
    let mut diff_path: Option<String> = None;
    let mut stream_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut required_events: Vec<String> = Vec::new();
    let mut min_tids: usize = 0;
    let mut print_spans = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--require-nonzero" => {
                let list = args.next().unwrap_or_else(|| usage());
                required.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--invariants" => invariants = true,
            "--diff-solves" => diff_path = Some(args.next().unwrap_or_else(|| usage())),
            "--stream" => stream_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--require-event" => {
                let list = args.next().unwrap_or_else(|| usage());
                required_events.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            "--min-tids" => {
                min_tids = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--spans" => print_spans = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }

    if let Some(trace_path) = trace_path {
        if path.is_some() || invariants || diff_path.is_some() || stream_path.is_some() {
            usage();
        }
        let text = match std::fs::read_to_string(&trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("telemetry-verify: cannot read {trace_path}: {e}");
                std::process::exit(1);
            }
        };
        let summary = match validate_trace(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("telemetry-verify: {trace_path}: {e}");
                std::process::exit(1);
            }
        };
        let mut failed = false;
        for name in &required_events {
            if !summary.names.contains(name) {
                eprintln!("telemetry-verify: {trace_path}: missing required event `{name}`");
                failed = true;
            }
        }
        if summary.tids.len() < min_tids {
            eprintln!(
                "telemetry-verify: {trace_path}: {} distinct tids, need at least {min_tids}",
                summary.tids.len()
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        if !quiet {
            println!(
                "telemetry-verify: {trace_path}: ok (trace, {} events, {} names, {} tids, depth {}, {} dropped)",
                summary.events,
                summary.names.len(),
                summary.tids.len(),
                summary.max_depth,
                summary.dropped
            );
        }
        return;
    }

    if let Some(stream_path) = stream_path {
        if path.is_some() || invariants || diff_path.is_some() || !required.is_empty() {
            usage();
        }
        let text = match std::fs::read_to_string(&stream_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("telemetry-verify: cannot read {stream_path}: {e}");
                std::process::exit(1);
            }
        };
        match validate_stream(&text) {
            Ok(records) => {
                if !quiet {
                    println!("telemetry-verify: {stream_path}: ok (stream, {records} records)");
                }
                return;
            }
            Err(e) => {
                eprintln!("telemetry-verify: {stream_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let path = path.unwrap_or_else(|| usage());

    let known: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    for name in &required {
        if !known.contains(&name.as_str()) {
            eprintln!("telemetry-verify: unknown counter `{name}`");
            eprintln!("known counters: {}", known.join(", "));
            std::process::exit(2);
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry-verify: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let doc = match validate_manifest(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("telemetry-verify: {path}: {e}");
            std::process::exit(1);
        }
    };

    let counters = doc
        .get("counters")
        .expect("validated manifest has counters");
    let mut failed = false;
    for name in &required {
        let value = counters
            .get(name)
            .and_then(Json::as_u64)
            .expect("validated counter is an integer");
        if value == 0 {
            eprintln!("telemetry-verify: {path}: counter `{name}` is zero");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }

    if invariants {
        if let Err(e) = check_invariants(&doc) {
            eprintln!("telemetry-verify: {path}: invariant violated: {e}");
            std::process::exit(1);
        }
    }

    if let Some(other_path) = &diff_path {
        let other_text = match std::fs::read_to_string(other_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("telemetry-verify: cannot read {other_path}: {e}");
                std::process::exit(1);
            }
        };
        let other = match validate_manifest(&other_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("telemetry-verify: {other_path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = diff_solves(&doc, &other) {
            eprintln!("telemetry-verify: {path} vs {other_path}: {e}");
            std::process::exit(1);
        }
    }

    if print_spans {
        let spans = doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]);
        let field = |s: &Json, key: &str| s.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let width = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str).map(str::len))
            .max()
            .unwrap_or(4)
            .max(4);
        println!(
            "{:width$}  {:>8}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}",
            "path", "calls", "total_s", "min_s", "p50_s", "p95_s", "p99_s", "max_s"
        );
        for s in spans {
            println!(
                "{:width$}  {:>8}  {:>11.4e}  {:>11.4e}  {:>11.4e}  {:>11.4e}  {:>11.4e}  {:>11.4e}",
                s.get("name").and_then(Json::as_str).unwrap_or("?"),
                s.get("calls").and_then(Json::as_u64).unwrap_or(0),
                field(s, "seconds"),
                field(s, "min_seconds"),
                field(s, "p50_seconds"),
                field(s, "p95_seconds"),
                field(s, "p99_seconds"),
                field(s, "max_seconds"),
            );
        }
    }

    if !quiet {
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        let solves = doc
            .get("solves")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len);
        println!(
            "telemetry-verify: {path}: ok (schema v{}, {spans} spans, {solves} solves)",
            doc.get("schema_version")
                .and_then(Json::as_u64)
                .unwrap_or(0)
        );
    }
}
