//! Hierarchical wall-clock spans.
//!
//! A span times one region of code under a slash-separated path. Paths
//! nest: entering a span pushes its name onto a thread-local stack, so
//! a `span("engine/spmv")` opened while `span("solve/cg")` is active
//! records under `solve/cg/engine/spmv`. Statistics (call count, total
//! seconds) aggregate per full path in a global registry; while the
//! sink is disabled, opening a span costs one atomic load and records
//! nothing.
//!
//! Guards are thread-bound: a guard must be dropped on the thread that
//! created it, and worker threads spawned inside a span start with an
//! empty path (parallel sections surface through
//! [`crate::record_exec`] instead).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::lock;

pub(crate) static REGISTRY: Mutex<BTreeMap<String, (u64, f64)>> = Mutex::new(BTreeMap::new());

thread_local! {
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full slash-separated span path.
    pub name: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall-clock seconds across all calls.
    pub seconds: f64,
}

/// An active span; records its statistics on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a span named `name` (static so the disabled path allocates
/// nothing). Returns a guard that records elapsed time when dropped.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { start: None };
    }
    PATH.with(|p| p.borrow_mut().push(name));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed().as_secs_f64();
        let path = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let joined = p.join("/");
            p.pop();
            joined
        });
        let mut reg = lock(&REGISTRY);
        let entry = reg.entry(path).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += elapsed;
    }
}

/// Opens a span for the rest of the enclosing scope.
///
/// ```
/// memsci_telemetry::enable();
/// {
///     memsci_telemetry::span!("solve/iter/spmv");
///     // ... timed work ...
/// }
/// let snap = memsci_telemetry::snapshot();
/// assert_eq!(snap.spans[0].name, "solve/iter/spmv");
/// # memsci_telemetry::disable();
/// # memsci_telemetry::reset();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _memsci_telemetry_span_guard = $crate::span($name);
    };
}

pub(crate) fn snapshot_spans() -> Vec<SpanStat> {
    lock(&REGISTRY)
        .iter()
        .map(|(name, &(calls, seconds))| SpanStat {
            name: name.clone(),
            calls,
            seconds,
        })
        .collect()
}

pub(crate) fn reset_spans() {
    lock(&REGISTRY).clear();
}

/// Per-path delta between two span snapshots (both sorted by name).
pub(crate) fn delta_spans(after: &[SpanStat], before: &[SpanStat]) -> Vec<SpanStat> {
    let baseline: BTreeMap<&str, (u64, f64)> = before
        .iter()
        .map(|s| (s.name.as_str(), (s.calls, s.seconds)))
        .collect();
    after
        .iter()
        .filter_map(|s| {
            let (calls0, secs0) = baseline.get(s.name.as_str()).copied().unwrap_or((0, 0.0));
            let calls = s.calls.saturating_sub(calls0);
            if calls == 0 {
                return None;
            }
            Some(SpanStat {
                name: s.name.clone(),
                calls,
                seconds: (s.seconds - secs0).max(0.0),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::disable();
        {
            let _g = span("never");
        }
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn nested_spans_build_paths() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        {
            let _outer = span("solve/cg");
            {
                let _inner = span("spmv");
            }
            {
                let _inner = span("spmv");
            }
        }
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        let names: Vec<(&str, u64)> = spans.iter().map(|s| (s.name.as_str(), s.calls)).collect();
        assert_eq!(names, vec![("solve/cg", 1), ("solve/cg/spmv", 2)]);
        assert!(spans.iter().all(|s| s.seconds >= 0.0));
        // Outer spans contain their inner spans' time.
        assert!(spans[0].seconds >= spans[1].seconds);
    }

    #[test]
    fn delta_subtracts_baseline() {
        let before = vec![SpanStat {
            name: "a".into(),
            calls: 2,
            seconds: 1.0,
        }];
        let after = vec![
            SpanStat {
                name: "a".into(),
                calls: 5,
                seconds: 2.5,
            },
            SpanStat {
                name: "b".into(),
                calls: 1,
                seconds: 0.25,
            },
        ];
        let d = delta_spans(&after, &before);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].name.as_str(), d[0].calls), ("a", 3));
        assert!((d[0].seconds - 1.5).abs() < 1e-12);
        assert_eq!((d[1].name.as_str(), d[1].calls), ("b", 1));
        // Unchanged paths disappear from the delta.
        assert!(delta_spans(&before, &before).is_empty());
    }
}
