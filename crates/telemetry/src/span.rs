//! Hierarchical wall-clock spans with latency distributions.
//!
//! A span times one region of code under a slash-separated path. Paths
//! nest: entering a span pushes its name onto a thread-local stack, so
//! a `span("engine/spmv")` opened while `span("solve/cg")` is active
//! records under `solve/cg/engine/spmv`. Statistics aggregate per full
//! path in a global registry — call count, total seconds, min/max, and
//! a log-bucketed latency histogram from which p50/p95/p99 are derived
//! — so tail behaviour (a slow first iteration, a repair-lane stall)
//! is visible, not averaged away. While the sink is disabled, opening
//! a span costs two relaxed atomic loads and records nothing.
//!
//! When timeline tracing ([`crate::trace`]) is enabled, every guard
//! additionally emits begin/end events into the trace ring buffer,
//! independent of whether the statistics sink is on.
//!
//! Guards are thread-bound: a guard must be dropped on the thread that
//! created it, and worker threads spawned inside a span start with an
//! empty path (parallel sections surface through
//! [`crate::record_exec`] instead). Dropping sibling guards out of
//! creation order is tolerated — each drop pops the most recent stack
//! entry, so the recorded paths are best-effort in that (unidiomatic)
//! case — and never panics.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::lock;

/// Number of log2-nanosecond latency buckets. Bucket 0 holds sub-ns
/// (clock-granularity zero) durations; bucket `i >= 1` holds durations
/// in `[2^(i-1), 2^i)` ns, so the top bucket covers everything from
/// ~2^62 ns up — far beyond any real span.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log-bucketed latency histogram (log2-ns buckets, see
/// [`HISTOGRAM_BUCKETS`]). Recording is allocation-free; percentiles
/// are derived by a cumulative walk using each bucket's geometric
/// midpoint, so they carry bucket-resolution (≤ ~50%) relative error —
/// plenty for order-of-magnitude tail attribution.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                map.entry(&i, &c);
            }
        }
        map.finish()
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Representative duration (seconds) for a bucket: its geometric-ish
/// midpoint, `1.5 * 2^(i-1)` ns (0 for the sub-ns bucket).
fn bucket_midpoint_seconds(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        1.5 * f64::powi(2.0, i as i32 - 1) * 1e-9
    }
}

/// Lower bound (seconds) of a bucket.
fn bucket_lower_seconds(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        f64::powi(2.0, i as i32 - 1) * 1e-9
    }
}

/// Upper bound (seconds) of a bucket.
fn bucket_upper_seconds(i: usize) -> f64 {
    f64::powi(2.0, i as i32) * 1e-9
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one duration.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts (index = log2-ns bucket).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile (`0 < q <= 1`) in seconds, using bucket
    /// midpoints as representatives. Returns 0 for an empty histogram.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return bucket_midpoint_seconds(i);
            }
        }
        bucket_midpoint_seconds(HISTOGRAM_BUCKETS - 1)
    }

    /// Lower bound (seconds) of the smallest non-empty bucket (0 when
    /// empty).
    pub fn min_bound_seconds(&self) -> f64 {
        self.buckets
            .iter()
            .position(|&c| c > 0)
            .map_or(0.0, bucket_lower_seconds)
    }

    /// Upper bound (seconds) of the largest non-empty bucket (0 when
    /// empty).
    pub fn max_bound_seconds(&self) -> f64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0.0, bucket_upper_seconds)
    }

    /// Per-bucket saturating subtraction (for snapshot deltas).
    pub fn saturating_sub(&self, other: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for i in 0..HISTOGRAM_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(other.buckets[i]);
        }
        out
    }

    /// Rebuilds a histogram from `[bucket_index, count]` pairs; entries
    /// out of range are ignored.
    pub fn from_sparse(pairs: &[(usize, u64)]) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for &(i, c) in pairs {
            if i < HISTOGRAM_BUCKETS {
                out.buckets[i] += c;
            }
        }
        out
    }
}

/// Per-path aggregate held in the global registry.
#[derive(Clone)]
pub(crate) struct PathStats {
    calls: u64,
    seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
    histogram: LatencyHistogram,
}

impl PathStats {
    fn new() -> PathStats {
        PathStats {
            calls: 0,
            seconds: 0.0,
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
            histogram: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, seconds: f64, ns: u64) {
        self.calls += 1;
        self.seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        self.histogram.record_ns(ns);
    }
}

pub(crate) static REGISTRY: Mutex<BTreeMap<String, PathStats>> = Mutex::new(BTreeMap::new());

thread_local! {
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full slash-separated span path.
    pub name: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total wall-clock seconds across all calls.
    pub seconds: f64,
    /// Shortest single call, seconds.
    pub min_seconds: f64,
    /// Longest single call, seconds.
    pub max_seconds: f64,
    /// Median call duration, seconds (bucket-midpoint resolution).
    pub p50_seconds: f64,
    /// 95th-percentile call duration, seconds.
    pub p95_seconds: f64,
    /// 99th-percentile call duration, seconds.
    pub p99_seconds: f64,
    /// Full latency distribution the percentiles derive from.
    pub histogram: LatencyHistogram,
}

impl SpanStat {
    /// Builds a stat from explicit per-call durations (exact min/max,
    /// histogram-derived percentiles) — for tests and synthetic docs.
    pub fn from_durations(name: &str, durations_seconds: &[f64]) -> SpanStat {
        let mut stats = PathStats::new();
        for &s in durations_seconds {
            stats.record(s, (s * 1e9).round().max(0.0) as u64);
        }
        stat_from_path(name.to_string(), &stats)
    }
}

fn stat_from_path(name: String, s: &PathStats) -> SpanStat {
    SpanStat {
        name,
        calls: s.calls,
        seconds: s.seconds,
        min_seconds: if s.calls == 0 { 0.0 } else { s.min_seconds },
        max_seconds: s.max_seconds,
        p50_seconds: s.histogram.quantile_seconds(0.50),
        p95_seconds: s.histogram.quantile_seconds(0.95),
        p99_seconds: s.histogram.quantile_seconds(0.99),
        histogram: s.histogram,
    }
}

/// An active span; records its statistics on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    traced: bool,
}

/// Opens a span named `name` (static so the disabled path allocates
/// nothing). Returns a guard that records elapsed time when dropped
/// and, when timeline tracing is on, brackets the region with trace
/// begin/end events.
pub fn span(name: &'static str) -> Span {
    let stats = crate::enabled();
    let traced = crate::trace::enabled();
    if !stats && !traced {
        return Span {
            start: None,
            name,
            traced: false,
        };
    }
    if traced {
        crate::trace::begin(name);
    }
    if stats {
        PATH.with(|p| p.borrow_mut().push(name));
    }
    Span {
        start: stats.then(Instant::now),
        name,
        traced,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.map(|s| s.elapsed());
        if self.traced {
            // The begin was traced, so the end always lands (even
            // across a mid-span trace disable) to keep exports
            // balanced.
            crate::trace::end(self.name);
        }
        let Some(elapsed) = elapsed else {
            return;
        };
        let path = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let joined = p.join("/");
            p.pop();
            joined
        });
        let mut reg = lock(&REGISTRY);
        reg.entry(path)
            .or_insert_with(PathStats::new)
            .record(elapsed.as_secs_f64(), elapsed.as_nanos() as u64);
    }
}

/// Opens a span for the rest of the enclosing scope.
///
/// ```
/// memsci_telemetry::enable();
/// {
///     memsci_telemetry::span!("solve/iter/spmv");
///     // ... timed work ...
/// }
/// let snap = memsci_telemetry::snapshot();
/// assert_eq!(snap.spans[0].name, "solve/iter/spmv");
/// # memsci_telemetry::disable();
/// # memsci_telemetry::reset();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _memsci_telemetry_span_guard = $crate::span($name);
    };
}

pub(crate) fn snapshot_spans() -> Vec<SpanStat> {
    lock(&REGISTRY)
        .iter()
        .map(|(name, s)| stat_from_path(name.clone(), s))
        .collect()
}

pub(crate) fn reset_spans() {
    lock(&REGISTRY).clear();
}

/// Per-path delta between two span snapshots (both sorted by name).
/// Calls, total seconds, and histograms subtract exactly; min/max and
/// percentiles are recomputed from the *delta histogram*, so they
/// carry bucket-resolution accuracy (the registry does not keep
/// per-interval exact extrema).
pub(crate) fn delta_spans(after: &[SpanStat], before: &[SpanStat]) -> Vec<SpanStat> {
    let baseline: BTreeMap<&str, &SpanStat> = before.iter().map(|s| (s.name.as_str(), s)).collect();
    after
        .iter()
        .filter_map(|s| {
            let empty = LatencyHistogram::new();
            let (calls0, secs0, hist0) = baseline
                .get(s.name.as_str())
                .map_or((0, 0.0, &empty), |b| (b.calls, b.seconds, &b.histogram));
            let calls = s.calls.saturating_sub(calls0);
            if calls == 0 {
                return None;
            }
            let histogram = s.histogram.saturating_sub(hist0);
            Some(SpanStat {
                name: s.name.clone(),
                calls,
                seconds: (s.seconds - secs0).max(0.0),
                min_seconds: histogram.min_bound_seconds(),
                max_seconds: histogram.max_bound_seconds(),
                p50_seconds: histogram.quantile_seconds(0.50),
                p95_seconds: histogram.quantile_seconds(0.95),
                p99_seconds: histogram.quantile_seconds(0.99),
                histogram,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::disable();
        {
            let _g = span("never");
        }
        assert!(snapshot_spans().is_empty());
    }

    #[test]
    fn nested_spans_build_paths() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        {
            let _outer = span("solve/cg");
            {
                let _inner = span("spmv");
            }
            {
                let _inner = span("spmv");
            }
        }
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        let names: Vec<(&str, u64)> = spans.iter().map(|s| (s.name.as_str(), s.calls)).collect();
        assert_eq!(names, vec![("solve/cg", 1), ("solve/cg/spmv", 2)]);
        assert!(spans.iter().all(|s| s.seconds >= 0.0));
        // Outer spans contain their inner spans' time.
        assert!(spans[0].seconds >= spans[1].seconds);
    }

    #[test]
    fn span_stats_carry_distribution_fields() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        for busy in [0u64, 200, 200, 200] {
            let _g = span("work");
            // Spin long enough to land in a deterministic-ish bucket
            // spread: one near-zero call and three slower ones.
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < u128::from(busy) {
                std::hint::spin_loop();
            }
        }
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        let s = &spans[0];
        assert_eq!(s.calls, 4);
        assert_eq!(s.histogram.count(), 4);
        assert!(s.min_seconds <= s.max_seconds);
        assert!(s.max_seconds >= 200e-6, "max {}", s.max_seconds);
        assert!(s.seconds >= s.max_seconds);
        assert!(s.p50_seconds <= s.p95_seconds);
        assert!(s.p95_seconds <= s.p99_seconds);
        // The p99 representative can only exceed the true max by its
        // bucket width (midpoint vs observed value).
        assert!(s.p99_seconds <= s.max_seconds * 2.0 + 1e-9);
    }

    #[test]
    fn out_of_order_sibling_drops_are_tolerated() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        let a = span("a");
        let b = span("b");
        // Dropping `a` before `b` pops the most recent entry ("b"), so
        // the recorded paths are best-effort — but nothing panics and
        // both calls are counted.
        drop(a);
        drop(b);
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        let total_calls: u64 = spans.iter().map(|s| s.calls).sum();
        assert_eq!(total_calls, 2);
    }

    #[test]
    fn reset_while_active_does_not_panic() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        let g = span("long_lived");
        crate::reset(); // clears the registry under the open span
        drop(g); // records into the fresh registry
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "long_lived");
        assert_eq!(spans[0].calls, 1);
    }

    #[test]
    fn worker_thread_spans_record_independent_paths() {
        let _x = crate::exclusive_for_tests();
        crate::reset();
        crate::enable();
        {
            let _outer = span("solve");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    // Worker threads start with an empty path: this
                    // records as a root span, not under `solve`.
                    let _g = span("shard");
                });
            });
        }
        crate::disable();
        let spans = snapshot_spans();
        crate::reset();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["shard", "solve"]);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 1: [1, 2)
        h.record_ns(1024); // bucket 11: [1024, 2048)
        h.record_ns(1500); // bucket 11
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[11], 2);
        // Median rank 2 lands in bucket 1 (midpoint 1.5 ns).
        assert!((h.quantile_seconds(0.5) - 1.5e-9).abs() < 1e-15);
        // p99 rank 4 lands in bucket 11 (midpoint 1536 ns).
        assert!((h.quantile_seconds(0.99) - 1536e-9).abs() < 1e-12);
        assert_eq!(h.min_bound_seconds(), 0.0);
        assert!((h.max_bound_seconds() - 2048e-9).abs() < 1e-15);
        // Sparse round-trip.
        assert_eq!(LatencyHistogram::from_sparse(&[(0, 1), (1, 1), (11, 2)]), h);
        // Saturating delta drops the shared prefix.
        let d = h.saturating_sub(&LatencyHistogram::from_sparse(&[(11, 1)]));
        assert_eq!(d.count(), 3);
        assert_eq!(d.buckets()[11], 1);
    }

    #[test]
    fn delta_subtracts_baseline() {
        let before = vec![SpanStat::from_durations("a", &[0.5, 0.5])];
        let after = vec![
            SpanStat::from_durations("a", &[0.5, 0.5, 0.1, 0.1, 2.0]),
            SpanStat::from_durations("b", &[0.25]),
        ];
        let d = delta_spans(&after, &before);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].name.as_str(), d[0].calls), ("a", 3));
        assert!((d[0].seconds - 2.2).abs() < 1e-12);
        // The delta histogram holds exactly the three new calls.
        assert_eq!(d[0].histogram.count(), 3);
        // Bucket-bound extrema: 0.1 s lands in [2^26, 2^27) ns, 2.0 s
        // in [2^30, 2^31) ns.
        assert!(d[0].min_seconds <= 0.1 && 0.1 <= d[0].min_seconds * 2.0 + 1e-12);
        assert!(d[0].max_seconds >= 2.0 && d[0].max_seconds <= 4.0);
        assert_eq!((d[1].name.as_str(), d[1].calls), ("b", 1));
        // Unchanged paths disappear from the delta.
        assert!(delta_spans(&before, &before).is_empty());
    }
}
