//! Timeline tracing: a thread-aware ring buffer of timestamped events.
//!
//! Tracing answers the question the aggregated span registry cannot:
//! *what ran when, on which thread*. While enabled, every [`crate::span`]
//! guard emits a begin event on open and an end event on drop, and
//! instrumentation points can drop instant marks (e.g. a repair-lane
//! reprogram) with [`instant`]. Events carry the raw `&'static str`
//! span name, a nanosecond timestamp relative to a process-wide epoch,
//! and a small dense trace id for the recording thread — so overlapped
//! pipeline lanes (`MEMSCI_OVERLAP`) and `memsci-exec` worker fan-out
//! land on distinct rows when visualised.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost while disabled.** The hot path pays one relaxed
//!    atomic load (inside [`crate::span`]) and allocates nothing, so
//!    the warm-SpMV allocation gate holds with tracing off.
//! 2. **No allocation while recording.** The ring is preallocated at
//!    [`enable`] time; once full it overwrites the oldest events and
//!    counts them in `dropped` rather than growing.
//! 3. **Determinism carve-out.** Trace events are wall-clock and are
//!    *never* folded into run manifests, telemetry streams, or solve
//!    outcomes; byte-reproducibility gates ignore the trace file.
//!
//! Export is Chrome `trace_event` JSON ([`export_chrome`] /
//! [`write_chrome`]): a `traceEvents` array of `B`/`E`/`i` phases that
//! Perfetto and `chrome://tracing` load directly. [`validate_trace`]
//! is the structural contract used by `telemetry-verify --trace`:
//! monotone timestamps, well-formed phases, and per-thread begin/end
//! stack discipline (lenient about orphan ends only when the ring
//! reports dropped events, which truncate whole prefixes).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::{parse, Json, JsonError};
use crate::lock;

/// Default ring capacity in events (~64k events ≈ 2 MiB).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Dense per-thread trace id, assigned on first traced event. OS
    /// thread ids are neither small nor stable across platforms;
    /// trace ids start at 1 (the process main thread in practice) and
    /// give scoped worker threads fresh rows in the viewer.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Phase of a trace event, mirroring Chrome `trace_event` phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// Instantaneous mark (`ph: "i"`).
    Instant,
}

impl TracePhase {
    /// The Chrome `trace_event` phase letter.
    pub fn ph(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or mark name (static: recording never allocates).
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Dense trace id of the recording thread.
    pub tid: u64,
}

struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Overwrite cursor once `events` reaches capacity.
    next: usize,
    /// Events overwritten by newer ones.
    dropped: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

/// True while trace recording is on.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on with [`DEFAULT_TRACE_CAPACITY`].
pub fn enable() {
    enable_with_capacity(DEFAULT_TRACE_CAPACITY);
}

/// Turns tracing on with an explicit ring capacity (events). The ring
/// is preallocated here so recording never allocates. Re-enabling with
/// a different capacity replaces the ring (recorded events are lost);
/// re-enabling with the same capacity keeps them.
pub fn enable_with_capacity(capacity: usize) {
    let capacity = capacity.max(1);
    let mut guard = lock(&RING);
    let rebuild = match guard.as_ref() {
        Some(ring) => ring.capacity != capacity,
        None => true,
    };
    if rebuild {
        *guard = Some(Ring {
            events: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        });
    }
    drop(guard);
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording new spans. Spans already open keep their end events
/// (the guard remembers it was traced), so exported traces stay
/// balanced.
pub fn disable() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

/// Clears recorded events (ring allocation and enabled state are kept).
/// Called from [`crate::reset`]. Clearing while spans are active leaves
/// their end events orphaned in the next export; that trace is still
/// structurally loadable, just incomplete.
pub fn clear() {
    let mut guard = lock(&RING);
    if let Some(ring) = guard.as_mut() {
        ring.events.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
}

/// Disables tracing and frees the ring.
pub fn shutdown() {
    TRACE_ENABLED.store(false, Ordering::Relaxed);
    *lock(&RING) = None;
}

fn push(name: &'static str, phase: TracePhase) {
    let tid = TID.with(|t| *t);
    let mut guard = lock(&RING);
    let Some(ring) = guard.as_mut() else {
        return;
    };
    // Timestamp under the lock: the buffer order is the timestamp
    // order, which keeps exported traces globally monotone.
    let ts_ns = EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64;
    let event = TraceEvent {
        name,
        phase,
        ts_ns,
        tid,
    };
    if ring.events.len() < ring.capacity {
        ring.events.push(event);
    } else {
        ring.events[ring.next] = event;
        ring.next = (ring.next + 1) % ring.capacity;
        ring.dropped += 1;
    }
}

/// Records a span-begin event. Only called from [`crate::span`], which
/// gates on [`enabled`].
pub(crate) fn begin(name: &'static str) {
    push(name, TracePhase::Begin);
}

/// Records a span-end event. Called from the guard's drop whenever the
/// *begin* was traced, regardless of the current flag, so traces stay
/// balanced across a mid-span [`disable`].
pub(crate) fn end(name: &'static str) {
    push(name, TracePhase::End);
}

/// Drops an instantaneous mark (e.g. `exact/reprogram`) on the current
/// thread's timeline. No-op while tracing is disabled.
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    push(name, TracePhase::Instant);
}

/// Copies out the recorded events, oldest first, plus the count of
/// events the ring overwrote.
pub fn snapshot() -> (Vec<TraceEvent>, u64) {
    let guard = lock(&RING);
    let Some(ring) = guard.as_ref() else {
        return (Vec::new(), 0);
    };
    let mut out = Vec::with_capacity(ring.events.len());
    if ring.events.len() == ring.capacity && ring.next > 0 {
        out.extend_from_slice(&ring.events[ring.next..]);
        out.extend_from_slice(&ring.events[..ring.next]);
    } else {
        out.extend_from_slice(&ring.events);
    }
    (out, ring.dropped)
}

/// Renders the recorded events as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...], "metadata": {...}}`), loadable in Perfetto
/// or `chrome://tracing`. Timestamps are microseconds (`ts_ns / 1000`
/// with sub-µs precision kept as a fraction).
pub fn export_chrome() -> Json {
    let (events, dropped) = snapshot();
    let rows = events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                ("cat".to_string(), Json::Str("memsci".to_string())),
                ("ph".to_string(), Json::Str(e.phase.ph().to_string())),
                ("ts".to_string(), Json::Num(e.ts_ns as f64 / 1000.0)),
                ("pid".to_string(), Json::UInt(1)),
                ("tid".to_string(), Json::UInt(e.tid)),
            ];
            if e.phase == TracePhase::Instant {
                // Thread-scoped instant: renders as a tick on its row.
                fields.push(("s".to_string(), Json::Str("t".to_string())));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(rows)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        (
            "metadata".to_string(),
            Json::Obj(vec![
                (
                    "tool".to_string(),
                    Json::Str("memsci-telemetry".to_string()),
                ),
                ("dropped_events".to_string(), Json::UInt(dropped)),
            ]),
        ),
    ])
}

/// Writes [`export_chrome`] to `path`.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_chrome(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_chrome().to_string_pretty())
}

/// A trace validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid trace: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

impl From<JsonError> for TraceError {
    fn from(e: JsonError) -> Self {
        TraceError(e.to_string())
    }
}

fn tfail(msg: impl Into<String>) -> TraceError {
    TraceError(msg.into())
}

/// Structural facts extracted by [`validate_trace`], for gating (e.g.
/// "the cluster and residual lanes ran on distinct tids").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Events in the file.
    pub events: usize,
    /// Events the ring overwrote before export.
    pub dropped: u64,
    /// Distinct event names.
    pub names: BTreeSet<String>,
    /// Distinct thread ids.
    pub tids: BTreeSet<u64>,
    /// Thread ids each name appeared on.
    pub tids_by_name: BTreeMap<String, BTreeSet<u64>>,
    /// Deepest begin/end nesting observed on any one thread.
    pub max_depth: usize,
}

/// Parses and structurally validates Chrome `trace_event` JSON as
/// produced by [`export_chrome`]: every event needs a non-empty string
/// `name`, `ph` in `{B, E, i}`, finite non-negative number `ts`, and
/// integer `pid`/`tid`; timestamps are globally non-decreasing; and on
/// each tid, `B`/`E` events obey stack discipline with matching names.
/// A ring that dropped events truncates the oldest prefix, which can
/// only orphan `E` events — those are tolerated exactly when the
/// metadata reports `dropped_events > 0`.
///
/// # Errors
///
/// Returns [`TraceError`] describing the first violation found.
pub fn validate_trace(text: &str) -> Result<TraceSummary, TraceError> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| tfail("`traceEvents` must be an array"))?;
    if events.is_empty() {
        return Err(tfail("`traceEvents` is empty"));
    }
    let dropped = doc
        .get("metadata")
        .and_then(|m| m.get("dropped_events"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    let mut summary = TraceSummary {
        events: events.len(),
        dropped,
        ..TraceSummary::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| tfail(format!("traceEvents[{i}] needs a non-empty string `name`")))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| tfail(format!("traceEvents[{i}] needs a string `ph`")))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| {
                tfail(format!(
                    "traceEvents[{i}] needs a finite non-negative number `ts`"
                ))
            })?;
        if e.get("pid").and_then(Json::as_u64).is_none() {
            return Err(tfail(format!("traceEvents[{i}] needs an integer `pid`")));
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| tfail(format!("traceEvents[{i}] needs an integer `tid`")))?;
        if ts < last_ts {
            return Err(tfail(format!(
                "traceEvents[{i}] timestamp {ts} precedes its predecessor {last_ts}"
            )));
        }
        last_ts = ts;
        summary.names.insert(name.to_string());
        summary.tids.insert(tid);
        summary
            .tids_by_name
            .entry(name.to_string())
            .or_default()
            .insert(tid);
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => {
                stack.push(name.to_string());
                summary.max_depth = summary.max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(tfail(format!(
                        "traceEvents[{i}] ends `{name}` but tid {tid} has `{open}` open"
                    )));
                }
                None if dropped > 0 => {} // begin lost to the ring
                None => {
                    return Err(tfail(format!(
                        "traceEvents[{i}] ends `{name}` with no span open on tid {tid}"
                    )));
                }
            },
            "i" => {}
            other => {
                return Err(tfail(format!(
                    "traceEvents[{i}] has unsupported phase {other:?} (expected B, E, or i)"
                )));
            }
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(tfail(format!(
                "tid {tid} ends the trace with `{open}` still open"
            )));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() {
        shutdown();
        clear();
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _x = crate::exclusive_for_tests();
        fresh();
        instant("never");
        {
            let _g = crate::span("never");
        }
        assert_eq!(snapshot().0.len(), 0);
    }

    #[test]
    fn spans_emit_balanced_begin_end_events() {
        let _x = crate::exclusive_for_tests();
        fresh();
        crate::disable(); // stats off: tracing alone must drive events
        enable_with_capacity(64);
        {
            let _outer = crate::span("solve/cg");
            {
                let _inner = crate::span("spmv");
            }
            instant("mark");
        }
        disable();
        let (events, dropped) = snapshot();
        shutdown();
        assert_eq!(dropped, 0);
        let seq: Vec<(&str, TracePhase)> = events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            seq,
            vec![
                ("solve/cg", TracePhase::Begin),
                ("spmv", TracePhase::Begin),
                ("spmv", TracePhase::End),
                ("mark", TracePhase::Instant),
                ("solve/cg", TracePhase::End),
            ]
        );
        // Timestamps are monotone in buffer order.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // All on one thread.
        assert!(events.iter().all(|e| e.tid == events[0].tid));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_dropped() {
        let _x = crate::exclusive_for_tests();
        fresh();
        enable_with_capacity(4);
        for _ in 0..5 {
            instant("tick");
        }
        let (events, dropped) = snapshot();
        shutdown();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 1);
        // Oldest-first order is preserved across the wrap.
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn worker_threads_get_distinct_tids() {
        let _x = crate::exclusive_for_tests();
        fresh();
        enable_with_capacity(64);
        instant("main");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _g = crate::span("worker");
                });
            }
        });
        disable();
        let (events, _) = snapshot();
        shutdown();
        let main_tid = events[0].tid;
        let worker_tids: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(worker_tids.len(), 2);
        assert!(!worker_tids.contains(&main_tid));
    }

    #[test]
    fn export_validates_and_reports_structure() {
        let _x = crate::exclusive_for_tests();
        fresh();
        crate::disable();
        enable_with_capacity(64);
        {
            let _outer = crate::span("pipeline");
            {
                let _inner = crate::span("cluster_mvm");
            }
            instant("reprogram");
        }
        disable();
        let text = export_chrome().to_string_pretty();
        shutdown();
        let summary = validate_trace(&text).unwrap();
        assert_eq!(summary.events, 5);
        assert_eq!(summary.dropped, 0);
        assert!(summary.names.contains("pipeline"));
        assert!(summary.names.contains("cluster_mvm"));
        assert!(summary.names.contains("reprogram"));
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn mid_span_disable_keeps_the_trace_balanced() {
        let _x = crate::exclusive_for_tests();
        fresh();
        enable_with_capacity(64);
        let g = crate::span("outer");
        disable();
        drop(g);
        let text = export_chrome().to_string_pretty();
        shutdown();
        let summary = validate_trace(&text).unwrap();
        assert_eq!(summary.events, 2);
    }

    fn doc(events: &str, dropped: u64) -> String {
        format!(
            "{{\"traceEvents\": [{events}], \
             \"metadata\": {{\"dropped_events\": {dropped}}}}}"
        )
    }

    fn ev(name: &str, ph: &str, ts: f64, tid: u64) -> String {
        format!(
            "{{\"name\": \"{name}\", \"ph\": \"{ph}\", \"ts\": {ts}, \"pid\": 1, \"tid\": {tid}}}"
        )
    }

    #[test]
    fn validation_rejects_structural_violations() {
        // Empty trace.
        assert!(validate_trace(&doc("", 0)).is_err());
        // Unsupported phase.
        let bad_ph = doc(&ev("a", "X", 0.0, 1), 0);
        assert!(validate_trace(&bad_ph).unwrap_err().0.contains("phase"));
        // Non-monotone timestamps.
        let backwards = doc(
            &format!("{}, {}", ev("a", "i", 5.0, 1), ev("b", "i", 1.0, 1)),
            0,
        );
        assert!(validate_trace(&backwards)
            .unwrap_err()
            .0
            .contains("precedes"));
        // End with nothing open (and no drops to excuse it).
        let orphan = doc(&ev("a", "E", 0.0, 1), 0);
        assert!(validate_trace(&orphan).unwrap_err().0.contains("no span"));
        // The same orphan is tolerated when the ring dropped events.
        assert!(validate_trace(&doc(&ev("a", "E", 0.0, 1), 3)).is_ok());
        // Mismatched end name is never tolerated.
        let crossed = doc(
            &format!("{}, {}", ev("a", "B", 0.0, 1), ev("b", "E", 1.0, 1)),
            9,
        );
        assert!(validate_trace(&crossed).unwrap_err().0.contains("open"));
        // A begin left open at the end of the trace.
        let unclosed = doc(&ev("a", "B", 0.0, 1), 0);
        assert!(validate_trace(&unclosed)
            .unwrap_err()
            .0
            .contains("still open"));
        // Begin/end discipline is per-tid: interleaving across threads
        // is fine.
        let lanes = doc(
            &format!(
                "{}, {}, {}, {}",
                ev("cluster", "B", 0.0, 1),
                ev("residual", "B", 1.0, 2),
                ev("cluster", "E", 2.0, 1),
                ev("residual", "E", 3.0, 2)
            ),
            0,
        );
        let summary = validate_trace(&lanes).unwrap();
        assert_eq!(summary.tids.len(), 2);
        assert_eq!(summary.tids_by_name["cluster"], BTreeSet::from([1]));
    }
}
