//! Krylov-subspace solvers over an abstract compute platform.
//!
//! The paper programs its accelerator with Krylov subspace solvers
//! built from three kernels — sparse MVM, AXPY, and dot product (§VI).
//! This crate implements those solvers from scratch over the
//! [`Platform`] trait, so the same code drives the reference CPU path,
//! the analytic GPU model, and the memristive accelerator engine:
//!
//! * [`cg`](cg::cg) — conjugate gradients for SPD systems;
//! * [`bicgstab`](bicgstab::bicgstab) — stabilized BiCG for general
//!   systems (the paper's non-SPD solver);
//! * [`bicg`](bicg::bicg) — classical BiCG (needs `Aᵀ` products);
//! * [`gmres`](gmres::gmres) — restarted GMRES(m);
//! * [`pcg_jacobi`](pcg::pcg_jacobi) — Jacobi-preconditioned CG (an
//!   extension beyond the paper's plain CG);
//! * [`block_cg`](block_cg::block_cg) — k independent CG recurrences in
//!   lockstep over one batched MVM per iteration (multi-RHS, §VIII-D
//!   amortization);
//! * [`jacobi`](jacobi::jacobi) — a stationary-method reference.
//!
//! # Examples
//!
//! ```
//! use memsci_solvers::cg::cg;
//! use memsci_solvers::platform::CsrPlatform;
//! use memsci_solvers::report::SolveOptions;
//! use memsci_sparse::generate::poisson2d;
//!
//! let mut platform = CsrPlatform::new(poisson2d(10, 10));
//! let b = vec![1.0; 100];
//! let mut x = vec![0.0; 100];
//! let report = cg(&mut platform, &b, &mut x, &SolveOptions::with_tol(1e-10));
//! assert!(report.converged);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bicg;
pub mod bicgstab;
pub mod block_cg;
pub mod cg;
pub mod gmres;
pub mod jacobi;
pub mod pcg;
pub mod platform;
pub mod report;

pub use platform::{CsrPlatform, Platform};
pub use report::{SolveOptions, SolveReport};
