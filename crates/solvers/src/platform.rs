//! The compute-platform abstraction behind the solvers.
//!
//! Krylov subspace solvers are built from three kernels (§VI): a sparse
//! matrix–dense vector multiply, a dense AXPY, and a dense dot product.
//! [`Platform`] exposes exactly those, plus cost counters, so one solver
//! implementation runs unchanged on the reference CPU path, the GPU
//! model, and the memristive accelerator engine.

use memsci_sparse::Csr;

/// A compute platform providing the solver kernels of §VI-A and
/// accounting for their simulated cost.
///
/// Implementations accumulate model time and energy as kernels execute;
/// solvers snapshot the counters around a solve to attribute cost.
pub trait Platform {
    /// Problem dimension (the matrices are square).
    fn n(&self) -> usize;

    /// `y = A·x` (sparse MVM, §VI-A1).
    ///
    /// # Panics
    ///
    /// Implementations panic if the slice lengths differ from [`Platform::n`].
    fn spmv(&mut self, x: &[f64], y: &mut [f64]);

    /// `y = Aᵀ·x` (needed by BiCG).
    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]);

    /// Batched multi-RHS sparse MVM: `ys[j] = A·xs[j]` for every
    /// right-hand side, against one programmed operator.
    ///
    /// Programming a matrix into crossbars is expensive while MVMs
    /// against an already-programmed operator are cheap (§VIII-D), so
    /// platforms override this to stream all `k` vectors through the
    /// operator in one staged kernel. The default loops over
    /// [`Platform::spmv`]; every implementation (including the default)
    /// must produce results bitwise identical to `k` sequential solo
    /// `spmv` calls in the same order.
    ///
    /// Each `ys[j]` is resized to [`Platform::n`] and overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != ys.len()` or any `xs[j].len()` differs
    /// from [`Platform::n`].
    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "batch rhs/output count mismatch");
        if xs.is_empty() {
            return;
        }
        memsci_telemetry::incr(memsci_telemetry::Counter::BatchMvmOps, 1);
        memsci_telemetry::incr(memsci_telemetry::Counter::BatchRhsVectors, xs.len() as u64);
        let n = self.n();
        for (x, y) in xs.iter().zip(ys.iter_mut()) {
            y.resize(n, 0.0);
            self.spmv(x, y);
        }
    }

    /// Dense dot product `x·y` (§VI-A2).
    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64;

    /// `y = α·x + β·y` (generalized AXPY, §VI-A3).
    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]);

    /// The main diagonal of `A` (used by the Jacobi reference solver
    /// and the Jacobi-preconditioned CG).
    ///
    /// Implementations precompute the diagonal when the operator is
    /// programmed and hand out a shared reference-counted view, so
    /// calling this on a hot path neither recomputes nor copies the
    /// vector.
    fn diagonal(&self) -> std::sync::Arc<[f64]>;

    /// Simulated seconds elapsed so far.
    fn elapsed_seconds(&self) -> f64;

    /// Simulated joules consumed so far.
    fn energy_joules(&self) -> f64;

    /// `y += α·x`.
    fn axpy(&mut self, alpha: f64, x: &[f64], y: &mut [f64]) {
        self.axpby(alpha, x, 1.0, y);
    }

    /// `dst = src`.
    fn assign(&mut self, src: &[f64], dst: &mut [f64]) {
        self.axpby(1.0, src, 0.0, dst);
    }

    /// Euclidean norm `‖x‖₂`.
    ///
    /// The plain `dot(x,x)` sum of squares overflows to `inf` once
    /// `|xᵢ| ≳ 1e154`, which would silently break the `‖b‖ == 0` and
    /// tolerance logic in the solvers. When the squared sum is
    /// non-finite the norm is recomputed with a scaled two-pass
    /// fallback (divide by the max magnitude, sum, rescale); the rare
    /// second pass runs digitally and is not charged to the platform.
    /// `NaN` entries still yield `NaN`, and genuine `±inf` entries
    /// yield `inf`.
    fn norm(&mut self, x: &[f64]) -> f64 {
        let d = self.dot(x, x);
        if d.is_finite() {
            return d.max(0.0).sqrt();
        }
        if x.iter().any(|v| v.is_nan()) {
            return f64::NAN;
        }
        let m = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        if m == 0.0 || m.is_infinite() {
            return m;
        }
        let inv = 1.0 / m;
        let sum: f64 = x
            .iter()
            .map(|&v| {
                let s = v * inv;
                s * s
            })
            .sum();
        m * sum.sqrt()
    }
}

/// Recomputes the *true* relative residual `‖b − A·x‖ / b_norm` with
/// one fresh operator application, writing `b − A·x` into `r`.
///
/// Krylov recurrences carry the residual as a drifting scalar; after a
/// corrupted product (the paper's Figure 12/13 noise studies) that
/// scalar can reach the tolerance while the iterate does not solve the
/// system. Solvers call this once after their loop so the final
/// `converged` / `relative_residual` claim reflects the iterate, not
/// the recurrence. A non-finite iterate reports `inf` without touching
/// the operator.
pub fn true_relative_residual<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &[f64],
    b_norm: f64,
    r: &mut [f64],
) -> f64 {
    if x.iter().any(|v| !v.is_finite()) {
        return f64::INFINITY;
    }
    platform.spmv(x, r);
    platform.axpby(1.0, b, -1.0, r);
    platform.norm(r) / b_norm
}

/// A cost-free reference platform executing kernels in plain `f64` on a
/// CSR matrix — the software baseline the engines are validated against.
///
/// # Examples
///
/// ```
/// use memsci_solvers::platform::{CsrPlatform, Platform};
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(4, 4));
/// let x = vec![1.0; 16];
/// let mut y = vec![0.0; 16];
/// p.spmv(&x, &mut y);
/// assert_eq!(p.elapsed_seconds(), 0.0); // reference costs nothing
/// ```
#[derive(Debug, Clone)]
pub struct CsrPlatform {
    a: Csr,
    diag: std::sync::Arc<[f64]>,
}

impl CsrPlatform {
    /// Wraps a CSR matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: Csr) -> Self {
        assert_eq!(a.rows(), a.cols(), "platform matrices must be square");
        let diag = a.diagonal().into();
        CsrPlatform { a, diag }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }
}

impl Platform for CsrPlatform {
    fn n(&self) -> usize {
        self.a.rows()
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_transpose(x, y);
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> std::sync::Arc<[f64]> {
        std::sync::Arc::clone(&self.diag)
    }

    fn elapsed_seconds(&self) -> f64 {
        0.0
    }

    fn energy_joules(&self) -> f64 {
        0.0
    }
}

/// Plain dot product (shared by platform implementations).
pub fn dot_f64(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Plain `y = α·x + β·y` (shared by platform implementations).
pub fn axpby_f64(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    if beta == 0.0 {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi;
        }
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi + beta * *yi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::Coo;

    #[test]
    fn csr_platform_kernels() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 2.0), (1, 1, 3.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        assert_eq!(p.n(), 2);
        let mut y = vec![0.0; 2];
        p.spmv(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![2.0, 6.0]);
        p.spmv_transpose(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![2.0, 6.0]);
        assert_eq!(p.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut z = vec![1.0, 1.0];
        p.axpby(2.0, &[1.0, 2.0], 0.5, &mut z);
        assert_eq!(z, vec![2.5, 4.5]);
        assert_eq!(&*p.diagonal(), &[2.0, 3.0]);
    }

    #[test]
    fn default_axpy_and_assign() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 1.0)]).unwrap().to_csr();
        let mut p = CsrPlatform::new(a);
        let mut y = vec![1.0, 1.0];
        p.axpy(3.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 7.0]);
        let mut d = vec![0.0, 0.0];
        p.assign(&[5.0, 6.0], &mut d);
        assert_eq!(d, vec![5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let a = Coo::from_triplets(1, 2, [(0, 1, 1.0)]).unwrap().to_csr();
        CsrPlatform::new(a);
    }

    #[test]
    fn axpby_beta_zero_overwrites_garbage() {
        let mut y = vec![f64::NAN, 1.0];
        axpby_f64(1.0, &[2.0, 3.0], 0.0, &mut y);
        assert_eq!(y, vec![2.0, 3.0]); // NaN must not propagate
    }

    #[test]
    fn norm_survives_huge_magnitudes() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 1.0)]).unwrap().to_csr();
        let mut p = CsrPlatform::new(a);
        // dot(x,x) overflows to inf; the scaled fallback recovers the
        // exact answer (1e160 · √2 is representable).
        let x = vec![1e160, 1e160];
        let got = p.norm(&x);
        assert!(got.is_finite(), "norm overflowed: {got}");
        let want = 1e160 * 2.0f64.sqrt();
        assert!((got - want).abs() <= 1e-12 * want, "{got} vs {want}");
        // Ordinary magnitudes keep the single-pass bitwise behaviour.
        assert_eq!(p.norm(&[3.0, 4.0]).to_bits(), 5.0f64.to_bits());
        // Edge cases stay honest rather than collapsing to zero.
        assert_eq!(p.norm(&[0.0, 0.0]), 0.0);
        assert!(p.norm(&[1e160, f64::NAN]).is_nan());
        assert_eq!(p.norm(&[1e160, f64::INFINITY]), f64::INFINITY);
    }

    #[test]
    fn default_spmv_batch_matches_sequential_spmv() {
        let a = Coo::from_triplets(3, 3, [(0, 0, 2.0), (1, 2, -1.0), (2, 1, 4.0)])
            .unwrap()
            .to_csr();
        let xs: Vec<Vec<f64>> = vec![vec![1.0, 2.0, 3.0], vec![-0.5, 0.25, 8.0]];
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let mut p = CsrPlatform::new(a.clone());
        let mut ys = vec![Vec::new(), Vec::new()];
        p.spmv_batch(&refs, &mut ys);
        let mut solo = CsrPlatform::new(a);
        for (x, y) in xs.iter().zip(&ys) {
            let mut want = vec![0.0; 3];
            solo.spmv(x, &mut want);
            let got: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want);
        }
        // Empty batches are a no-op.
        p.spmv_batch(&[], &mut []);
    }

    #[test]
    fn true_relative_residual_reports_the_iterate() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 2.0), (1, 1, 4.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        let b = vec![2.0, 4.0];
        let mut r = vec![0.0; 2];
        let b_norm = 20.0f64.sqrt();
        let exact = true_relative_residual(&mut p, &b, &[1.0, 1.0], b_norm, &mut r);
        assert_eq!(exact, 0.0);
        let off = true_relative_residual(&mut p, &b, &[0.0, 0.0], b_norm, &mut r);
        assert!((off - 1.0).abs() < 1e-15);
        let lost = true_relative_residual(&mut p, &b, &[f64::NAN, 0.0], b_norm, &mut r);
        assert!(lost.is_infinite());
    }
}
