//! The compute-platform abstraction behind the solvers.
//!
//! Krylov subspace solvers are built from three kernels (§VI): a sparse
//! matrix–dense vector multiply, a dense AXPY, and a dense dot product.
//! [`Platform`] exposes exactly those, plus cost counters, so one solver
//! implementation runs unchanged on the reference CPU path, the GPU
//! model, and the memristive accelerator engine.

use memsci_sparse::Csr;

/// A compute platform providing the solver kernels of §VI-A and
/// accounting for their simulated cost.
///
/// Implementations accumulate model time and energy as kernels execute;
/// solvers snapshot the counters around a solve to attribute cost.
pub trait Platform {
    /// Problem dimension (the matrices are square).
    fn n(&self) -> usize;

    /// `y = A·x` (sparse MVM, §VI-A1).
    ///
    /// # Panics
    ///
    /// Implementations panic if the slice lengths differ from [`Platform::n`].
    fn spmv(&mut self, x: &[f64], y: &mut [f64]);

    /// `y = Aᵀ·x` (needed by BiCG).
    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]);

    /// Dense dot product `x·y` (§VI-A2).
    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64;

    /// `y = α·x + β·y` (generalized AXPY, §VI-A3).
    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]);

    /// The main diagonal of `A` (used by the Jacobi reference solver).
    fn diagonal(&self) -> Vec<f64>;

    /// Simulated seconds elapsed so far.
    fn elapsed_seconds(&self) -> f64;

    /// Simulated joules consumed so far.
    fn energy_joules(&self) -> f64;

    /// `y += α·x`.
    fn axpy(&mut self, alpha: f64, x: &[f64], y: &mut [f64]) {
        self.axpby(alpha, x, 1.0, y);
    }

    /// `dst = src`.
    fn assign(&mut self, src: &[f64], dst: &mut [f64]) {
        self.axpby(1.0, src, 0.0, dst);
    }

    /// Euclidean norm `‖x‖₂`.
    fn norm(&mut self, x: &[f64]) -> f64 {
        self.dot(x, x).max(0.0).sqrt()
    }
}

/// A cost-free reference platform executing kernels in plain `f64` on a
/// CSR matrix — the software baseline the engines are validated against.
///
/// # Examples
///
/// ```
/// use memsci_solvers::platform::{CsrPlatform, Platform};
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(4, 4));
/// let x = vec![1.0; 16];
/// let mut y = vec![0.0; 16];
/// p.spmv(&x, &mut y);
/// assert_eq!(p.elapsed_seconds(), 0.0); // reference costs nothing
/// ```
#[derive(Debug, Clone)]
pub struct CsrPlatform {
    a: Csr,
}

impl CsrPlatform {
    /// Wraps a CSR matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: Csr) -> Self {
        assert_eq!(a.rows(), a.cols(), "platform matrices must be square");
        CsrPlatform { a }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }
}

impl Platform for CsrPlatform {
    fn n(&self) -> usize {
        self.a.rows()
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv_transpose(x, y);
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> Vec<f64> {
        self.a.diagonal()
    }

    fn elapsed_seconds(&self) -> f64 {
        0.0
    }

    fn energy_joules(&self) -> f64 {
        0.0
    }
}

/// Plain dot product (shared by platform implementations).
pub fn dot_f64(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Plain `y = α·x + β·y` (shared by platform implementations).
pub fn axpby_f64(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    if beta == 0.0 {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi;
        }
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi + beta * *yi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::Coo;

    #[test]
    fn csr_platform_kernels() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 2.0), (1, 1, 3.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        assert_eq!(p.n(), 2);
        let mut y = vec![0.0; 2];
        p.spmv(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![2.0, 6.0]);
        p.spmv_transpose(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![2.0, 6.0]);
        assert_eq!(p.dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut z = vec![1.0, 1.0];
        p.axpby(2.0, &[1.0, 2.0], 0.5, &mut z);
        assert_eq!(z, vec![2.5, 4.5]);
        assert_eq!(p.diagonal(), vec![2.0, 3.0]);
    }

    #[test]
    fn default_axpy_and_assign() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 1.0)]).unwrap().to_csr();
        let mut p = CsrPlatform::new(a);
        let mut y = vec![1.0, 1.0];
        p.axpy(3.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![4.0, 7.0]);
        let mut d = vec![0.0, 0.0];
        p.assign(&[5.0, 6.0], &mut d);
        assert_eq!(d, vec![5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let a = Coo::from_triplets(1, 2, [(0, 1, 1.0)]).unwrap().to_csr();
        CsrPlatform::new(a);
    }

    #[test]
    fn axpby_beta_zero_overwrites_garbage() {
        let mut y = vec![f64::NAN, 1.0];
        axpby_f64(1.0, &[2.0, 3.0], 0.0, &mut y);
        assert_eq!(y, vec![2.0, 3.0]); // NaN must not propagate
    }
}
