//! Jacobi iteration — the stationary-method reference point (§II-B
//! subdivides iterative methods into stationary and Krylov subspace
//! methods; the paper targets the latter, and this solver exists to
//! compare against them).

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by Jacobi iteration, updating `x` in place.
///
/// Converges for strictly diagonally dominant matrices; expect far more
/// iterations than the Krylov methods.
///
/// # Examples
///
/// ```
/// use memsci_solvers::jacobi::jacobi;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::Coo;
///
/// let a = Coo::from_triplets(2, 2, [(0, 0, 4.0), (0, 1, 1.0), (1, 1, 5.0)])
///     .unwrap()
///     .to_csr();
/// let mut p = CsrPlatform::new(a);
/// let mut x = vec![0.0; 2];
/// let report = jacobi(&mut p, &[6.0, 10.0], &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// assert!((x[0] - 1.0).abs() < 1e-7 && (x[1] - 2.0).abs() < 1e-7);
/// ```
///
/// # Panics
///
/// Panics if the dimensions disagree or the matrix has a zero diagonal
/// entry.
pub fn jacobi<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/jacobi", opts, || jacobi_inner(platform, b, x, opts))
}

fn jacobi_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let diag = platform.diagonal();
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "Jacobi requires a non-zero diagonal"
    );
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    let mut r = vec![0.0; n];
    let mut res = f64::INFINITY;
    for _ in 0..opts.max_iters {
        let _iter = memsci_telemetry::span("iter");
        // r = b − A·x
        platform.spmv(x, &mut r);
        platform.axpby(1.0, b, -1.0, &mut r);
        res = platform.norm(&r) / b_norm;
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }
        // x += D⁻¹ r  (performed element-wise on the local processor).
        for i in 0..n {
            x[i] += r[i] / diag[i];
        }
        report.iterations += 1;
    }

    report.relative_residual = res;
    report.converged |= res <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::poisson2d;

    #[test]
    fn converges_on_poisson_slowly() {
        let a = poisson2d(6, 6);
        let mut pj = CsrPlatform::new(a.clone());
        let b = vec![1.0; 36];
        let mut xj = vec![0.0; 36];
        let opts = SolveOptions::with_tol(1e-8).max_iters(100_000);
        let rep_j = jacobi(&mut pj, &b, &mut xj, &opts);
        assert!(rep_j.converged);
        let mut pc = CsrPlatform::new(a);
        let mut xc = vec![0.0; 36];
        let rep_c = crate::cg::cg(&mut pc, &b, &mut xc, &opts);
        assert!(rep_c.converged);
        // The stationary method needs far more iterations than Krylov.
        assert!(rep_j.iterations > 5 * rep_c.iterations);
        for (a, b) in xj.iter().zip(&xc) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero diagonal")]
    fn rejects_zero_diagonal() {
        let a = memsci_sparse::Coo::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; 2];
        jacobi(&mut p, &[1.0, 1.0], &mut x, &SolveOptions::default());
    }
}
