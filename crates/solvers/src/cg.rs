//! Conjugate gradient for symmetric positive definite systems
//! (Hestenes & Stiefel; the paper's solver for the SPD half of
//! Table II).

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by conjugate gradients, updating `x` in place.
///
/// `A` must be symmetric positive definite for convergence guarantees.
///
/// # Examples
///
/// ```
/// use memsci_solvers::cg::cg;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(8, 8));
/// let b = vec![1.0; 64];
/// let mut x = vec![0.0; 64];
/// let report = cg(&mut p, &b, &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// ```
///
/// # Panics
///
/// Panics if `b.len()` or `x.len()` differ from the platform dimension.
pub fn cg<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/cg", opts, || cg_inner(platform, b, x, opts))
}

fn cg_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    // r = b − A·x
    let mut r = vec![0.0; n];
    platform.spmv(x, &mut r);
    platform.axpby(1.0, b, -1.0, &mut r);
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rs = platform.dot(&r, &r);
    // Hardening against unreliable operators (the Figure 12/13 noise
    // studies): restart from steepest descent on breakdown instead of
    // aborting, and refresh the true residual periodically so the
    // recurrence cannot drift after a corrupted product. Both are
    // standard practice and cost one extra SpMV per refresh interval.
    const REFRESH_INTERVAL: usize = 50;
    let mut restarts_left = 32usize;

    for iter in 0..opts.max_iters {
        let _iter = memsci_telemetry::span("iter");
        if iter > 0 && iter % REFRESH_INTERVAL == 0 {
            if x.iter().any(|v| !v.is_finite()) {
                break; // the iterate is lost; report non-convergence
            }
            platform.spmv(x, &mut r);
            platform.axpby(1.0, b, -1.0, &mut r);
            rs = platform.dot(&r, &r);
        }
        let res = rs.sqrt() / b_norm;
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }
        platform.spmv(&p, &mut q);
        let pq = platform.dot(&p, &q);
        let alpha = rs / pq;
        if pq <= 0.0 || !pq.is_finite() || !rs.is_finite() || !alpha.is_finite() {
            if restarts_left == 0 || !rs.is_finite() || x.iter().any(|v| !v.is_finite()) {
                break; // genuinely not SPD (or the state is lost)
            }
            restarts_left -= 1;
            // Restart: fresh true residual, steepest-descent direction.
            platform.spmv(x, &mut r);
            platform.axpby(1.0, b, -1.0, &mut r);
            rs = platform.dot(&r, &r);
            if !rs.is_finite() {
                break;
            }
            p.copy_from_slice(&r);
            report.iterations += 1;
            continue;
        }
        platform.axpy(alpha, &p, x);
        platform.axpy(-alpha, &q, &mut r);
        let rs_new = platform.dot(&r, &r);
        if !rs_new.is_finite() {
            break; // a corrupted product destroyed the residual
        }
        let beta = rs_new / rs;
        platform.axpby(1.0, &r, beta, &mut p);
        rs = rs_new;
        report.iterations += 1;
    }

    // The recurrence scalar `rs` drifts from ‖b − A·x‖² whenever a
    // product was corrupted or rounded (the whole premise of the noise
    // studies), so never let it testify about the final iterate: spend
    // one fresh product on the true residual before claiming anything.
    report.relative_residual =
        crate::platform::true_relative_residual(platform, b, x, b_norm, &mut r);
    report.converged = report.relative_residual <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::{poisson2d, poisson3d};
    use memsci_sparse::Coo;

    fn residual(p: &CsrPlatform, b: &[f64], x: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        p.matrix().spmv(x, &mut r);
        r.iter()
            .zip(b)
            .map(|(ri, bi)| (bi - ri).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solves_small_diagonal_system() {
        let a = Coo::from_triplets(3, 3, [(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        let b = vec![2.0, 8.0, 32.0];
        let mut x = vec![0.0; 3];
        let rep = cg(&mut p, &b, &mut x, &SolveOptions::default());
        assert!(rep.converged);
        for (xi, want) in x.iter().zip([1.0, 2.0, 4.0]) {
            assert!((xi - want).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_poisson_2d_and_3d() {
        for a in [poisson2d(12, 12), poisson3d(5, 5, 5)] {
            let n = a.rows();
            let mut p = CsrPlatform::new(a);
            let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
            let mut x = vec![0.0; n];
            let rep = cg(&mut p, &b, &mut x, &SolveOptions::with_tol(1e-10));
            assert!(
                rep.converged,
                "after {} iters res {}",
                rep.iterations, rep.relative_residual
            );
            let bn = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(residual(&p, &b, &x) <= 1e-9 * bn);
        }
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = poisson2d(6, 6);
        let mut p = CsrPlatform::new(a);
        let b = vec![1.0; 36];
        let mut x = vec![0.0; 36];
        cg(&mut p, &b, &mut x, &SolveOptions::default());
        let warm = x.clone();
        let rep = cg(&mut p, &b, &mut x, &SolveOptions::default());
        assert_eq!(rep.iterations, 0);
        assert!(rep.converged);
        // A converged warm start must leave the solution untouched.
        assert_eq!(x, warm);
    }

    /// A platform whose `spmv` silently doubles one product mid-solve:
    /// the recurrence scalar keeps shrinking, but the iterate stops
    /// solving the system. The report must notice via the final true
    /// residual instead of trusting the drifted recurrence.
    struct CorruptingPlatform {
        inner: CsrPlatform,
        spmv_calls: usize,
        corrupt_at: usize,
    }

    impl Platform for CorruptingPlatform {
        fn n(&self) -> usize {
            self.inner.n()
        }
        fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
            self.inner.spmv(x, y);
            self.spmv_calls += 1;
            if self.spmv_calls == self.corrupt_at {
                for v in y.iter_mut() {
                    *v *= 2.0;
                }
            }
        }
        fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
            self.inner.spmv_transpose(x, y);
        }
        fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
            self.inner.dot(x, y)
        }
        fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
            self.inner.axpby(alpha, x, beta, y);
        }
        fn diagonal(&self) -> std::sync::Arc<[f64]> {
            self.inner.diagonal()
        }
        fn elapsed_seconds(&self) -> f64 {
            self.inner.elapsed_seconds()
        }
        fn energy_joules(&self) -> f64 {
            self.inner.energy_joules()
        }
    }

    #[test]
    fn corrupted_product_cannot_fake_convergence() {
        let a = poisson2d(6, 6);
        let b: Vec<f64> = (0..36).map(|i| (i as f64 * 0.31).sin() + 1.0).collect();
        // Doubling A·p keeps p·q positive (no restart fires) while
        // desynchronizing the recurrence from b − A·x. Cap iterations
        // below the periodic refresh so only the final check can save
        // the report.
        let mut p = CorruptingPlatform {
            inner: CsrPlatform::new(a.clone()),
            spmv_calls: 0,
            corrupt_at: 6,
        };
        let mut x = vec![0.0; 36];
        let opts = SolveOptions::with_tol(1e-10).max_iters(40);
        let rep = cg(&mut p, &b, &mut x, &opts);
        // The drifted recurrence scalar reaches the tolerance…
        assert!(
            rep.iterations < 40,
            "recurrence never got small: {} iters",
            rep.iterations
        );
        // …but the iterate does not solve the system, and the report
        // must say so.
        let mut r = vec![0.0; 36];
        a.spmv(&x, &mut r);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (bi - ri).powi(2))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn > 1e-6, "true residual {}", err / bn);
        assert!(!rep.converged);
        assert!(rep.relative_residual > 1e-6);
    }

    #[test]
    fn zero_rhs_yields_zero_solution() {
        let mut p = CsrPlatform::new(poisson2d(4, 4));
        let b = vec![0.0; 16];
        let mut x = vec![1.0; 16];
        let rep = cg(&mut p, &b, &mut x, &SolveOptions::default());
        assert!(rep.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let mut p = CsrPlatform::new(poisson2d(16, 16));
        let b = vec![1.0; 256];
        let mut x = vec![0.0; 256];
        let opts = SolveOptions::default().max_iters(3);
        let rep = cg(&mut p, &b, &mut x, &opts);
        assert_eq!(rep.iterations, 3);
        assert!(!rep.converged);
    }

    #[test]
    fn residual_history_is_monotone_overall() {
        let mut p = CsrPlatform::new(poisson2d(10, 10));
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut x = vec![0.0; 100];
        let opts = SolveOptions::default().record_residuals(true);
        let rep = cg(&mut p, &b, &mut x, &opts);
        assert!(rep.converged);
        let h = &rep.residual_history;
        assert!(h.first().unwrap() > h.last().unwrap());
    }

    #[test]
    fn indefinite_matrix_breaks_down_gracefully() {
        let a = Coo::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, -1.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        let b = vec![0.0, 1.0];
        let mut x = vec![0.0; 2];
        let rep = cg(&mut p, &b, &mut x, &SolveOptions::default().max_iters(50));
        // Must terminate without panicking or looping forever.
        assert!(rep.iterations <= 50);
    }
}
