//! Stabilized bi-conjugate gradient (van der Vorst), the paper's solver
//! for the non-SPD matrices of Table II.

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by BiCG-STAB, updating `x` in place.
///
/// Works for general (non-symmetric) matrices; requires only `A·x`
/// products.
///
/// # Examples
///
/// ```
/// use memsci_solvers::bicgstab::bicgstab;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::Coo;
///
/// let a = Coo::from_triplets(2, 2, [(0, 0, 4.0), (0, 1, 1.0), (1, 1, 3.0)])
///     .unwrap()
///     .to_csr();
/// let mut p = CsrPlatform::new(a);
/// let mut x = vec![0.0; 2];
/// let report = bicgstab(&mut p, &[9.0, 6.0], &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// assert!((x[0] - 1.75).abs() < 1e-8 && (x[1] - 2.0).abs() < 1e-8);
/// ```
///
/// # Panics
///
/// Panics if `b.len()` or `x.len()` differ from the platform dimension.
pub fn bicgstab<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/bicgstab", opts, || {
        bicgstab_inner(platform, b, x, opts)
    })
}

fn bicgstab_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    let mut r = vec![0.0; n];
    platform.spmv(x, &mut r);
    platform.axpby(1.0, b, -1.0, &mut r);
    let r_hat = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];
    let mut res = platform.norm(&r) / b_norm;

    for _ in 0..opts.max_iters {
        let _iter = memsci_telemetry::span("iter");
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }
        let rho_new = platform.dot(&r_hat, &r);
        if rho_new == 0.0 || !rho_new.is_finite() {
            break; // breakdown
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        // p = r + β (p − ω v)
        platform.axpy(-omega, &v, &mut p);
        platform.axpby(1.0, &r, beta, &mut p);
        platform.spmv(&p, &mut v);
        let rhat_v = platform.dot(&r_hat, &v);
        if rhat_v == 0.0 || !rhat_v.is_finite() {
            break;
        }
        alpha = rho / rhat_v;
        // s = r − α v
        platform.assign(&r, &mut s);
        platform.axpy(-alpha, &v, &mut s);
        let s_norm = platform.norm(&s);
        if s_norm / b_norm <= opts.tol {
            platform.axpy(alpha, &p, x);
            report.iterations += 1;
            report.converged = true;
            break;
        }
        platform.spmv(&s, &mut t);
        let tt = platform.dot(&t, &t);
        if tt == 0.0 || !tt.is_finite() {
            break;
        }
        omega = platform.dot(&t, &s) / tt;
        if omega == 0.0 || !omega.is_finite() {
            break;
        }
        platform.axpy(alpha, &p, x);
        platform.axpy(omega, &s, x);
        // r = s − ω t
        platform.assign(&s, &mut r);
        platform.axpy(-omega, &t, &mut r);
        res = platform.norm(&r) / b_norm;
        report.iterations += 1;
    }

    // `r` is a recurrence that can drift from b − A·x after a corrupted
    // or rounded product; recompute the true residual once before
    // reporting (see `cg` for the rationale).
    report.relative_residual =
        crate::platform::true_relative_residual(platform, b, x, b_norm, &mut r);
    report.converged = report.relative_residual <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::{banded, make_diagonally_dominant, poisson2d, ValueModel};
    use memsci_sparse::Coo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_nonsymmetric_system() {
        // Upper bidiagonal, strictly dominant.
        let a = Coo::from_triplets(
            4,
            4,
            [
                (0, 0, 3.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (1, 2, -1.0),
                (2, 2, 4.0),
                (2, 3, 0.5),
                (3, 3, 2.0),
            ],
        )
        .unwrap()
        .to_csr();
        let want = [1.0, -2.0, 0.5, 3.0];
        let mut b = vec![0.0; 4];
        a.spmv(&want, &mut b);
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; 4];
        let rep = bicgstab(&mut p, &b, &mut x, &SolveOptions::with_tol(1e-12));
        assert!(rep.converged);
        for (xi, wi) in x.iter().zip(want) {
            assert!((xi - wi).abs() < 1e-8, "{xi} vs {wi}");
        }
    }

    #[test]
    fn solves_random_dominant_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = banded(200, 6, 0.5, ValueModel::with_spread(8), &mut rng);
        let a = make_diagonally_dominant(&base, 1.5);
        let n = a.rows();
        let want: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&want, &mut b);
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; n];
        let rep = bicgstab(&mut p, &b, &mut x, &SolveOptions::with_tol(1e-10));
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-6, "{xi} vs {wi}");
        }
    }

    #[test]
    fn also_solves_spd_systems() {
        let a = poisson2d(10, 10);
        let mut p = CsrPlatform::new(a);
        let b = vec![1.0; 100];
        let mut x = vec![0.0; 100];
        let rep = bicgstab(&mut p, &b, &mut x, &SolveOptions::default());
        assert!(rep.converged);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let mut p = CsrPlatform::new(poisson2d(4, 4));
        let mut x = vec![5.0; 16];
        let rep = bicgstab(&mut p, &[0.0; 16], &mut x, &SolveOptions::default());
        assert!(rep.converged);
        assert_eq!(rep.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn respects_iteration_cap() {
        let mut p = CsrPlatform::new(poisson2d(16, 16));
        let b = vec![1.0; 256];
        let mut x = vec![0.0; 256];
        let opts = SolveOptions::default().max_iters(2);
        let rep = bicgstab(&mut p, &b, &mut x, &opts);
        assert!(rep.iterations <= 2);
        assert!(!rep.converged);
    }
}
