//! Jacobi-preconditioned conjugate gradient.
//!
//! An extension beyond the paper's plain CG: diagonal (Jacobi)
//! preconditioning costs one extra element-wise multiply per iteration —
//! an AXPY-class local-processor kernel (§VI-A3) — and sharply reduces
//! iteration counts on badly scaled systems, which matters for FEM
//! matrices whose value dynamic ranges motivate §IV-B in the first
//! place.

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by conjugate gradients with Jacobi (diagonal)
/// preconditioning, updating `x` in place.
///
/// # Examples
///
/// ```
/// use memsci_solvers::pcg::pcg_jacobi;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(8, 8));
/// let b = vec![1.0; 64];
/// let mut x = vec![0.0; 64];
/// let report = pcg_jacobi(&mut p, &b, &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// ```
///
/// # Panics
///
/// Panics if the dimensions disagree or the matrix has a zero diagonal
/// entry.
pub fn pcg_jacobi<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/pcg_jacobi", opts, || {
        pcg_jacobi_inner(platform, b, x, opts)
    })
}

fn pcg_jacobi_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let inv_diag: Vec<f64> = platform
        .diagonal()
        .iter()
        .map(|&d| {
            assert!(
                d != 0.0,
                "Jacobi preconditioning requires a non-zero diagonal"
            );
            1.0 / d
        })
        .collect();
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    let mut r = vec![0.0; n];
    platform.spmv(x, &mut r);
    platform.axpby(1.0, b, -1.0, &mut r);
    let mut z = vec![0.0; n];
    jacobi_apply(platform, &r, &mut z, &inv_diag);
    let mut p = z.clone();
    let mut q = vec![0.0; n];
    let mut rz = platform.dot(&r, &z);
    let mut res = platform.norm(&r) / b_norm;

    for _ in 0..opts.max_iters {
        let _iter = memsci_telemetry::span("iter");
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }
        platform.spmv(&p, &mut q);
        let pq = platform.dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            break;
        }
        let alpha = rz / pq;
        platform.axpy(alpha, &p, x);
        platform.axpy(-alpha, &q, &mut r);
        jacobi_apply(platform, &r, &mut z, &inv_diag);
        let rz_new = platform.dot(&r, &z);
        let beta = rz_new / rz;
        platform.axpby(1.0, &z, beta, &mut p);
        rz = rz_new;
        res = platform.norm(&r) / b_norm;
        report.iterations += 1;
    }

    // `res` already tracks ‖r‖, but `r` itself is a recurrence that can
    // drift from b − A·x; recompute the true residual once before
    // reporting (see `cg` for the rationale).
    report.relative_residual =
        crate::platform::true_relative_residual(platform, b, x, b_norm, &mut r);
    report.converged = report.relative_residual <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

/// `z = D⁻¹ r`, charged to the platform as one element-wise pass.
fn jacobi_apply<P: Platform + ?Sized>(
    platform: &mut P,
    r: &[f64],
    z: &mut [f64],
    inv_diag: &[f64],
) {
    platform.assign(r, z);
    for (zi, mi) in z.iter_mut().zip(inv_diag) {
        *zi *= mi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::poisson2d;
    use memsci_sparse::Coo;

    /// A badly scaled SPD system: diag entries spanning ten orders of
    /// magnitude.
    fn scaled_system(n: usize) -> memsci_sparse::Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            let s = (10.0f64).powi((i % 11) as i32 - 5);
            coo.push(i, i, 4.0 * s).unwrap();
            if i + 1 < n {
                let t = (10.0f64).powi(((i + 1) % 11) as i32 - 5);
                let off = -(s * t).sqrt() * 0.5;
                coo.push(i, i + 1, off).unwrap();
                coo.push(i + 1, i, off).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn pcg_converges_where_cg_struggles() {
        let a = scaled_system(400);
        let b = vec![1.0; 400];
        let opts = SolveOptions::with_tol(1e-10).max_iters(4000);
        let mut p1 = CsrPlatform::new(a.clone());
        let mut x1 = vec![0.0; 400];
        let plain = cg(&mut p1, &b, &mut x1, &opts);
        let mut p2 = CsrPlatform::new(a);
        let mut x2 = vec![0.0; 400];
        let pre = pcg_jacobi(&mut p2, &b, &mut x2, &opts);
        assert!(pre.converged);
        assert!(
            pre.iterations * 2 < plain.iterations.max(1) || !plain.converged,
            "pcg {} vs cg {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn matches_cg_solution_on_poisson() {
        let a = poisson2d(10, 10);
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin()).collect();
        let opts = SolveOptions::with_tol(1e-11);
        let mut p1 = CsrPlatform::new(a.clone());
        let mut x1 = vec![0.0; 100];
        assert!(cg(&mut p1, &b, &mut x1, &opts).converged);
        let mut p2 = CsrPlatform::new(a);
        let mut x2 = vec![0.0; 100];
        assert!(pcg_jacobi(&mut p2, &b, &mut x2, &opts).converged);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs() {
        let mut p = CsrPlatform::new(poisson2d(3, 3));
        let mut x = vec![9.0; 9];
        let rep = pcg_jacobi(&mut p, &[0.0; 9], &mut x, &SolveOptions::default());
        assert!(rep.converged && x.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-zero diagonal")]
    fn rejects_zero_diagonal() {
        let a = Coo::from_triplets(2, 2, [(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; 2];
        pcg_jacobi(&mut p, &[1.0, 1.0], &mut x, &SolveOptions::default());
    }
}
