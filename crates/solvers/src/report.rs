//! Solve configuration and outcome reporting.

/// Options shared by all solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative residual tolerance: converged when
    /// `‖b − A·x‖ ≤ tol · ‖b‖` (the paper's stopping tolerance ε,
    /// §II-B).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Record the residual norm after every iteration.
    pub record_residuals: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-8,
            max_iters: 10_000,
            record_residuals: false,
        }
    }
}

impl SolveOptions {
    /// Options with the given tolerance.
    pub fn with_tol(tol: f64) -> Self {
        SolveOptions {
            tol,
            ..Default::default()
        }
    }
}

/// Outcome of a solve, including the platform cost attributed to it.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
    /// Final relative residual norm `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Residual norms per iteration (when requested).
    pub residual_history: Vec<f64>,
    /// Simulated seconds the solve consumed on the platform.
    pub time_seconds: f64,
    /// Simulated joules the solve consumed on the platform.
    pub energy_joules: f64,
}

impl SolveReport {
    pub(crate) fn new() -> Self {
        SolveReport {
            iterations: 0,
            converged: false,
            relative_residual: f64::INFINITY,
            residual_history: Vec::new(),
            time_seconds: 0.0,
            energy_joules: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolveOptions::default();
        assert!(o.tol > 0.0 && o.max_iters > 0 && !o.record_residuals);
        assert_eq!(SolveOptions::with_tol(1e-6).tol, 1e-6);
    }

    #[test]
    fn fresh_report_is_unconverged() {
        let r = SolveReport::new();
        assert!(!r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.relative_residual.is_infinite());
    }
}
