//! Solve configuration and outcome reporting.

use memsci_telemetry::RunTelemetry;

/// Options shared by all solvers.
///
/// Knobs combine through the chainable builder methods:
///
/// ```
/// use memsci_solvers::SolveOptions;
///
/// let opts = SolveOptions::default()
///     .tol(1e-10)
///     .max_iters(500)
///     .record_residuals(true);
/// assert_eq!(opts.max_iters, 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Relative residual tolerance: converged when
    /// `‖b − A·x‖ ≤ tol · ‖b‖` (the paper's stopping tolerance ε,
    /// §II-B).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Record the residual norm after every iteration.
    pub record_residuals: bool,
    /// Capture per-solve telemetry (hardware counters, span timings)
    /// into [`SolveReport::telemetry`]. Enables the global telemetry
    /// sink for the duration of the solve. Never changes numeric
    /// results.
    pub telemetry: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tol: 1e-8,
            max_iters: 10_000,
            record_residuals: false,
            telemetry: false,
        }
    }
}

impl SolveOptions {
    /// Options with the given tolerance.
    pub fn with_tol(tol: f64) -> Self {
        SolveOptions::default().tol(tol)
    }

    /// Options with per-solve telemetry capture on.
    pub fn with_telemetry() -> Self {
        SolveOptions::default().telemetry(true)
    }

    /// Sets the relative residual tolerance.
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the iteration cap.
    #[must_use]
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Records the residual norm after every iteration.
    #[must_use]
    pub fn record_residuals(mut self, record: bool) -> Self {
        self.record_residuals = record;
        self
    }

    /// Captures per-solve telemetry into the report.
    #[must_use]
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Outcome of a solve, including the platform cost attributed to it.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
    /// Final relative residual norm `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Residual norms per iteration (when requested).
    pub residual_history: Vec<f64>,
    /// Simulated seconds the solve consumed on the platform.
    pub time_seconds: f64,
    /// Simulated joules the solve consumed on the platform.
    pub energy_joules: f64,
    /// Per-solve telemetry (when [`SolveOptions::telemetry`] is set).
    pub telemetry: Option<RunTelemetry>,
}

impl SolveReport {
    pub(crate) fn new() -> Self {
        SolveReport {
            iterations: 0,
            converged: false,
            relative_residual: f64::INFINITY,
            residual_history: Vec::new(),
            time_seconds: 0.0,
            energy_joules: 0.0,
            telemetry: None,
        }
    }
}

/// Runs a solver body under its span, capturing per-solve telemetry
/// when requested. The span guard drops before the capture finishes so
/// the solve's own span lands in the report.
pub(crate) fn instrumented(
    name: &'static str,
    opts: &SolveOptions,
    body: impl FnOnce() -> SolveReport,
) -> SolveReport {
    let capture = memsci_telemetry::Capture::start(opts.telemetry);
    let mut report = {
        let _span = memsci_telemetry::span(name);
        body()
    };
    memsci_telemetry::incr(
        memsci_telemetry::Counter::SolveIterations,
        report.iterations as u64,
    );
    report.telemetry = capture.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SolveOptions::default();
        assert!(o.tol > 0.0 && o.max_iters > 0 && !o.record_residuals && !o.telemetry);
        assert_eq!(SolveOptions::with_tol(1e-6).tol, 1e-6);
        assert!(SolveOptions::with_telemetry().telemetry);
    }

    #[test]
    fn builder_chains() {
        let o = SolveOptions::with_tol(1e-12)
            .max_iters(77)
            .record_residuals(true)
            .telemetry(true);
        assert_eq!(o.tol, 1e-12);
        assert_eq!(o.max_iters, 77);
        assert!(o.record_residuals && o.telemetry);
        // Builder output equals the equivalent struct literal.
        assert_eq!(
            o,
            SolveOptions {
                tol: 1e-12,
                max_iters: 77,
                record_residuals: true,
                telemetry: true,
            }
        );
    }

    #[test]
    fn fresh_report_is_unconverged() {
        let r = SolveReport::new();
        assert!(!r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.relative_residual.is_infinite());
        assert!(r.telemetry.is_none());
    }

    #[test]
    fn instrumented_attaches_telemetry_only_when_requested() {
        let _x = memsci_telemetry::exclusive_for_tests();
        memsci_telemetry::reset();
        memsci_telemetry::disable();

        let plain = instrumented("solve/test", &SolveOptions::default(), || {
            let mut r = SolveReport::new();
            r.iterations = 3;
            r
        });
        assert!(plain.telemetry.is_none());

        let captured = instrumented("solve/test", &SolveOptions::with_telemetry(), || {
            let mut r = SolveReport::new();
            r.iterations = 3;
            r
        });
        let t = captured.telemetry.expect("telemetry requested");
        assert_eq!(
            t.counters.get(memsci_telemetry::Counter::SolveIterations),
            3
        );
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "solve/test");
        memsci_telemetry::disable();
        memsci_telemetry::reset();
    }
}
