//! Block conjugate gradient for several right-hand sides at once.
//!
//! Crossbar programming is the expensive part of deploying an operator
//! (§VIII-D); once `A` is written, MVMs against it are cheap. When a
//! workload carries several right-hand sides of the same system —
//! multiple load cases, columns of an inverse, shifted sources — the
//! batched MVM lane ([`Platform::spmv_batch`]) amortizes every per-
//! kernel overhead across the batch. This solver drives that lane: it
//! runs k *independent* CG recurrences in lockstep, issuing exactly one
//! batched product per iteration for all still-active columns.
//!
//! This is deliberately **not** the classical block CG of O'Leary
//! (which couples the columns through a shared Krylov block space and
//! per-iteration k×k solves): the columns here never exchange
//! information, so each column reproduces the plain [`cg`](crate::cg::cg)
//! iteration bit for bit on deterministic platforms, and a column that
//! converges is simply *deflated* — dropped from subsequent batches —
//! while the rest keep iterating. Convergence is tracked per column,
//! with the final verdict taken from a freshly computed true residual,
//! never from the recurrence scalar.

use crate::platform::{true_relative_residual, Platform};
use crate::report::{SolveOptions, SolveReport};

/// Per-column recurrence state.
struct Column {
    r: Vec<f64>,
    p: Vec<f64>,
    rs: f64,
    b_norm: f64,
    /// Still in the batch (neither converged nor broken down).
    active: bool,
    report: SolveReport,
}

/// Solves `A·xⱼ = bⱼ` for every column j by independent CG recurrences
/// sharing one batched MVM per iteration, updating each `xs[j]` in
/// place and returning one report per column.
///
/// Deflation: a column leaves the batch as soon as its recurrence
/// reaches the tolerance (or breaks down); remaining columns keep the
/// full batch lane to themselves. Like [`cg`](crate::cg::cg), the
/// recurrence residual is refreshed from a true product periodically,
/// and every column's final `relative_residual`/`converged` come from
/// one fresh true residual, so a drifted recurrence cannot fake
/// convergence.
///
/// Cost attribution: the platform charges the whole block solve as one
/// run; each report carries the amortized per-column share (total time
/// and energy divided by k). When [`SolveOptions::telemetry`] is set,
/// every report receives the same capture covering the whole block
/// solve.
///
/// # Examples
///
/// ```
/// use memsci_solvers::block_cg::block_cg;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(8, 8));
/// let b1 = vec![1.0; 64];
/// let b2: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
/// let mut xs = vec![vec![0.0; 64]; 2];
/// let reports = block_cg(&mut p, &[&b1, &b2], &mut xs, &SolveOptions::default());
/// assert!(reports.iter().all(|r| r.converged));
/// ```
///
/// # Panics
///
/// Panics if `bs.len() != xs.len()` or any column's length differs from
/// the platform dimension.
pub fn block_cg<P: Platform + ?Sized>(
    platform: &mut P,
    bs: &[&[f64]],
    xs: &mut [Vec<f64>],
    opts: &SolveOptions,
) -> Vec<SolveReport> {
    assert_eq!(bs.len(), xs.len(), "rhs/solution column count mismatch");
    let capture = memsci_telemetry::Capture::start(opts.telemetry);
    let mut reports = {
        let _span = memsci_telemetry::span("solve/block_cg");
        block_cg_inner(platform, bs, xs, opts)
    };
    let total_iters: usize = reports.iter().map(|r| r.iterations).sum();
    memsci_telemetry::incr(
        memsci_telemetry::Counter::SolveIterations,
        total_iters as u64,
    );
    if let Some(telemetry) = capture.finish() {
        for report in &mut reports {
            report.telemetry = Some(telemetry.clone());
        }
    }
    reports
}

fn block_cg_inner<P: Platform + ?Sized>(
    platform: &mut P,
    bs: &[&[f64]],
    xs: &mut [Vec<f64>],
    opts: &SolveOptions,
) -> Vec<SolveReport> {
    let n = platform.n();
    let k = bs.len();
    if k == 0 {
        return Vec::new();
    }
    for (b, x) in bs.iter().zip(xs.iter()) {
        assert_eq!(b.len(), n, "b length");
        assert_eq!(x.len(), n, "x length");
    }
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    // Initial residuals: one batched product A·x₀ for all columns.
    let mut qs: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    {
        let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        platform.spmv_batch(&x_refs, &mut qs);
    }
    let mut cols: Vec<Column> = Vec::with_capacity(k);
    for (j, (b, x)) in bs.iter().zip(xs.iter_mut()).enumerate() {
        let mut report = SolveReport::new();
        let b_norm = platform.norm(b);
        if b_norm == 0.0 {
            x.fill(0.0);
            report.converged = true;
            report.relative_residual = 0.0;
            cols.push(Column {
                r: Vec::new(),
                p: Vec::new(),
                rs: 0.0,
                b_norm,
                active: false,
                report,
            });
            continue;
        }
        let mut r = std::mem::take(&mut qs[j]);
        platform.axpby(1.0, b, -1.0, &mut r); // r = b − A·x₀
        let p = r.clone();
        let rs = platform.dot(&r, &r);
        cols.push(Column {
            r,
            p,
            rs,
            b_norm,
            active: true,
            report,
        });
    }

    // As in `cg`, refresh the recurrence from a true product
    // periodically so it cannot drift indefinitely.
    const REFRESH_INTERVAL: usize = 50;
    let mut active_idx: Vec<usize> = Vec::with_capacity(k);
    for iter in 0..opts.max_iters {
        active_idx.clear();
        active_idx.extend((0..k).filter(|&j| cols[j].active));
        if active_idx.is_empty() {
            break;
        }
        let _iter_span = memsci_telemetry::span("iter");
        if iter > 0 && iter % REFRESH_INTERVAL == 0 {
            // One batched A·x refreshes every active column's residual.
            active_idx.retain(|&j| {
                if xs[j].iter().any(|v| !v.is_finite()) {
                    cols[j].active = false; // the iterate is lost
                    false
                } else {
                    true
                }
            });
            if active_idx.is_empty() {
                break;
            }
            let x_refs: Vec<&[f64]> = active_idx.iter().map(|&j| xs[j].as_slice()).collect();
            qs.resize_with(active_idx.len(), Vec::new);
            platform.spmv_batch(&x_refs, &mut qs[..active_idx.len()]);
            for (slot, &j) in active_idx.iter().enumerate() {
                let col = &mut cols[j];
                col.r.copy_from_slice(&qs[slot]);
                let b = bs[j];
                platform.axpby(1.0, b, -1.0, &mut col.r);
                col.rs = platform.dot(&col.r, &col.r);
            }
        }
        // Convergence checks deflate columns before the batched product.
        active_idx.retain(|&j| {
            let col = &mut cols[j];
            let res = col.rs.sqrt() / col.b_norm;
            if opts.record_residuals {
                col.report.residual_history.push(res);
            }
            if res <= opts.tol {
                col.active = false;
                false
            } else {
                true
            }
        });
        if active_idx.is_empty() {
            break;
        }
        // One batched product serves every surviving column.
        let p_refs: Vec<&[f64]> = active_idx.iter().map(|&j| cols[j].p.as_slice()).collect();
        qs.resize_with(active_idx.len(), Vec::new);
        platform.spmv_batch(&p_refs, &mut qs[..active_idx.len()]);
        for (slot, &j) in active_idx.iter().enumerate() {
            let q = &qs[slot];
            let col = &mut cols[j];
            let pq = platform.dot(&col.p, q);
            if pq <= 0.0 || !pq.is_finite() || !col.rs.is_finite() {
                col.active = false; // breakdown: leave the batch
                continue;
            }
            let alpha = col.rs / pq;
            platform.axpy(alpha, &col.p, &mut xs[j]);
            platform.axpy(-alpha, q, &mut col.r);
            let rs_new = platform.dot(&col.r, &col.r);
            if !rs_new.is_finite() {
                col.active = false;
                continue;
            }
            let beta = rs_new / col.rs;
            platform.axpby(1.0, &col.r, beta, &mut col.p);
            col.rs = rs_new;
            col.report.iterations += 1;
        }
    }

    // Verdicts from fresh true residuals, never the recurrences.
    let mut scratch = vec![0.0; n];
    for (j, col) in cols.iter_mut().enumerate() {
        if col.b_norm == 0.0 {
            continue; // zero-rhs columns settled up front
        }
        col.report.relative_residual =
            true_relative_residual(platform, bs[j], &xs[j], col.b_norm, &mut scratch);
        col.report.converged = col.report.relative_residual <= opts.tol;
    }

    // Amortized per-column cost share of the one shared platform run.
    let time = (platform.elapsed_seconds() - t0) / k as f64;
    let energy = (platform.energy_joules() - e0) / k as f64;
    cols.into_iter()
        .map(|col| {
            let mut report = col.report;
            report.time_seconds = time;
            report.energy_joules = energy;
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::{poisson2d, poisson3d};

    fn rhs_family(n: usize, k: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| ((i * (j + 2)) as f64 * 0.17).sin() + j as f64 * 0.3)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_sequential_cg_bitwise_on_poisson() {
        for a in [poisson2d(10, 10), poisson3d(5, 5, 5)] {
            let n = a.rows();
            let bs = rhs_family(n, 3);
            let opts = SolveOptions::with_tol(1e-10);
            // Sequential reference: one plain CG per column.
            let mut seq_xs = Vec::new();
            let mut seq_reports = Vec::new();
            for b in &bs {
                let mut p = CsrPlatform::new(a.clone());
                let mut x = vec![0.0; n];
                seq_reports.push(cg(&mut p, b, &mut x, &opts));
                seq_xs.push(x);
            }
            // Block solve over the same columns.
            let mut p = CsrPlatform::new(a.clone());
            let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
            let mut xs = vec![vec![0.0; n]; 3];
            let reports = block_cg(&mut p, &b_refs, &mut xs, &opts);
            for (j, (x, want)) in xs.iter().zip(&seq_xs).enumerate() {
                assert!(reports[j].converged && seq_reports[j].converged);
                assert_eq!(reports[j].iterations, seq_reports[j].iterations, "col {j}");
                // Independent lockstep recurrences replay plain CG
                // exactly, so the solutions agree bit for bit.
                for (u, v) in x.iter().zip(want) {
                    assert_eq!(u.to_bits(), v.to_bits(), "col {j}");
                }
            }
        }
    }

    #[test]
    fn deflation_lets_hard_columns_finish() {
        let a = poisson2d(12, 12);
        let n = a.rows();
        // One trivially easy column (b = 0) alongside genuine work.
        let b0 = vec![0.0; n];
        let b1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut p = CsrPlatform::new(a);
        let mut xs = vec![vec![0.0; n]; 2];
        let reports = block_cg(&mut p, &[&b0, &b1], &mut xs, &SolveOptions::with_tol(1e-10));
        assert!(reports[0].converged);
        assert_eq!(reports[0].iterations, 0);
        assert!(xs[0].iter().all(|&v| v == 0.0));
        assert!(reports[1].converged);
        assert!(reports[1].iterations > 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut p = CsrPlatform::new(poisson2d(4, 4));
        let reports = block_cg(&mut p, &[], &mut [], &SolveOptions::default());
        assert!(reports.is_empty());
    }

    #[test]
    fn iteration_cap_applies_per_column() {
        let a = poisson2d(16, 16);
        let n = a.rows();
        let bs = rhs_family(n, 2);
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut p = CsrPlatform::new(a);
        let mut xs = vec![vec![0.0; n]; 2];
        let opts = SolveOptions::default().max_iters(3);
        let reports = block_cg(&mut p, &b_refs, &mut xs, &opts);
        for rep in &reports {
            assert_eq!(rep.iterations, 3);
            assert!(!rep.converged);
        }
    }

    #[test]
    fn cost_share_is_amortized() {
        let a = poisson2d(8, 8);
        let n = a.rows();
        let bs = rhs_family(n, 4);
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut p = CsrPlatform::new(a);
        let mut xs = vec![vec![0.0; n]; 4];
        let reports = block_cg(&mut p, &b_refs, &mut xs, &SolveOptions::default());
        let total: f64 = reports.iter().map(|r| r.time_seconds).sum();
        assert!((total - p.elapsed_seconds()).abs() <= 1e-12 * p.elapsed_seconds().max(1.0));
        let first = reports[0].time_seconds;
        assert!(reports.iter().all(|r| r.time_seconds == first));
    }
}
