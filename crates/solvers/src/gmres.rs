//! Restarted generalized minimal residual, GMRES(m) (Saad & Schultz;
//! listed in §II-B for non-SPD systems).

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by GMRES with restart length `m`, updating `x` in
/// place.
///
/// Each outer iteration builds an `m`-dimensional Krylov basis by
/// modified Gram–Schmidt Arnoldi and minimizes the residual over it via
/// Givens rotations. `report.iterations` counts *inner* iterations
/// (matrix–vector products after the initial residual).
///
/// # Examples
///
/// ```
/// use memsci_solvers::gmres::gmres;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut p = CsrPlatform::new(poisson2d(6, 6));
/// let b = vec![1.0; 36];
/// let mut x = vec![0.0; 36];
/// let report = gmres(&mut p, &b, &mut x, 20, &SolveOptions::default());
/// assert!(report.converged);
/// ```
///
/// # Panics
///
/// Panics if `m == 0` or the slice lengths differ from the platform
/// dimension.
pub fn gmres<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    m: usize,
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/gmres", opts, || gmres_inner(platform, b, x, m, opts))
}

fn gmres_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    m: usize,
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert!(m > 0, "restart length must be positive");
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    let mut res = f64::INFINITY;
    'outer: while report.iterations < opts.max_iters {
        // r = b − A·x
        let mut r = vec![0.0; n];
        platform.spmv(x, &mut r);
        platform.axpby(1.0, b, -1.0, &mut r);
        let beta = platform.norm(&r);
        res = beta / b_norm;
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }

        // Arnoldi with modified Gram-Schmidt.
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut v0 = r;
        platform.axpby(0.0, &vec![0.0; n], 1.0 / beta, &mut v0);
        basis.push(v0);
        // Hessenberg columns, Givens rotations, and the rotated rhs.
        let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut cs: Vec<f64> = Vec::with_capacity(m);
        let mut sn: Vec<f64> = Vec::with_capacity(m);
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut k_used = 0usize;

        for k in 0..m {
            if report.iterations >= opts.max_iters {
                break;
            }
            let _iter = memsci_telemetry::span("iter");
            let mut w = vec![0.0; n];
            platform.spmv(&basis[k], &mut w);
            report.iterations += 1;
            let mut h = vec![0.0; k + 2];
            for (j, vj) in basis.iter().enumerate() {
                h[j] = platform.dot(vj, &w);
                platform.axpy(-h[j], vj, &mut w);
            }
            let w_norm = platform.norm(&w);
            h[k + 1] = w_norm;
            // Apply the accumulated rotations to the new column.
            for j in 0..k {
                let t = cs[j] * h[j] + sn[j] * h[j + 1];
                h[j + 1] = -sn[j] * h[j] + cs[j] * h[j + 1];
                h[j] = t;
            }
            // New rotation to annihilate h[k+1].
            let denom = (h[k] * h[k] + h[k + 1] * h[k + 1]).sqrt();
            let (c, s) = if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (h[k] / denom, h[k + 1] / denom)
            };
            cs.push(c);
            sn.push(s);
            h[k] = c * h[k] + s * h[k + 1];
            h[k + 1] = 0.0;
            g[k + 1] = -s * g[k];
            g[k] *= c;
            h_cols.push(h);
            k_used = k + 1;
            res = g[k + 1].abs() / b_norm;
            if opts.record_residuals {
                report.residual_history.push(res);
            }
            let lucky_breakdown = w_norm == 0.0;
            if res <= opts.tol || lucky_breakdown {
                update_solution(platform, x, &basis, &h_cols, &g, k_used);
                if res <= opts.tol {
                    report.converged = true;
                }
                if report.converged {
                    break 'outer;
                }
                continue 'outer;
            }
            let mut v_next = w;
            platform.axpby(0.0, &vec![0.0; n], 1.0 / w_norm, &mut v_next);
            basis.push(v_next);
        }
        if k_used > 0 {
            update_solution(platform, x, &basis, &h_cols, &g, k_used);
        } else {
            break;
        }
    }

    report.relative_residual = res;
    report.converged |= res <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

/// Back-substitutes the triangularized least-squares system and applies
/// the correction `x += V·y`.
fn update_solution<P: Platform + ?Sized>(
    platform: &mut P,
    x: &mut [f64],
    basis: &[Vec<f64>],
    h_cols: &[Vec<f64>],
    g: &[f64],
    k: usize,
) {
    let mut y = vec![0.0; k];
    for i in (0..k).rev() {
        let mut v = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            v -= h_cols[j][i] * yj;
        }
        y[i] = v / h_cols[i][i];
    }
    for (j, yj) in y.iter().enumerate() {
        platform.axpy(*yj, &basis[j], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::{banded, make_diagonally_dominant, poisson2d, ValueModel};
    use memsci_sparse::Coo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_small_triangular_system() {
        let a = Coo::from_triplets(3, 3, [(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0), (2, 2, 4.0)])
            .unwrap()
            .to_csr();
        let want = [1.0, 2.0, -1.0];
        let mut b = vec![0.0; 3];
        a.spmv(&want, &mut b);
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; 3];
        let rep = gmres(&mut p, &b, &mut x, 3, &SolveOptions::with_tol(1e-12));
        assert!(rep.converged);
        for (xi, wi) in x.iter().zip(want) {
            assert!((xi - wi).abs() < 1e-8);
        }
    }

    #[test]
    fn full_gmres_converges_in_at_most_n_products() {
        let a = poisson2d(5, 5);
        let mut p = CsrPlatform::new(a);
        let b: Vec<f64> = (0..25).map(|i| (i as f64 + 1.0) * 0.2).collect();
        let mut x = vec![0.0; 25];
        let rep = gmres(&mut p, &b, &mut x, 25, &SolveOptions::with_tol(1e-10));
        assert!(rep.converged);
        assert!(rep.iterations <= 25);
    }

    #[test]
    fn restarted_gmres_matches_known_solution() {
        let mut rng = StdRng::seed_from_u64(17);
        let base = banded(150, 5, 0.6, ValueModel::with_spread(4), &mut rng);
        let a = make_diagonally_dominant(&base, 1.5);
        let n = a.rows();
        let want: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.4 - 2.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&want, &mut b);
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; n];
        let rep = gmres(&mut p, &b, &mut x, 15, &SolveOptions::with_tol(1e-10));
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rhs() {
        let mut p = CsrPlatform::new(poisson2d(3, 3));
        let mut x = vec![2.0; 9];
        let rep = gmres(&mut p, &[0.0; 9], &mut x, 5, &SolveOptions::default());
        assert!(rep.converged && x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap() {
        let mut p = CsrPlatform::new(poisson2d(16, 16));
        let b = vec![1.0; 256];
        let mut x = vec![0.0; 256];
        let opts = SolveOptions::default().max_iters(7);
        let rep = gmres(&mut p, &b, &mut x, 5, &opts);
        assert!(rep.iterations <= 7);
    }
}
