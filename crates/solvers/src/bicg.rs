//! Bi-conjugate gradient (the classical non-symmetric Lanczos solver,
//! listed alongside BiCG-STAB in §II-B).
//!
//! Requires products with both `A` and `Aᵀ`.

use crate::platform::Platform;
use crate::report::{SolveOptions, SolveReport};

/// Solves `A·x = b` by BiCG, updating `x` in place.
///
/// # Examples
///
/// ```
/// use memsci_solvers::bicg::bicg;
/// use memsci_solvers::platform::CsrPlatform;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::Coo;
///
/// let a = Coo::from_triplets(2, 2, [(0, 0, 5.0), (1, 0, 1.0), (1, 1, 4.0)])
///     .unwrap()
///     .to_csr();
/// let mut p = CsrPlatform::new(a);
/// let mut x = vec![0.0; 2];
/// let report = bicg(&mut p, &[5.0, 9.0], &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// assert!((x[0] - 1.0).abs() < 1e-8 && (x[1] - 2.0).abs() < 1e-8);
/// ```
///
/// # Panics
///
/// Panics if `b.len()` or `x.len()` differ from the platform dimension.
pub fn bicg<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    crate::report::instrumented("solve/bicg", opts, || bicg_inner(platform, b, x, opts))
}

fn bicg_inner<P: Platform + ?Sized>(
    platform: &mut P,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
) -> SolveReport {
    let n = platform.n();
    assert_eq!(b.len(), n, "b length");
    assert_eq!(x.len(), n, "x length");
    let mut report = SolveReport::new();
    let t0 = platform.elapsed_seconds();
    let e0 = platform.energy_joules();

    let b_norm = platform.norm(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        report.converged = true;
        report.relative_residual = 0.0;
        return report;
    }

    let mut r = vec![0.0; n];
    platform.spmv(x, &mut r);
    platform.axpby(1.0, b, -1.0, &mut r);
    let mut r_star = r.clone();
    let mut p = r.clone();
    let mut p_star = r.clone();
    let mut q = vec![0.0; n];
    let mut q_star = vec![0.0; n];
    let mut rho = platform.dot(&r_star, &r);
    let mut res = platform.norm(&r) / b_norm;

    for _ in 0..opts.max_iters {
        let _iter = memsci_telemetry::span("iter");
        if opts.record_residuals {
            report.residual_history.push(res);
        }
        if res <= opts.tol {
            report.converged = true;
            break;
        }
        if rho == 0.0 || !rho.is_finite() {
            break; // Lanczos breakdown
        }
        platform.spmv(&p, &mut q);
        platform.spmv_transpose(&p_star, &mut q_star);
        let denom = platform.dot(&p_star, &q);
        if denom == 0.0 || !denom.is_finite() {
            break;
        }
        let alpha = rho / denom;
        platform.axpy(alpha, &p, x);
        platform.axpy(-alpha, &q, &mut r);
        platform.axpy(-alpha, &q_star, &mut r_star);
        let rho_new = platform.dot(&r_star, &r);
        let beta = rho_new / rho;
        platform.axpby(1.0, &r, beta, &mut p);
        platform.axpby(1.0, &r_star, beta, &mut p_star);
        rho = rho_new;
        res = platform.norm(&r) / b_norm;
        report.iterations += 1;
    }

    report.relative_residual = res;
    report.converged |= res <= opts.tol;
    report.time_seconds = platform.elapsed_seconds() - t0;
    report.energy_joules = platform.energy_joules() - e0;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::CsrPlatform;
    use memsci_sparse::generate::{banded, make_diagonally_dominant, poisson2d, ValueModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_known_solution_on_nonsymmetric_system() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = banded(120, 4, 0.6, ValueModel::with_spread(6), &mut rng);
        let a = make_diagonally_dominant(&base, 1.4);
        let n = a.rows();
        let want: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&want, &mut b);
        let mut p = CsrPlatform::new(a);
        let mut x = vec![0.0; n];
        let rep = bicg(&mut p, &b, &mut x, &SolveOptions::with_tol(1e-10));
        assert!(
            rep.converged,
            "iters {} res {}",
            rep.iterations, rep.relative_residual
        );
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-6);
        }
    }

    #[test]
    fn on_spd_systems_bicg_reduces_to_cg_iterations() {
        let a = poisson2d(8, 8);
        let b = vec![1.0; 64];
        let mut p1 = CsrPlatform::new(a.clone());
        let mut x1 = vec![0.0; 64];
        let rep_bicg = bicg(&mut p1, &b, &mut x1, &SolveOptions::with_tol(1e-10));
        let mut p2 = CsrPlatform::new(a);
        let mut x2 = vec![0.0; 64];
        let rep_cg = crate::cg::cg(&mut p2, &b, &mut x2, &SolveOptions::with_tol(1e-10));
        assert!(rep_bicg.converged && rep_cg.converged);
        // For SPD matrices BiCG produces the CG iterates.
        assert_eq!(rep_bicg.iterations, rep_cg.iterations);
    }

    #[test]
    fn zero_rhs() {
        let mut p = CsrPlatform::new(poisson2d(3, 3));
        let mut x = vec![1.0; 9];
        let rep = bicg(&mut p, &[0.0; 9], &mut x, &SolveOptions::default());
        assert!(rep.converged && x.iter().all(|&v| v == 0.0));
    }
}
