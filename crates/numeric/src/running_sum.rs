//! Early termination of fixed-point dot-product accumulation.
//!
//! A memristive cluster aggregates partial dot products from the most
//! significant vector bit slice toward the least significant. Once the
//! 53-bit mantissa of the final result can no longer change, the
//! remaining slices are skipped (paper §IV-B, Figures 4–5). Two
//! implementations are provided:
//!
//! * [`settled`] — an exact interval oracle: the mantissa is settled iff
//!   every value within the bound of the remaining contributions rounds
//!   to the same mantissa. It is correct for signed partial products and
//!   every rounding mode, and is what the simulation engines use.
//! * [`regions_nonneg`]/[`settled_nonneg`] — the paper's region
//!   decomposition (stable / barrier / carry / aligned) for non-negative
//!   accumulation, provided both as documentation of the hardware
//!   mechanism and as a cross-check; it is conservative with respect to
//!   the oracle (proved by property tests).

use crate::rounding::Rounding;
use crate::wideint::{Rounded, WideInt};

/// Upper bound (as a bit position) on the magnitude of the remaining
/// contributions: after the slice with weight `2^next_weight_bit` and all
/// less significant slices, whose partial products have magnitudes below
/// `2^partial_magnitude_bits`, the remaining sum satisfies
/// `|R| < 2^(next_weight_bit + partial_magnitude_bits + 1)`.
pub fn remaining_bound_bit(next_weight_bit: u32, partial_magnitude_bits: u32) -> u32 {
    next_weight_bit + partial_magnitude_bits + 1
}

/// Exact settlement oracle: returns `true` when every value in
/// `(sum - 2^bound_bit, sum + 2^bound_bit)` rounds to the same
/// `precision`-bit mantissa under `mode`.
///
/// Rounding is monotonic, so checking the two endpoints suffices.
///
/// # Examples
///
/// ```
/// use memsci_numeric::running_sum::settled;
/// use memsci_numeric::{Rounding, WideInt};
///
/// // Sum 0b110100...0 with remaining |R| < 2^3 cannot disturb a 3-bit
/// // mantissa: the low zeros absorb any carry or borrow.
/// let sum = WideInt::from(0b1101_0000u64);
/// assert!(settled(&sum, 3, 3, Rounding::TowardNegInf));
/// // With |R| < 2^5 the mantissa bit at 2^4 is still in play.
/// assert!(!settled(&sum, 5, 3, Rounding::TowardNegInf));
/// ```
pub fn settled(sum: &WideInt, bound_bit: u32, precision: u32, mode: Rounding) -> bool {
    // Cheap necessary condition: the interval [sum − 2^b, sum + 2^b]
    // spans 2^(b+1); it can only fall inside one rounding cell (width
    // 2^(lead − precision + 1)) when the leading one sits at least
    // b + precision bits up. Checking the bit length first avoids the
    // wide-integer arithmetic on the (common) unsettled slices.
    if sum.bit_len() + 1 < (bound_bit + precision) as usize {
        return false;
    }
    let bound = WideInt::pow2(bound_bit as usize);
    let lo = sum - &bound;
    let hi = sum + &bound;
    lo.round_to_precision(precision, mode) == hi.round_to_precision(precision, mode)
}

/// One-sided settlement oracle for non-negative accumulation, where the
/// remaining contributions lie in `[0, 2^bound_bit)`: the mantissa is
/// settled iff `sum` and `sum + 2^bound_bit` round identically.
///
/// This is the exact counterpart of the paper's region argument, which
/// only has to absorb a *carry* (never a borrow).
pub fn settled_nonneg_remaining(
    sum: &WideInt,
    bound_bit: u32,
    precision: u32,
    mode: Rounding,
) -> bool {
    let hi = sum + &WideInt::pow2(bound_bit as usize);
    sum.round_to_precision(precision, mode) == hi.round_to_precision(precision, mode)
}

/// The four regions of a non-negative running sum (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regions {
    /// Exclusive top of the aligned region: bits `[0, aligned_top)`
    /// overlap the remaining partial products (plus the one guaranteed
    /// carry position).
    pub aligned_top: usize,
    /// Length of the carry region: the chain of consecutive ones starting
    /// at `aligned_top` that would propagate an incoming carry.
    pub carry_len: usize,
    /// Position of the barrier bit — the zero that absorbs the single
    /// potential carry, protecting all more significant bits.
    pub barrier: usize,
}

impl Regions {
    /// First bit position of the stable region.
    pub fn stable_from(&self) -> usize {
        self.barrier + 1
    }
}

/// Decomposes a non-negative running sum into the regions of Figure 5,
/// given that the next partial product has weight `2^next_weight_bit` and
/// every partial product is below `2^partial_magnitude_bits`.
///
/// The remaining contributions satisfy
/// `R < 2^(next_weight_bit + partial_magnitude_bits + 1)`, so adding them
/// changes bits at or above that position by at most a single carry.
///
/// # Panics
///
/// Panics if `sum` is negative; the region argument only applies to
/// non-negative accumulation (use [`settled`] for the signed case).
pub fn regions_nonneg(sum: &WideInt, next_weight_bit: u32, partial_magnitude_bits: u32) -> Regions {
    assert!(
        !sum.is_negative(),
        "region analysis requires a non-negative running sum"
    );
    let aligned_top = remaining_bound_bit(next_weight_bit, partial_magnitude_bits) as usize;
    let mut carry_len = 0usize;
    while sum.bit(aligned_top + carry_len) {
        carry_len += 1;
    }
    Regions {
        aligned_top,
        carry_len,
        barrier: aligned_top + carry_len,
    }
}

/// Paper-faithful settlement test for non-negative accumulation: the
/// running sum is settled once the full `precision`-bit mantissa lies in
/// the stable region above the barrier bit.
pub fn settled_nonneg(
    sum: &WideInt,
    next_weight_bit: u32,
    partial_magnitude_bits: u32,
    precision: u32,
) -> bool {
    let regions = regions_nonneg(sum, next_weight_bit, partial_magnitude_bits);
    match sum.leading_one() {
        None => false,
        Some(lead) => lead >= regions.barrier + precision as usize,
    }
}

/// Accumulates signed partial dot products from most to least significant
/// slice, tracking settlement so the caller can terminate early.
///
/// # Examples
///
/// ```
/// use memsci_numeric::running_sum::RunningSum;
/// use memsci_numeric::{Rounding, WideInt};
///
/// let mut rs = RunningSum::new(4, Rounding::TowardNegInf);
/// rs.add(&WideInt::from(0b110100u64), 6);
/// // Partial products are 6 bits wide; the next slice has weight 2^5.
/// let done = rs.is_settled(5, 6);
/// assert!(!done); // low bits can still carry into a 4-bit mantissa
/// # let _ = rs.sum();
/// ```
#[derive(Debug, Clone)]
pub struct RunningSum {
    sum: WideInt,
    precision: u32,
    mode: Rounding,
}

impl RunningSum {
    /// Creates an empty running sum targeting a `precision`-bit mantissa.
    pub fn new(precision: u32, mode: Rounding) -> Self {
        RunningSum {
            sum: WideInt::zero(),
            precision,
            mode,
        }
    }

    /// Creates a running sum seeded with a known exact correction term
    /// (for example a precomputed bias constant).
    pub fn with_initial(init: WideInt, precision: u32, mode: Rounding) -> Self {
        RunningSum {
            sum: init,
            precision,
            mode,
        }
    }

    /// Adds `partial × 2^weight_bit` to the running sum.
    pub fn add(&mut self, partial: &WideInt, weight_bit: u32) {
        self.sum += &partial.shl(weight_bit);
    }

    /// Subtracts `partial × 2^weight_bit` (used for the negative-weight
    /// two's-complement vector MSB slice).
    pub fn sub(&mut self, partial: &WideInt, weight_bit: u32) {
        self.sum -= &partial.shl(weight_bit);
    }

    /// Returns `true` once the mantissa can no longer change, given that
    /// the next unprocessed slice has weight `2^next_weight_bit` and the
    /// partial products stay below `2^partial_magnitude_bits` in
    /// magnitude.
    pub fn is_settled(&self, next_weight_bit: u32, partial_magnitude_bits: u32) -> bool {
        settled(
            &self.sum,
            remaining_bound_bit(next_weight_bit, partial_magnitude_bits),
            self.precision,
            self.mode,
        )
    }

    /// The exact accumulated value.
    pub fn sum(&self) -> &WideInt {
        &self.sum
    }

    /// Rounds the accumulated value to the target mantissa.
    pub fn round(&self) -> Rounded {
        self.sum.round_to_precision(self.precision, self.mode)
    }

    /// The mantissa precision this sum targets.
    pub fn precision(&self) -> u32 {
        self.precision
    }

    /// The rounding mode in effect.
    pub fn mode(&self) -> Rounding {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accumulation in the style of Figure 4: six-bit partial products
    /// added from most to least significant slice, four-bit mantissa,
    /// terminating as soon as the mantissa settles.
    #[test]
    fn figure4_style_accumulation_terminates_early() {
        // Thirteen slices with weights 12..=0. The leading slices place a
        // mantissa of 1100 with a settled gap below it; the tail slices
        // only touch bits the early-terminated mantissa never sees.
        let mut partials: Vec<(u64, u32)> = vec![(0b100110, 12), (0b010011, 11), (0b000101, 10)];
        for w in (5..=9).rev() {
            partials.push((0, w));
        }
        for w in (0..=4).rev() {
            partials.push((0b000001, w));
        }
        let mut rs = RunningSum::new(4, Rounding::TowardNegInf);
        let mut settled_at = None;
        for (idx, &(p, w)) in partials.iter().enumerate() {
            rs.add(&WideInt::from(p), w);
            if idx + 1 < partials.len() {
                let next_w = partials[idx + 1].1;
                if rs.is_settled(next_w, 6) {
                    settled_at = Some(idx);
                    break;
                }
            }
        }
        // The sum settles well before all partials are consumed.
        let at = settled_at.expect("accumulation settles early");
        assert!(at < partials.len() - 2);
        // And the early mantissa equals the full-precision mantissa.
        let early = rs.round();
        let mut full = RunningSum::new(4, Rounding::TowardNegInf);
        for &(p, w) in &partials {
            full.add(&WideInt::from(p), w);
        }
        assert_eq!(early, full.round());
    }

    #[test]
    fn regions_match_figure5_shape() {
        // sum = ...0 1 1110 XXXX0 with aligned region of 5 bits.
        // Choose: bits 0..5 arbitrary, bits 5..9 = 1s, bit 9 = 0, bit 10.. stable.
        let sum = WideInt::from(0b101_1110_0110_u64 | (0b1 << 11));
        // next_weight_bit + partial_magnitude_bits + 1 = 5 -> pick 2 and 2.
        let r = regions_nonneg(&sum, 2, 2);
        assert_eq!(r.aligned_top, 5);
        // Bits 5,6,7,8 are ones; bit 9 is zero.
        assert_eq!(r.carry_len, 4);
        assert_eq!(r.barrier, 9);
        assert_eq!(r.stable_from(), 10);
    }

    #[test]
    fn settled_nonneg_requires_mantissa_above_barrier() {
        // Leading one at bit 40, zeros below: barrier from small aligned
        // region, 4-bit mantissa occupies bits 37..=40.
        let sum = WideInt::pow2(40);
        assert!(settled_nonneg(&sum, 2, 2, 4));
        // Mantissa overlapping the carry region is not settled:
        // ones right below the aligned top keep the carry alive.
        let sum = WideInt::pow2(8) - WideInt::one(); // 0b1111_1111
        assert!(!settled_nonneg(&sum, 2, 2, 4));
    }

    #[test]
    fn region_method_is_conservative_vs_oracle() {
        // Whenever the region method says settled, the exact one-sided
        // oracle (remaining contributions are non-negative) agrees.
        for raw in 0u64..4096 {
            let sum = WideInt::from(raw << 3 | 1 << 20);
            for (next_w, pm) in [(0u32, 3u32), (1, 4), (2, 2)] {
                if settled_nonneg(&sum, next_w, pm, 4) {
                    assert!(
                        settled_nonneg_remaining(
                            &sum,
                            remaining_bound_bit(next_w, pm),
                            4,
                            Rounding::TowardNegInf
                        ),
                        "region said settled but oracle disagrees for {raw:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_detects_sign_boundary() {
        // A sum near zero with large remaining bound is never settled.
        let sum = WideInt::from(3u64);
        assert!(!settled(&sum, 4, 3, Rounding::TowardNegInf));
        // A settled sum needs a 0 below the mantissa to absorb a carry
        // AND a 1 to absorb a borrow: 0b110_01 << 26 has both.
        let sum = WideInt::from(0b11001u64 << 26);
        assert!(settled(&sum, 4, 3, Rounding::TowardNegInf));
        // Negative sums settle symmetrically.
        let sum = -(WideInt::from(0b11001u64 << 26));
        assert!(settled(&sum, 4, 3, Rounding::TowardNegInf));
        // A sum that is an exact power of two is NOT settled under a
        // symmetric bound: a borrow would drop the mantissa below it.
        let sum = WideInt::from(3u64 << 30);
        assert!(!settled(&sum, 4, 3, Rounding::TowardNegInf));
        // ...but it IS settled when the remaining sum is non-negative.
        assert!(settled_nonneg_remaining(&sum, 4, 3, Rounding::TowardNegInf));
    }

    #[test]
    fn seeded_sum_carries_correction() {
        let init = WideInt::from(-1000i64);
        let mut rs = RunningSum::with_initial(init, 8, Rounding::TowardNegInf);
        rs.add(&WideInt::from(1000u64), 0);
        assert!(rs.sum().is_zero());
        assert_eq!(rs.precision(), 8);
        assert_eq!(rs.mode(), Rounding::TowardNegInf);
    }

    #[test]
    fn sub_applies_negative_weight() {
        let mut rs = RunningSum::new(8, Rounding::TowardNegInf);
        rs.add(&WideInt::from(5u64), 2); // +20
        rs.sub(&WideInt::from(3u64), 1); // -6
        assert_eq!(rs.sum(), &WideInt::from(14u64));
    }
}
