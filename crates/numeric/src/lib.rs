//! Exact fixed-point numerics for floating point on memristive crossbars.
//!
//! This crate implements the numeric machinery from *Enabling Scientific
//! Computing on Memristive Accelerators* (Feinberg et al., ISCA 2018)
//! that turns IEEE-754 double-precision arithmetic into the fixed-point
//! operations a crossbar can perform:
//!
//! * [`WideInt`] — exact sign–magnitude integers up to the 127-bit
//!   operand widths the hardware manipulates;
//! * [`FloatParts`] — exact decomposition of doubles;
//! * [`align`] — mantissa alignment against a per-block exponent base,
//!   exploiting exponent range locality (§IV-A);
//! * [`bias`] — the per-block biasing scheme for negative numbers
//!   (§IV-C);
//! * [`bitslice`] — bit-slice extraction for crossbar mapping (§II-A);
//! * [`running_sum`] — early termination of partial-product accumulation
//!   (§IV-B, Figures 4–5);
//! * [`ancode`] — the A=251 AN error-correcting code (§IV-E).
//!
//! # Examples
//!
//! Align a block, bias it, slice it, and verify exact reconstruction:
//!
//! ```
//! use memsci_numeric::align::AlignedSlice;
//! use memsci_numeric::bias::BiasedSlice;
//! use memsci_numeric::bitslice::SliceSet;
//!
//! let block = [1.5, -0.25, 3.0];
//! let aligned = AlignedSlice::align(&block, 117)?;
//! let biased = BiasedSlice::from_aligned(&aligned);
//! let slices = SliceSet::from_unsigned(biased.values(), biased.operand_bits());
//! for i in 0..block.len() {
//!     assert_eq!(biased.unbiased(i), aligned.integers()[i]);
//!     assert_eq!(slices.reconstruct(i), biased.values()[i]);
//! }
//! # Ok::<(), memsci_numeric::align::AlignError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod ancode;
pub mod bias;
pub mod bitslice;
pub mod float;
pub mod rounding;
pub mod running_sum;
pub mod wideint;

pub use align::{AlignError, AlignedSlice, Alignment};
pub use ancode::AnCode;
pub use bias::BiasedSlice;
pub use bitslice::SliceSet;
pub use float::{FloatParts, NonFiniteError};
pub use rounding::Rounding;
pub use running_sum::RunningSum;
pub use wideint::{Rounded, WideInt};
