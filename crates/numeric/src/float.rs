//! Exact decomposition of IEEE-754 doubles into sign/mantissa/exponent.
//!
//! Every finite `f64` equals `±mantissa × 2^exponent` with an integer
//! mantissa below `2^53`; this module performs that decomposition and its
//! exact inverse, and classifies the non-finite values the accelerator
//! must reject at its input boundary (paper §IV-D).

use core::fmt;

use crate::wideint::WideInt;
use crate::Rounding;

/// Error returned when a NaN or infinity reaches an interface that
/// requires finite values.
///
/// The accelerator cannot map non-finite values onto crossbar
/// conductances; input matrices and vectors must be finite and any
/// non-finite intermediate is confined to the local processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteError {
    /// The offending bit pattern, kept for diagnostics.
    bits: u64,
}

impl NonFiniteError {
    /// The rejected value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }
}

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite value {} cannot be mapped to the crossbar substrate",
            self.value()
        )
    }
}

impl std::error::Error for NonFiniteError {}

/// A finite double decomposed as `±mantissa × 2^exponent` (exactly).
///
/// For normal numbers the mantissa includes the implied leading one and
/// spans exactly 53 bits; subnormals have shorter mantissas. Zero is
/// represented with `mantissa == 0`.
///
/// # Examples
///
/// ```
/// use memsci_numeric::FloatParts;
///
/// let p = FloatParts::decompose(1.5).unwrap();
/// assert_eq!(p.value(), 1.5);
/// assert_eq!(p.mantissa, 3 << 51);
/// assert_eq!(p.exponent, -52);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatParts {
    /// Sign bit (`true` for negative, including `-0.0`).
    pub sign: bool,
    /// Integer mantissa, `< 2^53`.
    pub mantissa: u64,
    /// Power-of-two exponent of the mantissa's least significant bit.
    pub exponent: i32,
}

impl FloatParts {
    /// Decomposes a finite double exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteError`] for NaNs and infinities, which the
    /// accelerator rejects at its input boundary.
    pub fn decompose(x: f64) -> Result<Self, NonFiniteError> {
        if !x.is_finite() {
            return Err(NonFiniteError { bits: x.to_bits() });
        }
        let bits = x.to_bits();
        let sign = bits >> 63 == 1;
        let raw_exp = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, exponent) = if raw_exp == 0 {
            (frac, -1074)
        } else {
            (frac | (1u64 << 52), raw_exp - 1075)
        };
        Ok(FloatParts {
            sign,
            mantissa,
            exponent,
        })
    }

    /// Reconstructs the double exactly.
    pub fn value(&self) -> f64 {
        let v = WideInt::from(self.mantissa);
        let v = if self.sign { -v } else { v };
        let out = v.to_f64_with_exp(self.exponent, Rounding::NearestEven);
        if self.sign && out == 0.0 {
            -0.0
        } else {
            out
        }
    }

    /// Returns `true` if the value is zero (of either sign).
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0
    }

    /// Exponent of the most significant mantissa bit (`floor(log2 |x|)`),
    /// or `None` for zero.
    pub fn top_exponent(&self) -> Option<i32> {
        if self.mantissa == 0 {
            None
        } else {
            Some(self.exponent + 63 - self.mantissa.leading_zeros() as i32)
        }
    }

    /// The signed mantissa as a [`WideInt`].
    pub fn signed_mantissa(&self) -> WideInt {
        let v = WideInt::from(self.mantissa);
        if self.sign {
            -v
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_rejects_non_finite() {
        assert!(FloatParts::decompose(f64::NAN).is_err());
        assert!(FloatParts::decompose(f64::INFINITY).is_err());
        assert!(FloatParts::decompose(f64::NEG_INFINITY).is_err());
        let err = FloatParts::decompose(f64::INFINITY).unwrap_err();
        assert!(err.value().is_infinite());
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn roundtrip_is_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -3.5,
            f64::MAX,
            f64::MIN_POSITIVE,
            5e-324,                     // smallest subnormal
            2.225_073_858_507_201e-308, // largest subnormal
            1.7976931348623157e308,
            -9.869604401089358,
        ] {
            let p = FloatParts::decompose(x).unwrap();
            assert_eq!(p.value().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn normal_mantissa_has_53_bits() {
        let p = FloatParts::decompose(1.0).unwrap();
        assert_eq!(p.mantissa, 1u64 << 52);
        assert_eq!(p.exponent, -52);
        assert_eq!(p.top_exponent(), Some(0));
        let p = FloatParts::decompose(2.0_f64.powi(100)).unwrap();
        assert_eq!(p.top_exponent(), Some(100));
    }

    #[test]
    fn subnormal_mantissa_is_short() {
        let p = FloatParts::decompose(5e-324).unwrap();
        assert_eq!(p.mantissa, 1);
        assert_eq!(p.exponent, -1074);
        assert_eq!(p.top_exponent(), Some(-1074));
    }

    #[test]
    fn zero_has_no_top_exponent() {
        let p = FloatParts::decompose(0.0).unwrap();
        assert!(p.is_zero());
        assert_eq!(p.top_exponent(), None);
        let p = FloatParts::decompose(-0.0).unwrap();
        assert!(p.sign);
        assert_eq!(p.value().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn signed_mantissa_sign() {
        let p = FloatParts::decompose(-2.0).unwrap();
        assert!(p.signed_mantissa().is_negative());
    }
}
