//! Arbitrary-width signed integers in sign–magnitude form.
//!
//! The accelerator manipulates fixed-point operands of up to 127 bits
//! (a 53-bit mantissa, up to 64 pad bits, one sign/bias bit, and the
//! ×251 AN-code expansion) and running sums a few bits wider still.
//! [`WideInt`] provides exact arithmetic at those widths: magnitudes are
//! stored as little-endian `u64` limbs and every operation is exact.
//!
//! # Examples
//!
//! ```
//! use memsci_numeric::WideInt;
//!
//! let a = WideInt::pow2(100) - WideInt::from(1u64);
//! let b = &a + &WideInt::from(1u64);
//! assert_eq!(b, WideInt::pow2(100));
//! assert_eq!(b.bit_len(), 101);
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Shl, Shr, Sub, SubAssign};

use crate::rounding::Rounding;

/// An arbitrary-width signed integer in sign–magnitude representation.
///
/// All arithmetic is exact; widths grow as needed. The magnitude is kept
/// normalized (no high zero limbs) and zero is always non-negative, so
/// `Eq`/`Hash`/`Ord` behave structurally and numerically at the same time.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct WideInt {
    /// Sign flag; always `false` when the magnitude is zero.
    neg: bool,
    /// Little-endian magnitude limbs with no trailing (high) zeros.
    mag: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Magnitude (unsigned limb vector) helpers.
// ---------------------------------------------------------------------------

fn mag_norm(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {
            for i in (0..a.len()).rev() {
                match a[i].cmp(&b[i]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
        other => other,
    }
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = l.overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        carry = u64::from(c1) + u64::from(c2);
        out.push(x);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Computes `a - b`; requires `a >= b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &ai) in a.iter().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = ai.overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        borrow = u64::from(b1) + u64::from(b2);
        out.push(x);
    }
    debug_assert_eq!(borrow, 0);
    mag_norm(&mut out);
    out
}

fn mag_shl(a: &[u64], k: u32) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limbs = (k / 64) as usize;
    let bits = k % 64;
    let mut out = vec![0u64; limbs];
    if bits == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &w in a {
            out.push((w << bits) | carry);
            carry = w >> (64 - bits);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    mag_norm(&mut out);
    out
}

fn mag_shr(a: &[u64], k: u32) -> Vec<u64> {
    let limbs = (k / 64) as usize;
    if limbs >= a.len() {
        return Vec::new();
    }
    let bits = k % 64;
    let mut out = Vec::with_capacity(a.len() - limbs);
    if bits == 0 {
        out.extend_from_slice(&a[limbs..]);
    } else {
        for i in limbs..a.len() {
            let hi = a.get(i + 1).copied().unwrap_or(0);
            out.push((a[i] >> bits) | (hi << (64 - bits)));
        }
    }
    mag_norm(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    mag_norm(&mut out);
    out
}

fn mag_mul_u64(a: &[u64], m: u64) -> Vec<u64> {
    if a.is_empty() || m == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u128;
    for &w in a {
        let t = u128::from(w) * u128::from(m) + carry;
        out.push(t as u64);
        carry = t >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// Remainder of a magnitude modulo `d` without materializing the
/// quotient (the allocation-free core of [`WideInt::rem_euclid_u64`]).
fn mag_rem_u64(a: &[u64], d: u64) -> u64 {
    assert!(d != 0, "division by zero");
    let mut rem = 0u128;
    for &w in a.iter().rev() {
        rem = ((rem << 64) | u128::from(w)) % u128::from(d);
    }
    rem as u64
}

/// Limb `i` of `mag << (limbs·64 + bits)` computed on the fly, so shifted
/// operands never need a temporary buffer. `bits` must be `< 64` and
/// `mag` normalized.
fn shifted_limb(mag: &[u64], limbs: usize, bits: u32, i: usize) -> u64 {
    if i < limbs {
        return 0;
    }
    let j = i - limbs;
    let hi = mag.get(j).copied().unwrap_or(0);
    if bits == 0 {
        hi
    } else {
        let lo = if j == 0 {
            0
        } else {
            mag.get(j - 1).copied().unwrap_or(0) >> (64 - bits)
        };
        (hi << bits) | lo
    }
}

fn mag_divrem_u64(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    assert!(d != 0, "division by zero");
    let mut out = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | u128::from(a[i]);
        out[i] = (cur / u128::from(d)) as u64;
        rem = cur % u128::from(d);
    }
    mag_norm(&mut out);
    (out, rem as u64)
}

fn mag_bit_len(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&w) => 64 * (a.len() - 1) + (64 - w.leading_zeros() as usize),
    }
}

fn mag_bit(a: &[u64], i: usize) -> bool {
    a.get(i / 64).is_some_and(|w| (w >> (i % 64)) & 1 == 1)
}

fn mag_low_bits_nonzero(a: &[u64], k: usize) -> bool {
    let limbs = k / 64;
    let bits = k % 64;
    for (i, &w) in a.iter().enumerate().take(limbs) {
        let _ = i;
        if w != 0 {
            return true;
        }
    }
    if bits != 0 {
        if let Some(&w) = a.get(limbs) {
            if w & ((1u64 << bits) - 1) != 0 {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Construction and inspection.
// ---------------------------------------------------------------------------

impl WideInt {
    /// Returns zero.
    ///
    /// ```
    /// # use memsci_numeric::WideInt;
    /// assert!(WideInt::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        WideInt {
            neg: false,
            mag: Vec::new(),
        }
    }

    /// Returns one.
    pub fn one() -> Self {
        WideInt {
            neg: false,
            mag: vec![1],
        }
    }

    /// Returns `2^pos`.
    ///
    /// ```
    /// # use memsci_numeric::WideInt;
    /// assert_eq!(WideInt::pow2(70).bit_len(), 71);
    /// ```
    pub fn pow2(pos: usize) -> Self {
        let mut mag = vec![0u64; pos / 64 + 1];
        mag[pos / 64] = 1u64 << (pos % 64);
        WideInt { neg: false, mag }
    }

    /// Builds a value from a sign and magnitude limbs (little endian).
    pub fn from_sign_magnitude(neg: bool, mut mag: Vec<u64>) -> Self {
        mag_norm(&mut mag);
        let neg = neg && !mag.is_empty();
        WideInt { neg, mag }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Number of bits in the magnitude (`0` for zero).
    ///
    /// ```
    /// # use memsci_numeric::WideInt;
    /// assert_eq!(WideInt::from(6u64).bit_len(), 3);
    /// ```
    pub fn bit_len(&self) -> usize {
        mag_bit_len(&self.mag)
    }

    /// Position of the most significant set bit of the magnitude, or
    /// `None` for zero.
    pub fn leading_one(&self) -> Option<usize> {
        let l = self.bit_len();
        if l == 0 {
            None
        } else {
            Some(l - 1)
        }
    }

    /// Returns bit `i` of the magnitude.
    pub fn bit(&self, i: usize) -> bool {
        mag_bit(&self.mag, i)
    }

    /// Number of set bits in the magnitude.
    pub fn count_ones(&self) -> u32 {
        self.mag.iter().map(|w| w.count_ones()).sum()
    }

    /// Returns `true` if any of the `k` least significant magnitude bits
    /// are set.
    pub fn low_bits_nonzero(&self, k: usize) -> bool {
        mag_low_bits_nonzero(&self.mag, k)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        WideInt {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    /// Sign of the value: `-1`, `0`, or `1`.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Borrows the magnitude limbs (little endian, normalized).
    pub fn magnitude_limbs(&self) -> &[u64] {
        &self.mag
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.bit_len() > 127 {
            return None;
        }
        let lo = self.mag.first().copied().unwrap_or(0) as u128;
        let hi = self.mag.get(1).copied().unwrap_or(0) as u128;
        let v = (hi << 64) | lo;
        if self.neg {
            Some(-(v as i128))
        } else {
            Some(v as i128)
        }
    }
}

impl From<u64> for WideInt {
    fn from(v: u64) -> Self {
        WideInt::from_sign_magnitude(false, vec![v])
    }
}

impl From<i64> for WideInt {
    fn from(v: i64) -> Self {
        WideInt::from_sign_magnitude(v < 0, vec![v.unsigned_abs()])
    }
}

impl From<u128> for WideInt {
    fn from(v: u128) -> Self {
        WideInt::from_sign_magnitude(false, vec![v as u64, (v >> 64) as u64])
    }
}

impl From<i128> for WideInt {
    fn from(v: i128) -> Self {
        let m = v.unsigned_abs();
        WideInt::from_sign_magnitude(v < 0, vec![m as u64, (m >> 64) as u64])
    }
}

impl From<u32> for WideInt {
    fn from(v: u32) -> Self {
        WideInt::from(u64::from(v))
    }
}

impl From<i32> for WideInt {
    fn from(v: i32) -> Self {
        WideInt::from(i64::from(v))
    }
}

// ---------------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------------

impl PartialOrd for WideInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WideInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => mag_cmp(&self.mag, &other.mag),
            (true, true) => mag_cmp(&other.mag, &self.mag),
        }
    }
}

// ---------------------------------------------------------------------------
// Arithmetic.
// ---------------------------------------------------------------------------

impl WideInt {
    fn add_impl(&self, other: &Self) -> Self {
        if self.neg == other.neg {
            WideInt::from_sign_magnitude(self.neg, mag_add(&self.mag, &other.mag))
        } else {
            match mag_cmp(&self.mag, &other.mag) {
                Ordering::Equal => WideInt::zero(),
                Ordering::Greater => {
                    WideInt::from_sign_magnitude(self.neg, mag_sub(&self.mag, &other.mag))
                }
                Ordering::Less => {
                    WideInt::from_sign_magnitude(other.neg, mag_sub(&other.mag, &self.mag))
                }
            }
        }
    }

    fn mul_impl(&self, other: &Self) -> Self {
        WideInt::from_sign_magnitude(self.neg != other.neg, mag_mul(&self.mag, &other.mag))
    }

    /// Multiplies by a small unsigned constant.
    pub fn mul_u64(&self, m: u64) -> Self {
        WideInt::from_sign_magnitude(self.neg, mag_mul_u64(&self.mag, m))
    }

    /// Truncating division by a small unsigned constant; the remainder
    /// carries the sign of the dividend (Rust `%` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divrem_u64(&self, d: u64) -> (Self, i64) {
        let (q, r) = mag_divrem_u64(&self.mag, d);
        let rem = if self.neg { -(r as i64) } else { r as i64 };
        (WideInt::from_sign_magnitude(self.neg, q), rem)
    }

    /// Remainder of the value modulo `d`, mapped into `[0, d)`.
    /// Allocation-free (the quotient is never materialized).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn rem_euclid_u64(&self, d: u64) -> u64 {
        let r = mag_rem_u64(&self.mag, d);
        if self.neg && r != 0 {
            d - r
        } else {
            r
        }
    }

    /// As [`Self::divrem_u64`], writing the quotient into `q`'s reused
    /// limb buffer and returning the remainder (dividend-signed).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn divrem_u64_into(&self, d: u64, q: &mut WideInt) -> i64 {
        assert!(d != 0, "division by zero");
        q.mag.clear();
        q.mag.resize(self.mag.len(), 0);
        let mut rem = 0u128;
        for i in (0..self.mag.len()).rev() {
            let cur = (rem << 64) | u128::from(self.mag[i]);
            q.mag[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        mag_norm(&mut q.mag);
        q.neg = self.neg && !q.mag.is_empty();
        let r = rem as u64;
        if self.neg {
            -(r as i64)
        } else {
            r as i64
        }
    }

    /// Exact left shift (multiplication by `2^k`).
    pub fn shl(&self, k: u32) -> Self {
        WideInt::from_sign_magnitude(self.neg, mag_shl(&self.mag, k))
    }

    /// Flooring right shift: `floor(self / 2^k)` for both signs, matching
    /// two's-complement arithmetic shifts.
    ///
    /// ```
    /// # use memsci_numeric::WideInt;
    /// assert_eq!(WideInt::from(-5i64).shr_floor(1), WideInt::from(-3i64));
    /// ```
    pub fn shr_floor(&self, k: u32) -> Self {
        let dropped = mag_low_bits_nonzero(&self.mag, k as usize);
        let mut m = mag_shr(&self.mag, k);
        if self.neg && dropped {
            m = mag_add(&m, &[1]);
        }
        WideInt::from_sign_magnitude(self.neg, m)
    }
}

// ---------------------------------------------------------------------------
// In-place accumulation (the allocation-free hot path).
// ---------------------------------------------------------------------------

impl WideInt {
    /// Resets the value to zero, keeping the limb buffer allocated.
    pub fn set_zero(&mut self) {
        self.mag.clear();
        self.neg = false;
    }

    /// Overwrites the value with `±(m << shift)`, reusing the buffer.
    pub fn assign_shl_u64(&mut self, neg: bool, m: u64, shift: u32) {
        self.mag.clear();
        self.neg = false;
        if m != 0 {
            self.add_shl_limbs(&[m], neg, shift);
        }
    }

    /// Overwrites the value with the non-negative integer whose
    /// little-endian magnitude limbs are `limbs` (not necessarily
    /// normalized), reusing the buffer. This is the single-normalization
    /// endpoint of the columnar slice kernel's lane accumulation: the
    /// kernel combines its split accumulator lanes into raw limbs and
    /// commits them here once per row per slice.
    pub fn assign_limbs_unsigned(&mut self, limbs: &[u64]) {
        self.mag.clear();
        self.mag.extend_from_slice(limbs);
        mag_norm(&mut self.mag);
        self.neg = false;
    }

    /// In-place `self ± (rhs << shift)` without allocating the shifted
    /// temporary (`negate` selects subtraction). Equivalent to
    /// `*self += &rhs.shl(shift)` / `-=`, but the right operand's limbs
    /// are read through the shift on the fly and the left operand's
    /// buffer grows only when the result genuinely needs more limbs.
    pub fn add_shl_assign(&mut self, rhs: &WideInt, shift: u32, negate: bool) {
        self.add_shl_limbs(&rhs.mag, rhs.neg != negate, shift);
    }

    /// In-place `self ± (m << shift)` for a single unsigned limb.
    pub fn add_shl_u64_assign(&mut self, m: u64, shift: u32, negate: bool) {
        if m != 0 {
            self.add_shl_limbs(&[m], negate, shift);
        }
    }

    /// In-place `self += v << shift` for an `i128` (two limbs at most).
    pub fn add_shl_i128_assign(&mut self, v: i128, shift: u32) {
        let m = v.unsigned_abs();
        let limbs = [m as u64, (m >> 64) as u64];
        let len = if limbs[1] != 0 {
            2
        } else {
            usize::from(limbs[0] != 0)
        };
        self.add_shl_limbs(&limbs[..len], v < 0, shift);
    }

    /// The shared core: `self ± (rmag << shift)` with `rmag` normalized
    /// and non-aliasing (guaranteed by the borrow checker at call
    /// sites). Handles all sign/magnitude cases in place.
    fn add_shl_limbs(&mut self, rmag: &[u64], rneg: bool, shift: u32) {
        if rmag.is_empty() {
            return;
        }
        let limbs = (shift / 64) as usize;
        let bits = shift % 64;
        let rlen = rmag.len() + limbs + usize::from(bits != 0);
        if self.mag.is_empty() {
            self.mag.resize(rlen, 0);
            for i in 0..rlen {
                self.mag[i] = shifted_limb(rmag, limbs, bits, i);
            }
            mag_norm(&mut self.mag);
            self.neg = rneg && !self.mag.is_empty();
            return;
        }
        if self.neg == rneg {
            // Same sign: magnitude addition with carry propagation.
            if self.mag.len() < rlen {
                self.mag.resize(rlen, 0);
            }
            let mut carry = 0u64;
            let mut i = 0;
            while i < self.mag.len() {
                if i >= rlen && carry == 0 {
                    break;
                }
                let r = if i < rlen {
                    shifted_limb(rmag, limbs, bits, i)
                } else {
                    0
                };
                let (x, c1) = self.mag[i].overflowing_add(r);
                let (x, c2) = x.overflowing_add(carry);
                self.mag[i] = x;
                carry = u64::from(c1) + u64::from(c2);
                i += 1;
            }
            if carry != 0 {
                self.mag.push(carry);
            }
            mag_norm(&mut self.mag);
            return;
        }
        // Opposite signs: compare |self| against |rmag << shift|, then
        // subtract the smaller from the larger in place.
        let cmp = {
            let mut ord = Ordering::Equal;
            for i in (0..self.mag.len().max(rlen)).rev() {
                let a = self.mag.get(i).copied().unwrap_or(0);
                let b = if i < rlen {
                    shifted_limb(rmag, limbs, bits, i)
                } else {
                    0
                };
                match a.cmp(&b) {
                    Ordering::Equal => continue,
                    other => {
                        ord = other;
                        break;
                    }
                }
            }
            ord
        };
        match cmp {
            Ordering::Equal => self.set_zero(),
            Ordering::Greater => {
                // self.mag -= shifted; sign unchanged.
                let mut borrow = 0u64;
                let mut i = 0;
                while i < self.mag.len() {
                    if i >= rlen && borrow == 0 {
                        break;
                    }
                    let b = if i < rlen {
                        shifted_limb(rmag, limbs, bits, i)
                    } else {
                        0
                    };
                    let (x, b1) = self.mag[i].overflowing_sub(b);
                    let (x, b2) = x.overflowing_sub(borrow);
                    self.mag[i] = x;
                    borrow = u64::from(b1) + u64::from(b2);
                    i += 1;
                }
                debug_assert_eq!(borrow, 0);
                mag_norm(&mut self.mag);
            }
            Ordering::Less => {
                // self.mag = shifted - self.mag (forward pass reads each
                // limb before overwriting it); result takes rhs's sign.
                // |self| < |shifted| implies self.mag.len() <= rlen.
                if self.mag.len() < rlen {
                    self.mag.resize(rlen, 0);
                }
                let mut borrow = 0u64;
                for i in 0..rlen {
                    let a = shifted_limb(rmag, limbs, bits, i);
                    let (x, b1) = a.overflowing_sub(self.mag[i]);
                    let (x, b2) = x.overflowing_sub(borrow);
                    self.mag[i] = x;
                    borrow = u64::from(b1) + u64::from(b2);
                }
                debug_assert_eq!(borrow, 0);
                mag_norm(&mut self.mag);
                self.neg = rneg && !self.mag.is_empty();
            }
        }
    }
}

macro_rules! forward_binop {
    ($trait_:ident, $method:ident, $impl_:ident) => {
        impl<'a, 'b> $trait_<&'b WideInt> for &'a WideInt {
            type Output = WideInt;
            fn $method(self, rhs: &'b WideInt) -> WideInt {
                self.$impl_(rhs)
            }
        }
        impl $trait_<WideInt> for WideInt {
            type Output = WideInt;
            fn $method(self, rhs: WideInt) -> WideInt {
                (&self).$impl_(&rhs)
            }
        }
        impl<'a> $trait_<&'a WideInt> for WideInt {
            type Output = WideInt;
            fn $method(self, rhs: &'a WideInt) -> WideInt {
                (&self).$impl_(rhs)
            }
        }
        impl<'a> $trait_<WideInt> for &'a WideInt {
            type Output = WideInt;
            fn $method(self, rhs: WideInt) -> WideInt {
                self.$impl_(&rhs)
            }
        }
    };
}

impl WideInt {
    fn sub_impl(&self, other: &Self) -> Self {
        self.add_impl(&other.clone().neg_impl())
    }

    fn neg_impl(self) -> Self {
        WideInt::from_sign_magnitude(!self.neg, self.mag)
    }
}

forward_binop!(Add, add, add_impl);
forward_binop!(Sub, sub, sub_impl);
forward_binop!(Mul, mul, mul_impl);

impl Neg for WideInt {
    type Output = WideInt;
    fn neg(self) -> WideInt {
        self.neg_impl()
    }
}

impl Neg for &WideInt {
    type Output = WideInt;
    fn neg(self) -> WideInt {
        self.clone().neg_impl()
    }
}

impl AddAssign<&WideInt> for WideInt {
    fn add_assign(&mut self, rhs: &WideInt) {
        *self = self.add_impl(rhs);
    }
}

impl SubAssign<&WideInt> for WideInt {
    fn sub_assign(&mut self, rhs: &WideInt) {
        *self = self.sub_impl(rhs);
    }
}

impl Shl<u32> for &WideInt {
    type Output = WideInt;
    fn shl(self, k: u32) -> WideInt {
        WideInt::shl(self, k)
    }
}

impl Shl<u32> for WideInt {
    type Output = WideInt;
    fn shl(self, k: u32) -> WideInt {
        WideInt::shl(&self, k)
    }
}

impl Shr<u32> for &WideInt {
    type Output = WideInt;
    fn shr(self, k: u32) -> WideInt {
        self.shr_floor(k)
    }
}

impl Shr<u32> for WideInt {
    type Output = WideInt;
    fn shr(self, k: u32) -> WideInt {
        self.shr_floor(k)
    }
}

// ---------------------------------------------------------------------------
// Rounding and float conversion.
// ---------------------------------------------------------------------------

/// A value rounded to a fixed number of significant bits: `±mantissa × 2^exp`
/// with the mantissa normalized so its leading one sits at bit
/// `precision - 1` (zero is canonical as all-zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rounded {
    /// Sign flag (`false` for zero).
    pub neg: bool,
    /// Normalized mantissa with exactly `precision` bits, or zero.
    pub mantissa: u64,
    /// Exponent of the mantissa's least significant bit.
    pub exp: i64,
}

impl Rounded {
    /// The canonical zero.
    pub fn zero() -> Self {
        Rounded {
            neg: false,
            mantissa: 0,
            exp: 0,
        }
    }
}

impl WideInt {
    /// Rounds the value to `precision` significant bits under `mode`,
    /// producing a canonical sign/mantissa/exponent triple.
    ///
    /// This models the conversion of a settled fixed-point running sum to
    /// the intermediate floating-point format (paper §III-B): the leading
    /// one is detected and the following `precision - 1` bits are kept.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= precision <= 63`.
    pub fn round_to_precision(&self, precision: u32, mode: Rounding) -> Rounded {
        assert!((1..=63).contains(&precision), "precision must be in 1..=63");
        if self.is_zero() {
            return Rounded::zero();
        }
        let bl = self.bit_len() as i64;
        let p = i64::from(precision);
        if bl <= p {
            // Exact: widen to the canonical left-aligned form.
            let shift = (p - bl) as u32;
            let m = self.mag[0] << shift;
            let m = if self.mag.len() > 1 {
                // bl <= 63 here, so a second limb cannot exist.
                unreachable!("normalized magnitude wider than bit_len")
            } else {
                m
            };
            return Rounded {
                neg: self.neg,
                mantissa: m,
                exp: -(shift as i64),
            };
        }
        let shift = (bl - p) as u32;
        let kept = mag_shr(&self.mag, shift);
        debug_assert_eq!(mag_bit_len(&kept) as i64, p);
        let mut m = kept.first().copied().unwrap_or(0);
        let guard = self.bit(shift as usize - 1);
        let sticky_low = mag_low_bits_nonzero(&self.mag, shift as usize - 1);
        let any_dropped = guard || sticky_low;
        let inc = match mode {
            Rounding::TowardZero => false,
            Rounding::TowardNegInf => self.neg && any_dropped,
            Rounding::TowardPosInf => !self.neg && any_dropped,
            Rounding::NearestEven => guard && (sticky_low || (m & 1 == 1)),
        };
        let mut exp = i64::from(shift);
        if inc {
            m += 1;
            if m == 1u64 << precision {
                m >>= 1;
                exp += 1;
            }
        }
        Rounded {
            neg: self.neg,
            mantissa: m,
            exp,
        }
    }

    /// Converts `self × 2^e2` to the nearest `f64` under `mode`, with
    /// correct handling of subnormals, underflow, and overflow.
    ///
    /// ```
    /// # use memsci_numeric::{Rounding, WideInt};
    /// let v = WideInt::from(3u64);
    /// assert_eq!(v.to_f64_with_exp(-1, Rounding::NearestEven), 1.5);
    /// ```
    pub fn to_f64_with_exp(&self, e2: i32, mode: Rounding) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let bl = self.bit_len() as i64;
        let pos = bl - 1 + i64::from(e2); // exponent of the leading bit
        if pos > 1024 {
            return overflow_value(self.neg, mode);
        }
        // Quantum: LSB position of the target representation.
        let q = core::cmp::max(-1074i64, pos - 52);
        let shift = q - i64::from(e2);
        let n = if shift <= 0 {
            // Exact: all bits representable.
            debug_assert!(bl - shift <= 54);
            let m = self.mag[0] as u128;
            let m = if self.mag.len() > 1 {
                (u128::from(self.mag[1]) << 64) | m
            } else {
                m
            };
            (m << (-shift) as u32) as u64
        } else {
            let guard = self.bit(shift as usize - 1);
            let sticky_low = mag_low_bits_nonzero(&self.mag, shift as usize - 1);
            // First limb of `mag >> shift`, read through the shift: the
            // kept part fits 54 bits, so higher limbs are zero and no
            // shifted temporary is needed.
            let limbs = (shift / 64) as usize;
            let bits = (shift % 64) as u32;
            let lo = self.mag.get(limbs).copied().unwrap_or(0);
            let mut m = if bits == 0 {
                lo
            } else {
                let hi = self.mag.get(limbs + 1).copied().unwrap_or(0);
                (lo >> bits) | (hi << (64 - bits))
            };
            let inc = match mode {
                Rounding::TowardZero => false,
                Rounding::TowardNegInf => self.neg && (guard || sticky_low),
                Rounding::TowardPosInf => !self.neg && (guard || sticky_low),
                Rounding::NearestEven => guard && (sticky_low || (m & 1 == 1)),
            };
            if inc {
                m += 1;
            }
            m
        };
        if n == 0 {
            return if self.neg { -0.0 } else { 0.0 };
        }
        let magnitude = ldexp_exact(n, q);
        let out = if self.neg { -magnitude } else { magnitude };
        if out.is_infinite() {
            // Rounding pushed the magnitude past the largest finite value.
            return overflow_value(self.neg, mode);
        }
        out
    }
}

fn overflow_value(neg: bool, mode: Rounding) -> f64 {
    match (mode, neg) {
        (Rounding::NearestEven, false) => f64::INFINITY,
        (Rounding::NearestEven, true) => f64::NEG_INFINITY,
        (Rounding::TowardZero, false) => f64::MAX,
        (Rounding::TowardZero, true) => -f64::MAX,
        (Rounding::TowardNegInf, false) => f64::MAX,
        (Rounding::TowardNegInf, true) => f64::NEG_INFINITY,
        (Rounding::TowardPosInf, false) => f64::INFINITY,
        (Rounding::TowardPosInf, true) => -f64::MAX,
    }
}

/// Computes `n × 2^k` exactly where `n < 2^54` and the result is
/// representable (possibly subnormal); the stepwise scaling below never
/// rounds because every intermediate stays in the normal range or is the
/// exactly-representable final value.
fn ldexp_exact(n: u64, k: i64) -> f64 {
    let mut r = n as f64;
    let mut k = k;
    while k > 1023 {
        r *= f64::powi(2.0, 1023);
        k -= 1023;
        if r.is_infinite() {
            return r;
        }
    }
    while k < -1021 {
        r *= f64::powi(2.0, -1021);
        k += 1021;
        if r == 0.0 {
            return r;
        }
    }
    r * f64::powi(2.0, k as i32)
}

// ---------------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------------

impl fmt::Debug for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideInt({self})")
    }
}

impl fmt::Display for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.mag.clone();
        while !cur.is_empty() {
            let (q, r) = mag_divrem_u64(&cur, 10);
            digits.push(b'0' + r as u8);
            cur = q;
        }
        digits.reverse();
        let s = core::str::from_utf8(&digits).expect("ascii digits");
        f.pad_integral(!self.neg, "", s)
    }
}

impl fmt::LowerHex for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.is_zero() {
            s.push('0');
        } else {
            for (i, w) in self.mag.iter().enumerate().rev() {
                if i == self.mag.len() - 1 {
                    s.push_str(&format!("{w:x}"));
                } else {
                    s.push_str(&format!("{w:016x}"));
                }
            }
        }
        f.pad_integral(!self.neg, "0x", &s)
    }
}

impl fmt::Binary for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.is_zero() {
            s.push('0');
        } else {
            for i in (0..self.bit_len()).rev() {
                s.push(if self.bit(i) { '1' } else { '0' });
            }
        }
        f.pad_integral(!self.neg, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i128) -> WideInt {
        WideInt::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert_eq!(WideInt::zero(), WideInt::from(0i64));
        assert_eq!(w(5) - w(5), WideInt::zero());
        assert!(!(w(3) - w(3)).is_negative());
    }

    #[test]
    fn add_sub_match_i128() {
        let cases = [
            0i128,
            1,
            -1,
            2,
            7,
            -13,
            1 << 62,
            -(1 << 62),
            i64::MAX as i128,
        ];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(w(a) + w(b), w(a + b), "{a} + {b}");
                assert_eq!(w(a) - w(b), w(a - b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn mul_matches_i128() {
        let cases = [0i128, 1, -1, 3, -7, 1 << 40, -(1 << 40)];
        for &a in &cases {
            for &b in &cases {
                assert_eq!(w(a) * w(b), w(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn wide_multiplication_carries() {
        let a = WideInt::pow2(100) - WideInt::one();
        let b = WideInt::pow2(90) - WideInt::one();
        let p = &a * &b;
        // (2^100-1)(2^90-1) = 2^190 - 2^100 - 2^90 + 1
        let expect = WideInt::pow2(190) - WideInt::pow2(100) - WideInt::pow2(90) + WideInt::one();
        assert_eq!(p, expect);
    }

    #[test]
    fn shifts_match_floor_semantics() {
        for v in [-9i128, -8, -7, -1, 0, 1, 7, 8, 9] {
            for k in 0..5u32 {
                assert_eq!(w(v).shr_floor(k), w(v >> k), "{v} >> {k} (floor)");
                assert_eq!(w(v).shl(k), w(v << k));
            }
        }
    }

    #[test]
    fn divrem_small() {
        assert_eq!(w(100).divrem_u64(7), (w(14), 2));
        assert_eq!(w(-100).divrem_u64(7), (w(-14), -2));
        assert_eq!(w(-100).rem_euclid_u64(7), 5);
        let big = WideInt::pow2(200);
        let (q, r) = big.divrem_u64(251);
        assert_eq!(q.mul_u64(251) + WideInt::from(r), WideInt::pow2(200));
    }

    #[test]
    fn bit_inspection() {
        let v = w(0b1011_0000);
        assert_eq!(v.bit_len(), 8);
        assert_eq!(v.leading_one(), Some(7));
        assert!(v.bit(4) && v.bit(5) && !v.bit(6) && v.bit(7));
        assert_eq!(v.count_ones(), 3);
        assert!(v.low_bits_nonzero(5));
        assert!(!v.low_bits_nonzero(4));
    }

    #[test]
    fn ordering_is_numeric() {
        let mut vals = [w(-5), w(3), w(0), w(-1), w(100), w(-100)];
        vals.sort();
        let nums: Vec<i128> = vals.iter().map(|v| v.to_i128().unwrap()).collect();
        assert_eq!(nums, vec![-100, -5, -1, 0, 3, 100]);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(w(0).to_string(), "0");
        assert_eq!(w(-12345).to_string(), "-12345");
        let big = WideInt::pow2(64);
        assert_eq!(big.to_string(), "18446744073709551616");
        assert_eq!(format!("{:#x}", w(255)), "0xff");
        assert_eq!(format!("{:x}", w(-255)), "-ff");
        assert_eq!(format!("{:#b}", w(5)), "0b101");
    }

    #[test]
    fn round_to_precision_exact_and_inexact() {
        // 0b1011 rounded to 3 bits.
        let v = w(0b1011);
        let r = v.round_to_precision(3, Rounding::TowardZero);
        assert_eq!((r.neg, r.mantissa, r.exp), (false, 0b101, 1));
        let r = v.round_to_precision(3, Rounding::NearestEven);
        assert_eq!((r.mantissa, r.exp), (0b110, 1));
        let r = v.round_to_precision(3, Rounding::TowardPosInf);
        assert_eq!((r.mantissa, r.exp), (0b110, 1));
        let r = v.round_to_precision(3, Rounding::TowardNegInf);
        assert_eq!((r.mantissa, r.exp), (0b101, 1));
        // Negative value: floor rounds magnitude up.
        let v = w(-0b1011);
        let r = v.round_to_precision(3, Rounding::TowardNegInf);
        assert_eq!((r.neg, r.mantissa, r.exp), (true, 0b110, 1));
        // Exact value is left-aligned canonically.
        let v = w(4);
        let r = v.round_to_precision(4, Rounding::NearestEven);
        assert_eq!((r.mantissa, r.exp), (0b1000, -1));
    }

    #[test]
    fn rounding_carry_renormalizes() {
        let v = w(0b1_1111); // 31
        let r = v.round_to_precision(4, Rounding::NearestEven);
        // 31 -> 32 = 0b1000 × 2^2
        assert_eq!((r.mantissa, r.exp), (0b1000, 2));
    }

    #[test]
    fn to_f64_roundtrips_doubles() {
        for x in [
            1.0f64,
            -1.5,
            0.1,
            1e300,
            -1e-300,
            std::f64::consts::PI,
            5e-324,
        ] {
            let bits = crate::float::FloatParts::decompose(x).unwrap();
            let v = WideInt::from(bits.mantissa).shl(0);
            let v = if bits.sign { -v } else { v };
            let back = v.to_f64_with_exp(bits.exponent, Rounding::NearestEven);
            assert_eq!(back, x, "{x}");
        }
    }

    #[test]
    fn to_f64_rounds_directed() {
        // 2^53 + 1 is not representable: floor keeps 2^53, ceil bumps.
        let v = WideInt::pow2(53) + WideInt::one();
        assert_eq!(
            v.to_f64_with_exp(0, Rounding::TowardNegInf),
            9007199254740992.0
        );
        assert_eq!(
            v.to_f64_with_exp(0, Rounding::TowardPosInf),
            9007199254740994.0
        );
        let n = -(WideInt::pow2(53) + WideInt::one());
        assert_eq!(
            n.to_f64_with_exp(0, Rounding::TowardNegInf),
            -9007199254740994.0
        );
        assert_eq!(
            n.to_f64_with_exp(0, Rounding::TowardZero),
            -9007199254740992.0
        );
    }

    #[test]
    fn add_shl_assign_matches_allocating_arithmetic() {
        let cases = [
            0i128,
            1,
            -1,
            2,
            7,
            -13,
            255,
            -256,
            (1 << 62) + 12345,
            -(1 << 62),
            i64::MAX as i128,
            i128::MIN / 2,
        ];
        for &a in &cases {
            for &b in &cases {
                for shift in [0u32, 1, 13, 63, 64, 65, 130] {
                    for negate in [false, true] {
                        let mut acc = w(a);
                        acc.add_shl_assign(&w(b), shift, negate);
                        let term = w(b).shl(shift);
                        let want = if negate { w(a) - term } else { w(a) + term };
                        assert_eq!(acc, want, "{a} ± ({b} << {shift}) negate={negate}");
                    }
                }
            }
        }
    }

    #[test]
    fn add_shl_u64_and_i128_variants() {
        for &a in &[0i128, 5, -5, 1 << 100, -(1 << 100)] {
            for m in [0u64, 1, 42, u64::MAX] {
                for shift in [0u32, 7, 64, 100] {
                    let mut acc = w(a);
                    acc.add_shl_u64_assign(m, shift, false);
                    assert_eq!(acc, w(a) + WideInt::from(m).shl(shift));
                    let mut acc = w(a);
                    acc.add_shl_u64_assign(m, shift, true);
                    assert_eq!(acc, w(a) - WideInt::from(m).shl(shift));
                }
            }
            for v in [0i128, -1, 1, i128::MAX / 3, i128::MIN / 5] {
                let mut acc = w(a);
                acc.add_shl_i128_assign(v, 9);
                assert_eq!(acc, w(a) + w(v).shl(9), "{a} += {v} << 9");
            }
        }
    }

    #[test]
    fn set_zero_and_assign_reuse_buffers() {
        let mut v = WideInt::pow2(500);
        v.set_zero();
        assert!(v.is_zero() && !v.is_negative());
        v.assign_shl_u64(true, 3, 70);
        assert_eq!(v, -WideInt::from(3u64).shl(70));
        v.assign_shl_u64(false, 0, 10);
        assert!(v.is_zero());
    }

    #[test]
    fn divrem_into_matches_divrem() {
        let mut q = WideInt::pow2(300); // dirty buffer on purpose
        for &a in &[0i128, 100, -100, (1 << 90) + 17, -(1 << 90) - 17] {
            for d in [1u64, 7, 251, 503, u64::MAX] {
                let r = w(a).divrem_u64_into(d, &mut q);
                let (want_q, want_r) = w(a).divrem_u64(d);
                assert_eq!((q.clone(), r), (want_q, want_r), "{a} / {d}");
                // q·d + r reconstructs the dividend.
                assert_eq!(q.mul_u64(d) + WideInt::from(r), w(a), "{a} / {d}");
            }
        }
    }

    #[test]
    fn to_f64_handles_overflow_and_underflow() {
        let v = WideInt::one();
        assert_eq!(
            v.to_f64_with_exp(1100, Rounding::NearestEven),
            f64::INFINITY
        );
        assert_eq!(v.to_f64_with_exp(1100, Rounding::TowardZero), f64::MAX);
        assert_eq!(v.to_f64_with_exp(-1200, Rounding::NearestEven), 0.0);
        assert_eq!(v.to_f64_with_exp(-1200, Rounding::TowardPosInf), 5e-324);
        assert_eq!(v.to_f64_with_exp(-1074, Rounding::NearestEven), 5e-324);
        // Subnormal rounding: 3 × 2^-1075 = 1.5 ulp -> rounds to 2 ulp (even).
        let v = WideInt::from(3u64);
        assert_eq!(v.to_f64_with_exp(-1075, Rounding::NearestEven), 1e-323);
    }
}
