//! IEEE-754 rounding-direction attributes supported by the accelerator.

/// Rounding direction for converting exact fixed-point values to a
/// finite-precision mantissa.
///
/// The accelerator's natural mode is [`Rounding::TowardNegInf`]: mantissa
/// alignment plus leading-one detection truncate the biased running sum,
/// which is equivalent to rounding the dot product toward negative
/// infinity (paper §IV-D). The remaining modes are supported by computing
/// three additional settled bits before truncation.
///
/// # Examples
///
/// ```
/// use memsci_numeric::{Rounding, WideInt};
///
/// let v = WideInt::from(-5i64); // -0b101
/// let r = v.round_to_precision(2, Rounding::TowardNegInf);
/// assert_eq!((r.neg, r.mantissa, r.exp), (true, 0b11, 1)); // -6
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round toward negative infinity (the hardware's native truncation).
    #[default]
    TowardNegInf,
    /// Round toward zero.
    TowardZero,
    /// Round toward positive infinity.
    TowardPosInf,
    /// Round to nearest, ties to even (the IEEE-754 default).
    NearestEven,
}

impl Rounding {
    /// All four supported modes, for exhaustive testing.
    pub const ALL: [Rounding; 4] = [
        Rounding::TowardNegInf,
        Rounding::TowardZero,
        Rounding::TowardPosInf,
        Rounding::NearestEven,
    ];
}
