//! Per-block biasing for negative numbers.
//!
//! Crossbar conductances are non-negative, so signed fixed-point operands
//! cannot be programmed directly. Following ISAAC's biasing scheme with
//! the paper's per-block refinement (§IV-C), every aligned value `v` in a
//! block is stored as `v + 2^bias_bit`, where the bias covers the block's
//! actual magnitude range instead of a fixed 2^16. After a crossbar
//! computes a partial dot product against a vector bit slice, the bias
//! contribution — `2^bias_bit` per participating row — is removed
//! digitally using the population count of the applied slice.

use crate::align::AlignedSlice;
use crate::wideint::WideInt;

/// A block of aligned values shifted into non-negative range by a
/// power-of-two bias.
///
/// Stored values lie in `(0, 2^operand_bits)` with
/// `operand_bits = bias_bit + 1`; the extra bit is the cost of biasing.
///
/// # Examples
///
/// ```
/// use memsci_numeric::align::AlignedSlice;
/// use memsci_numeric::bias::BiasedSlice;
/// use memsci_numeric::WideInt;
///
/// let a = AlignedSlice::align(&[1.0, -1.0], 117)?;
/// let b = BiasedSlice::from_aligned(&a);
/// // -1.0 aligns to -2^52; biased by 2^53 it stores as +2^52.
/// assert_eq!(b.values()[1], WideInt::pow2(52));
/// assert_eq!(b.operand_bits(), 54);
/// # Ok::<(), memsci_numeric::align::AlignError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiasedSlice {
    bias_bit: usize,
    exp_base: i32,
    values: Vec<WideInt>,
}

impl BiasedSlice {
    /// Biases an aligned block so all stored operands are positive.
    pub fn from_aligned(aligned: &AlignedSlice) -> Self {
        let bias_bit = aligned.magnitude_bits();
        let bias = WideInt::pow2(bias_bit);
        let values = aligned.integers().iter().map(|v| v + &bias).collect();
        BiasedSlice {
            bias_bit,
            exp_base: aligned.exp_base(),
            values,
        }
    }

    /// Bit position of the bias constant (`B = 2^bias_bit`).
    pub fn bias_bit(&self) -> usize {
        self.bias_bit
    }

    /// Total unsigned operand width, `bias_bit + 1`.
    pub fn operand_bits(&self) -> usize {
        self.bias_bit + 1
    }

    /// Power-of-two weight of the fixed-point LSB (inherited from the
    /// aligned block).
    pub fn exp_base(&self) -> i32 {
        self.exp_base
    }

    /// The biased, strictly positive operands.
    pub fn values(&self) -> &[WideInt] {
        &self.values
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the block holds no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Recovers the signed aligned value of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn unbiased(&self, i: usize) -> WideInt {
        &self.values[i] - &WideInt::pow2(self.bias_bit)
    }
}

/// Removes the bias contribution from a biased partial dot product.
///
/// For a partial product `p = Σ_i (v_i + B)·x[i]` computed against a
/// binary vector slice with `popcount` ones, the true contribution is
/// `p - B·popcount` (paper §IV-C).
///
/// # Examples
///
/// ```
/// use memsci_numeric::bias::debias_partial;
/// use memsci_numeric::WideInt;
///
/// // Two active rows, bias 2^4, raw partial 35: true partial is 3.
/// let p = debias_partial(&WideInt::from(35u64), 4, 2);
/// assert_eq!(p, WideInt::from(3u64));
/// ```
pub fn debias_partial(p: &WideInt, bias_bit: usize, popcount: u64) -> WideInt {
    memsci_telemetry::incr(memsci_telemetry::Counter::BiasDebiases, 1);
    p - &WideInt::from(popcount).shl(bias_bit as u32)
}

/// Allocation-free fused debias-and-accumulate:
/// `acc ± (debias_partial(p, bias_bit, popcount) << shift)` computed in
/// place on `acc`'s limb buffer (`negate` selects subtraction). The
/// bias term is folded in as `∓ popcount << (bias_bit + shift)`, which
/// is algebraically identical to shifting the debiased partial, so the
/// result is bit-for-bit the same as the allocating form. Counts one
/// [`BiasDebiases`](memsci_telemetry::Counter::BiasDebiases) event,
/// exactly like [`debias_partial`].
pub fn debias_accumulate(
    acc: &mut WideInt,
    p: &WideInt,
    bias_bit: usize,
    popcount: u64,
    shift: u32,
    negate: bool,
) {
    memsci_telemetry::incr(memsci_telemetry::Counter::BiasDebiases, 1);
    acc.add_shl_assign(p, shift, negate);
    acc.add_shl_u64_assign(popcount, bias_bit as u32 + shift, !negate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::MAX_MAGNITUDE_BITS;

    #[test]
    fn biased_values_are_positive() {
        let a = AlignedSlice::align(&[3.5, -3.5, 0.0, -0.001], MAX_MAGNITUDE_BITS).unwrap();
        let b = BiasedSlice::from_aligned(&a);
        for v in b.values() {
            assert!(!v.is_negative());
            assert!(!v.is_zero(), "bias makes every operand strictly positive");
            assert!(v.bit_len() <= b.operand_bits());
        }
    }

    #[test]
    fn unbiased_roundtrip() {
        let vals = [1.0, -2.0, 0.25, 0.0];
        let a = AlignedSlice::align(&vals, MAX_MAGNITUDE_BITS).unwrap();
        let b = BiasedSlice::from_aligned(&a);
        for i in 0..vals.len() {
            assert_eq!(b.unbiased(i), a.integers()[i]);
        }
    }

    #[test]
    fn debias_recovers_dot_product() {
        // v = [5, -3] biased by B=2^4=16 -> stored [21, 13].
        // Vector slice [1, 1]: raw = 34, popcount 2 -> 34 - 32 = 2 = 5 - 3.
        let raw = WideInt::from(21u64 + 13);
        assert_eq!(debias_partial(&raw, 4, 2), WideInt::from(2u64));
        // Vector slice [0, 1]: raw = 13, popcount 1 -> -3.
        let raw = WideInt::from(13u64);
        assert_eq!(debias_partial(&raw, 4, 1), WideInt::from(-3i64));
    }

    #[test]
    fn debias_accumulate_matches_debias_partial() {
        for &acc0 in &[0i64, 17, -300] {
            for &raw in &[34i64, 13, 0, 500] {
                for pop in [0u64, 1, 2, 7] {
                    for shift in [0u32, 3, 64] {
                        for negate in [false, true] {
                            let mut acc = WideInt::from(acc0);
                            debias_accumulate(&mut acc, &WideInt::from(raw), 4, pop, shift, negate);
                            let term = debias_partial(&WideInt::from(raw), 4, pop).shl(shift);
                            let want = if negate {
                                WideInt::from(acc0) - term
                            } else {
                                WideInt::from(acc0) + term
                            };
                            assert_eq!(acc, want, "acc0={acc0} raw={raw} pop={pop} shift={shift}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn operand_width_fits_the_cluster() {
        // A block using the full 64-bit pad stays within 118 operand bits.
        let lo = 1.0;
        let hi = (2.0f64).powi(64 - 53); // top exponent 11 above lo's LSB span
        let a = AlignedSlice::align(&[lo, hi], MAX_MAGNITUDE_BITS).unwrap();
        let b = BiasedSlice::from_aligned(&a);
        assert!(b.operand_bits() <= crate::align::MAX_OPERAND_BITS);
    }
}
