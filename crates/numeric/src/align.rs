//! Mantissa alignment: floating point → block-relative fixed point.
//!
//! Values that are summed in the analog domain must share one exponent
//! base, so each mantissa is shifted left by the difference between its
//! own exponent and the block minimum (paper §IV-A). Because matrices
//! from physical systems exhibit *exponent range locality*, the padding
//! stays small — at most [`MAX_PAD_BITS`] bits per block rather than the
//! 2046 bits naive IEEE-754 emulation would require.

use core::fmt;

use crate::float::{FloatParts, NonFiniteError};
use crate::wideint::WideInt;

/// Bits in a double-precision mantissa, including the implied leading one.
pub const MANTISSA_BITS: usize = 53;

/// Maximum pad bits available for mantissa alignment inside one operand.
pub const MAX_PAD_BITS: usize = 64;

/// Maximum magnitude width of an aligned operand
/// (`MANTISSA_BITS + MAX_PAD_BITS`, the paper's 117 value bits).
pub const MAX_MAGNITUDE_BITS: usize = MANTISSA_BITS + MAX_PAD_BITS;

/// Full unsigned operand width once the bias bit is included (118 bits);
/// AN encoding expands this to at most 127 bits, one per crossbar.
pub const MAX_OPERAND_BITS: usize = MAX_MAGNITUDE_BITS + 1;

/// The exponent base and magnitude width shared by a block of values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alignment {
    /// Power-of-two weight of the fixed-point LSB.
    pub exp_base: i32,
    /// Bits needed to represent the largest aligned magnitude.
    pub magnitude_bits: usize,
}

/// Error produced when a slice of doubles cannot be aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignError {
    /// A NaN or infinity was present.
    NonFinite(NonFiniteError),
    /// The block's exponent range needs more magnitude bits than allowed;
    /// the blocking preprocessor reacts by evicting outlier elements.
    RangeExceeded {
        /// Magnitude bits the data actually needs.
        required: usize,
        /// The configured maximum.
        max: usize,
    },
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::NonFinite(e) => e.fmt(f),
            AlignError::RangeExceeded { required, max } => write!(
                f,
                "exponent range requires {required} magnitude bits, exceeding the {max}-bit operand"
            ),
        }
    }
}

impl std::error::Error for AlignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlignError::NonFinite(e) => Some(e),
            AlignError::RangeExceeded { .. } => None,
        }
    }
}

impl From<NonFiniteError> for AlignError {
    fn from(e: NonFiniteError) -> Self {
        AlignError::NonFinite(e)
    }
}

/// Computes the alignment (exponent base and magnitude width) required by
/// a set of finite values; zeros are ignored. Returns `Ok(None)` when all
/// values are zero.
///
/// # Errors
///
/// Returns [`NonFiniteError`] if any value is NaN or infinite.
///
/// # Examples
///
/// ```
/// use memsci_numeric::align::analyze;
///
/// let a = analyze([1.0, 4.0].into_iter()).unwrap().unwrap();
/// // 4.0 tops out two bits above 1.0: 53 + 2 bits of magnitude.
/// assert_eq!(a.magnitude_bits, 55);
/// ```
pub fn analyze<I>(values: I) -> Result<Option<Alignment>, NonFiniteError>
where
    I: IntoIterator<Item = f64>,
{
    let mut err = None;
    let result = fold_alignment(
        values
            .into_iter()
            .map_while(|v| match FloatParts::decompose(v) {
                Ok(p) => Some(p),
                Err(e) => {
                    err = Some(e);
                    None
                }
            }),
    );
    match err {
        Some(e) => Err(e),
        None => Ok(result),
    }
}

/// [`analyze`] for data that may contain non-finite values: NaNs and
/// infinities are skipped rather than rejected, matching the fast
/// engine's per-apply vector scan (non-finite intermediates stay on the
/// digital path and never reach a crossbar).
pub fn analyze_lossy<I>(values: I) -> Option<Alignment>
where
    I: IntoIterator<Item = f64>,
{
    fold_alignment(
        values
            .into_iter()
            .filter_map(|v| FloatParts::decompose(v).ok()),
    )
}

/// The exponent-scan fold shared by [`analyze`] and [`analyze_lossy`]:
/// zeros are ignored; `None` when every value is zero.
fn fold_alignment(parts: impl Iterator<Item = FloatParts>) -> Option<Alignment> {
    let mut exp_min = i32::MAX;
    let mut top_max = i32::MIN;
    for p in parts {
        if let Some(top) = p.top_exponent() {
            exp_min = exp_min.min(p.exponent);
            top_max = top_max.max(top);
        }
    }
    if exp_min == i32::MAX {
        return None;
    }
    Some(Alignment {
        exp_base: exp_min,
        magnitude_bits: (top_max - exp_min + 1) as usize,
    })
}

/// A block of values converted to signed fixed point relative to a shared
/// exponent base: `values[i] × 2^exp_base` reconstructs each double
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AlignedSlice {
    exp_base: i32,
    magnitude_bits: usize,
    values: Vec<WideInt>,
}

impl AlignedSlice {
    /// Aligns a slice of finite doubles into at most `max_magnitude_bits`
    /// bits of signed fixed point.
    ///
    /// # Errors
    ///
    /// [`AlignError::NonFinite`] for NaN/infinity inputs and
    /// [`AlignError::RangeExceeded`] when the exponent range does not fit.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsci_numeric::align::{AlignedSlice, MAX_MAGNITUDE_BITS};
    ///
    /// let a = AlignedSlice::align(&[0.5, -2.0, 0.0], MAX_MAGNITUDE_BITS)?;
    /// assert_eq!(a.value(0), 0.5);
    /// assert_eq!(a.value(1), -2.0);
    /// assert_eq!(a.value(2), 0.0);
    /// # Ok::<(), memsci_numeric::align::AlignError>(())
    /// ```
    pub fn align(values: &[f64], max_magnitude_bits: usize) -> Result<Self, AlignError> {
        let mut out = AlignedSlice::default();
        out.align_into(values, max_magnitude_bits)?;
        Ok(out)
    }

    /// As [`Self::align`], but reusing `self`'s buffers — the outer
    /// vector and every element's limb storage — so repeated alignment
    /// of same-shaped inputs is allocation-free after warm-up. On error
    /// `self` may hold a partially written block; callers must treat it
    /// as garbage until the next successful call.
    ///
    /// # Errors
    ///
    /// [`AlignError::NonFinite`] for NaN/infinity inputs and
    /// [`AlignError::RangeExceeded`] when the exponent range does not fit.
    pub fn align_into(
        &mut self,
        values: &[f64],
        max_magnitude_bits: usize,
    ) -> Result<(), AlignError> {
        let alignment = analyze(values.iter().copied())?;
        let (exp_base, magnitude_bits) = match alignment {
            None => (0, 0),
            Some(a) => (a.exp_base, a.magnitude_bits),
        };
        if magnitude_bits > max_magnitude_bits {
            return Err(AlignError::RangeExceeded {
                required: magnitude_bits,
                max: max_magnitude_bits,
            });
        }
        self.exp_base = exp_base;
        self.magnitude_bits = magnitude_bits;
        self.values.truncate(values.len());
        while self.values.len() < values.len() {
            self.values.push(WideInt::zero());
        }
        for (slot, &v) in self.values.iter_mut().zip(values) {
            let p = FloatParts::decompose(v).map_err(AlignError::NonFinite)?;
            if p.is_zero() {
                slot.set_zero();
            } else {
                let shift = (p.exponent - exp_base) as u32;
                slot.assign_shl_u64(p.sign, p.mantissa, shift);
            }
        }
        Ok(())
    }

    /// Power-of-two weight of the fixed-point LSB.
    pub fn exp_base(&self) -> i32 {
        self.exp_base
    }

    /// Magnitude bits actually used by the widest element.
    pub fn magnitude_bits(&self) -> usize {
        self.magnitude_bits
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the slice holds no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The aligned fixed-point integers.
    pub fn integers(&self) -> &[WideInt] {
        &self.values
    }

    /// Exact reconstruction of element `i` as a double.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> f64 {
        self.values[i].to_f64_with_exp(self.exp_base, crate::Rounding::NearestEven)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_ignores_zeros() {
        let a = analyze([0.0, 1.0, 0.0]).unwrap().unwrap();
        assert_eq!(a.magnitude_bits, MANTISSA_BITS);
        assert_eq!(a.exp_base, -52);
    }

    #[test]
    fn analyze_all_zero_is_none() {
        assert_eq!(analyze([0.0, -0.0].into_iter()).unwrap(), None);
        assert_eq!(analyze(std::iter::empty()).unwrap(), None);
    }

    #[test]
    fn analyze_range() {
        // 1.0 (top 0) and 2^10 (top 10): range 10 -> 63 bits.
        let a = analyze([1.0, 1024.0]).unwrap().unwrap();
        assert_eq!(a.magnitude_bits, 63);
    }

    #[test]
    fn align_roundtrips_exactly() {
        let vals = [1.0, -0.375, 1e-3, 123456.789, 0.0, -7.25e4];
        let a = AlignedSlice::align(&vals, MAX_MAGNITUDE_BITS).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(a.value(i), v, "element {i}");
        }
        assert!(a.magnitude_bits() <= MAX_MAGNITUDE_BITS);
    }

    #[test]
    fn align_rejects_wide_range() {
        let err = AlignedSlice::align(&[1e-300, 1e300], MAX_MAGNITUDE_BITS).unwrap_err();
        match err {
            AlignError::RangeExceeded { required, max } => {
                assert!(required > max);
                assert_eq!(max, MAX_MAGNITUDE_BITS);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn align_rejects_nan() {
        assert!(matches!(
            AlignedSlice::align(&[1.0, f64::NAN], MAX_MAGNITUDE_BITS),
            Err(AlignError::NonFinite(_))
        ));
    }

    #[test]
    fn aligned_integers_share_base() {
        let a = AlignedSlice::align(&[1.5, 3.0], MAX_MAGNITUDE_BITS).unwrap();
        // 1.5 = 3 × 2^-1 -> mantissa 3<<51 at exp -52; 3.0 = 3<<52 at exp -52.
        assert_eq!(a.exp_base(), -52);
        assert_eq!(a.integers()[1], a.integers()[0].shl(1));
    }

    #[test]
    fn subnormals_align() {
        let vals = [5e-324, 1e-320];
        let a = AlignedSlice::align(&vals, MAX_MAGNITUDE_BITS).unwrap();
        assert_eq!(a.value(0), 5e-324);
        assert_eq!(a.value(1), 1e-320);
        assert_eq!(a.exp_base(), -1074);
    }

    #[test]
    fn align_into_reuse_matches_fresh_align() {
        let mut scratch = AlignedSlice::default();
        let blocks: [&[f64]; 4] = [
            &[1.0, -0.375, 1e-3, 123456.789, 0.0, -7.25e4],
            &[0.0, 0.0],
            &[5e-324, 1e-320, -2.5e-319],
            &[42.0],
        ];
        for vals in blocks {
            scratch.align_into(vals, MAX_MAGNITUDE_BITS).unwrap();
            let fresh = AlignedSlice::align(vals, MAX_MAGNITUDE_BITS).unwrap();
            assert_eq!(scratch, fresh);
        }
        // Errors still surface through the reusing path.
        assert!(scratch.align_into(&[f64::NAN], MAX_MAGNITUDE_BITS).is_err());
        assert!(matches!(
            scratch.align_into(&[1e-300, 1e300], MAX_MAGNITUDE_BITS),
            Err(AlignError::RangeExceeded { .. })
        ));
    }

    #[test]
    fn analyze_lossy_skips_non_finite() {
        let strict = analyze([1.0, 4.0]).unwrap().unwrap();
        let lossy = analyze_lossy([1.0, f64::NAN, 4.0, f64::INFINITY]).unwrap();
        assert_eq!(strict, lossy);
        assert_eq!(analyze_lossy([f64::NAN, 0.0]), None);
    }

    #[test]
    fn empty_slice_aligns() {
        let a = AlignedSlice::align(&[], MAX_MAGNITUDE_BITS).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.magnitude_bits(), 0);
    }
}
