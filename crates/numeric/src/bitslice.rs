//! Bit slicing of fixed-point operand blocks.
//!
//! A bit-sliced block stores, for every bit position `j`, the bitmap of
//! elements whose operand has bit `j` set (paper §II-A, Equation 1). The
//! matrix side is sliced from *biased unsigned* operands — one slice per
//! crossbar. The vector side is sliced from a *two's-complement*
//! representation whose most significant slice carries negative weight,
//! which lets signed vectors drive the row lines with plain binary
//! voltages while the reduction network subtracts the top slice.

use crate::wideint::WideInt;

/// A set of bit slices over a block of fixed-point operands.
///
/// Slice `j` is a bitmap over element indices; element `i`'s operand has
/// bit `j` set iff `get(j, i)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SliceSet {
    n: usize,
    width: usize,
    signed_msb: bool,
    words: Vec<Vec<u64>>,
}

impl SliceSet {
    /// Slices non-negative operands of at most `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or wider than `width` bits.
    pub fn from_unsigned(values: &[WideInt], width: usize) -> Self {
        let mut out = SliceSet::default();
        out.from_unsigned_into(values, width);
        out
    }

    /// As [`Self::from_unsigned`], reusing `self`'s slice bitmaps so
    /// repeated slicing of same-shaped blocks is allocation-free after
    /// warm-up.
    ///
    /// # Panics
    ///
    /// As [`Self::from_unsigned`].
    pub fn from_unsigned_into(&mut self, values: &[WideInt], width: usize) {
        self.reset(values.len(), width, false);
        for v in values {
            assert!(
                !v.is_negative(),
                "unsigned slice set given a negative value"
            );
            assert!(v.bit_len() <= width, "operand wider than the slice set");
        }
        self.fill_planes(values, width, |v, p| {
            v.magnitude_limbs().get(p).copied().unwrap_or(0)
        });
    }

    /// Slices signed operands in two's complement at `width` bits; the
    /// most significant slice has weight `-2^(width-1)`.
    ///
    /// # Panics
    ///
    /// Panics if any value lies outside `[-2^(width-1), 2^(width-1))`.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsci_numeric::bitslice::SliceSet;
    /// use memsci_numeric::WideInt;
    ///
    /// let s = SliceSet::from_twos_complement(&[WideInt::from(-1i64)], 4);
    /// // -1 is 0b1111 in 4-bit two's complement: every slice set.
    /// assert!((0..4).all(|j| s.get(j, 0)));
    /// assert_eq!(s.reconstruct(0), WideInt::from(-1i64));
    /// ```
    pub fn from_twos_complement(values: &[WideInt], width: usize) -> Self {
        let mut out = SliceSet::default();
        out.from_twos_complement_into(values, width);
        out
    }

    /// As [`Self::from_twos_complement`], reusing `self`'s slice bitmaps
    /// so repeated slicing of same-shaped blocks is allocation-free
    /// after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or any value lies outside
    /// `[-2^(width-1), 2^(width-1))`.
    pub fn from_twos_complement_into(&mut self, values: &[WideInt], width: usize) {
        assert!(width >= 1, "two's complement needs at least the sign bit");
        self.reset(values.len(), width, true);
        for v in values {
            // In range iff |v| < 2^(width-1), or v == -2^(width-1).
            let in_range = v.bit_len() < width
                || (v.is_negative() && v.bit_len() == width && v.count_ones() == 1);
            assert!(
                in_range,
                "value out of two's-complement range for width {width}"
            );
        }
        self.fill_planes(values, width, twos_complement_limb);
    }

    /// Clears and reshapes the slice bitmaps for `n` elements × `width`
    /// slices, reusing existing allocations.
    fn reset(&mut self, n: usize, width: usize, signed_msb: bool) {
        let words_per_slice = n.div_ceil(64);
        self.n = n;
        self.width = width;
        self.signed_msb = signed_msb;
        self.words.truncate(width);
        while self.words.len() < width {
            self.words.push(Vec::new());
        }
        for slice in &mut self.words {
            slice.clear();
            slice.resize(words_per_slice, 0);
        }
    }

    /// Populates the slice bitmaps by word-wise 64×64 bit-matrix
    /// transposition: for each aligned block of 64 elements and each
    /// 64-bit limb plane, gather one limb per element (via `limb_of`,
    /// which sees the plane index `p` covering bits `64p..64p+63`),
    /// transpose the block in registers, and store whole bitmap words —
    /// instead of testing `width × n` individual bits.
    fn fill_planes(
        &mut self,
        values: &[WideInt],
        width: usize,
        limb_of: impl Fn(&WideInt, usize) -> u64,
    ) {
        let planes = width.div_ceil(64);
        let mut block = [0u64; 64];
        for (w, chunk) in values.chunks(64).enumerate() {
            for p in 0..planes {
                for (e, v) in chunk.iter().enumerate() {
                    block[e] = limb_of(v, p);
                }
                block[chunk.len()..].fill(0);
                transpose64(&mut block);
                let j_end = (width - p * 64).min(64);
                for (j, &bits) in block[..j_end].iter().enumerate() {
                    self.words[p * 64 + j][w] = bits;
                }
            }
        }
    }

    /// Number of elements in the block.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the block holds no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of bit slices.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the most significant slice carries negative weight.
    pub fn signed_msb(&self) -> bool {
        self.signed_msb
    }

    /// Whether slice `j`'s weight is negative (`-2^j`).
    pub fn weight_is_negative(&self, j: usize) -> bool {
        self.signed_msb && j + 1 == self.width
    }

    /// The bitmap words of slice `j` (little-endian element order).
    ///
    /// # Panics
    ///
    /// Panics if `j >= width`.
    pub fn slice_words(&self, j: usize) -> &[u64] {
        &self.words[j]
    }

    /// Bit `j` of element `i`'s operand.
    pub fn get(&self, j: usize, i: usize) -> bool {
        (self.words[j][i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of elements with bit `j` set.
    pub fn popcount(&self, j: usize) -> u64 {
        self.words[j]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Reconstructs element `i`'s operand from its slices (test oracle).
    pub fn reconstruct(&self, i: usize) -> WideInt {
        let mut v = WideInt::zero();
        for j in 0..self.width {
            if self.get(j, i) {
                let w = WideInt::pow2(j);
                if self.weight_is_negative(j) {
                    v -= &w;
                } else {
                    v += &w;
                }
            }
        }
        v
    }
}

/// Limb `p` of `v`'s infinite-width two's-complement encoding.
///
/// For a negative value with normalized magnitude limbs `mag`, the
/// two's complement is `!mag + 1`: every limb below the lowest nonzero
/// magnitude limb stays zero (the +1 carry rides through them), the
/// lowest nonzero limb becomes its wrapping negation (absorbing the
/// carry), and every limb above is bitwise inverted — with the all-ones
/// sign extension falling out of inverting implicit zero limbs. Callers
/// only read planes below `width`, which matches encoding at
/// `2^width + v` because `(-m) mod 2^width = 2^width - m`.
fn twos_complement_limb(v: &WideInt, p: usize) -> u64 {
    let mag = v.magnitude_limbs();
    if !v.is_negative() {
        return mag.get(p).copied().unwrap_or(0);
    }
    let nz = mag
        .iter()
        .position(|&l| l != 0)
        .expect("negative WideInt has a nonzero magnitude limb");
    match p.cmp(&nz) {
        std::cmp::Ordering::Less => 0,
        std::cmp::Ordering::Equal => mag[p].wrapping_neg(),
        std::cmp::Ordering::Greater => !mag.get(p).copied().unwrap_or(0),
    }
}

/// In-place transpose of a 64×64 bit matrix stored row-major, with bit
/// `c` of `a[r]` holding element `(r, c)` (Hacker's Delight §7-3,
/// recursive block swap). Afterwards bit `r` of `a[c]` holds what bit
/// `c` of `a[r]` held.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i64) -> WideInt {
        WideInt::from(v)
    }

    #[test]
    fn unsigned_slices_reconstruct() {
        let vals = [w(0), w(1), w(5), w(127), w(64)];
        let s = SliceSet::from_unsigned(&vals, 7);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&s.reconstruct(i), v, "element {i}");
        }
    }

    #[test]
    fn twos_complement_reconstructs_signed() {
        let vals = [w(0), w(1), w(-1), w(7), w(-8), w(3)];
        let s = SliceSet::from_twos_complement(&vals, 4);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&s.reconstruct(i), v, "element {i}");
        }
        assert!(s.signed_msb());
        assert!(s.weight_is_negative(3));
        assert!(!s.weight_is_negative(2));
    }

    #[test]
    #[should_panic(expected = "out of two's-complement range")]
    fn twos_complement_rejects_overflow() {
        SliceSet::from_twos_complement(&[w(8)], 4);
    }

    #[test]
    #[should_panic(expected = "negative value")]
    fn unsigned_rejects_negative() {
        SliceSet::from_unsigned(&[w(-1)], 4);
    }

    #[test]
    fn twos_complement_into_reuse_matches_fresh() {
        let mut scratch = SliceSet::default();
        let blocks: [(&[i64], usize); 4] = [
            (&[0, 1, -1, 7, -8, 3], 4),
            (&[5, -5], 5),
            (&[], 3),
            (&[-1, -1, -1], 2),
        ];
        for (vals, width) in blocks {
            let vals: Vec<WideInt> = vals.iter().map(|&v| w(v)).collect();
            scratch.from_twos_complement_into(&vals, width);
            assert_eq!(scratch, SliceSet::from_twos_complement(&vals, width));
        }
    }

    #[test]
    fn popcounts_count_set_bits() {
        let vals = [w(0b01), w(0b11), w(0b10)];
        let s = SliceSet::from_unsigned(&vals, 2);
        assert_eq!(s.popcount(0), 2);
        assert_eq!(s.popcount(1), 2);
    }

    #[test]
    fn transpose64_is_a_transpose() {
        // Pseudorandom but deterministic matrix via an LCG.
        let mut a = [0u64; 64];
        let mut s = 0x243F_6A88_85A3_08D3u64;
        for r in a.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *r = s;
        }
        let orig = a;
        transpose64(&mut a);
        for (r, &row) in orig.iter().enumerate() {
            for (c, &col) in a.iter().enumerate() {
                assert_eq!((col >> r) & 1, (row >> c) & 1, "({r},{c})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "transpose is an involution");
    }

    #[test]
    fn transposed_slicing_matches_per_bit_oracle() {
        // Cross a 64-element block boundary and a 64-bit plane boundary
        // so every branch of the word-wise path is exercised, and check
        // each slice bit against WideInt::bit / the encoding identity.
        let width = 130usize;
        let vals: Vec<WideInt> = (0..150i64)
            .map(|i| {
                let base = WideInt::pow2((i as usize * 7) % (width - 1));
                let v = &base + &w(i * 31 - 900);
                if i % 3 == 0 {
                    w(0) - &v
                } else {
                    v
                }
            })
            .collect();
        let s = SliceSet::from_twos_complement(&vals, width);
        let two_w = WideInt::pow2(width);
        for (i, v) in vals.iter().enumerate() {
            let enc = if v.is_negative() {
                &two_w + v
            } else {
                v.clone()
            };
            for j in 0..width {
                assert_eq!(s.get(j, i), enc.bit(j), "element {i} bit {j}");
            }
            assert_eq!(&s.reconstruct(i), v, "element {i}");
        }
        let u: Vec<WideInt> = vals
            .iter()
            .map(|v| if v.is_negative() { w(0) - v } else { v.clone() })
            .collect();
        let su = SliceSet::from_unsigned(&u, width);
        for (i, v) in u.iter().enumerate() {
            for j in 0..width {
                assert_eq!(su.get(j, i), v.bit(j), "unsigned element {i} bit {j}");
            }
        }
    }

    #[test]
    fn unsigned_into_reuse_matches_fresh() {
        let mut scratch = SliceSet::default();
        let blocks: [(&[i64], usize); 4] = [
            (&[0, 1, 5, 127], 7),
            (&[9, 2], 5),
            (&[], 3),
            (&[1, 1, 1], 2),
        ];
        for (vals, width) in blocks {
            let vals: Vec<WideInt> = vals.iter().map(|&v| w(v)).collect();
            scratch.from_unsigned_into(&vals, width);
            assert_eq!(scratch, SliceSet::from_unsigned(&vals, width));
        }
    }

    #[test]
    fn wide_blocks_span_multiple_words() {
        let vals: Vec<WideInt> = (0..130).map(|i| w(i % 2)).collect();
        let s = SliceSet::from_unsigned(&vals, 1);
        assert_eq!(s.popcount(0), 65);
        assert_eq!(s.slice_words(0).len(), 3);
        assert!(s.get(0, 1));
        assert!(!s.get(0, 128));
        assert!(s.get(0, 129));
    }
}
