//! Bit slicing of fixed-point operand blocks.
//!
//! A bit-sliced block stores, for every bit position `j`, the bitmap of
//! elements whose operand has bit `j` set (paper §II-A, Equation 1). The
//! matrix side is sliced from *biased unsigned* operands — one slice per
//! crossbar. The vector side is sliced from a *two's-complement*
//! representation whose most significant slice carries negative weight,
//! which lets signed vectors drive the row lines with plain binary
//! voltages while the reduction network subtracts the top slice.

use crate::wideint::WideInt;

/// A set of bit slices over a block of fixed-point operands.
///
/// Slice `j` is a bitmap over element indices; element `i`'s operand has
/// bit `j` set iff `get(j, i)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SliceSet {
    n: usize,
    width: usize,
    signed_msb: bool,
    words: Vec<Vec<u64>>,
}

impl SliceSet {
    /// Slices non-negative operands of at most `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or wider than `width` bits.
    pub fn from_unsigned(values: &[WideInt], width: usize) -> Self {
        let n = values.len();
        let words_per_slice = n.div_ceil(64);
        let mut words = vec![vec![0u64; words_per_slice]; width];
        for (i, v) in values.iter().enumerate() {
            assert!(
                !v.is_negative(),
                "unsigned slice set given a negative value"
            );
            assert!(v.bit_len() <= width, "operand wider than the slice set");
            for (j, slice) in words.iter_mut().enumerate() {
                if v.bit(j) {
                    slice[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        SliceSet {
            n,
            width,
            signed_msb: false,
            words,
        }
    }

    /// Slices signed operands in two's complement at `width` bits; the
    /// most significant slice has weight `-2^(width-1)`.
    ///
    /// # Panics
    ///
    /// Panics if any value lies outside `[-2^(width-1), 2^(width-1))`.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsci_numeric::bitslice::SliceSet;
    /// use memsci_numeric::WideInt;
    ///
    /// let s = SliceSet::from_twos_complement(&[WideInt::from(-1i64)], 4);
    /// // -1 is 0b1111 in 4-bit two's complement: every slice set.
    /// assert!((0..4).all(|j| s.get(j, 0)));
    /// assert_eq!(s.reconstruct(0), WideInt::from(-1i64));
    /// ```
    pub fn from_twos_complement(values: &[WideInt], width: usize) -> Self {
        let mut out = SliceSet::default();
        out.from_twos_complement_into(values, width);
        out
    }

    /// As [`Self::from_twos_complement`], reusing `self`'s slice bitmaps
    /// so repeated slicing of same-shaped blocks is allocation-free
    /// after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or any value lies outside
    /// `[-2^(width-1), 2^(width-1))`.
    pub fn from_twos_complement_into(&mut self, values: &[WideInt], width: usize) {
        assert!(width >= 1, "two's complement needs at least the sign bit");
        let n = values.len();
        let words_per_slice = n.div_ceil(64);
        self.n = n;
        self.width = width;
        self.signed_msb = true;
        self.words.truncate(width);
        while self.words.len() < width {
            self.words.push(Vec::new());
        }
        for slice in &mut self.words {
            slice.clear();
            slice.resize(words_per_slice, 0);
        }
        let mut enc = WideInt::zero();
        for (i, v) in values.iter().enumerate() {
            // In range iff |v| < 2^(width-1), or v == -2^(width-1).
            let in_range = v.bit_len() < width
                || (v.is_negative() && v.bit_len() == width && v.count_ones() == 1);
            assert!(
                in_range,
                "value out of two's-complement range for width {width}"
            );
            let src: &WideInt = if v.is_negative() {
                // enc = 2^width + v, computed in enc's reused buffer.
                enc.set_zero();
                enc.add_shl_u64_assign(1, width as u32, false);
                enc.add_shl_assign(v, 0, false);
                &enc
            } else {
                v
            };
            for (j, slice) in self.words.iter_mut().enumerate() {
                if src.bit(j) {
                    slice[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
    }

    /// Number of elements in the block.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the block holds no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of bit slices.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the most significant slice carries negative weight.
    pub fn signed_msb(&self) -> bool {
        self.signed_msb
    }

    /// Whether slice `j`'s weight is negative (`-2^j`).
    pub fn weight_is_negative(&self, j: usize) -> bool {
        self.signed_msb && j + 1 == self.width
    }

    /// The bitmap words of slice `j` (little-endian element order).
    ///
    /// # Panics
    ///
    /// Panics if `j >= width`.
    pub fn slice_words(&self, j: usize) -> &[u64] {
        &self.words[j]
    }

    /// Bit `j` of element `i`'s operand.
    pub fn get(&self, j: usize, i: usize) -> bool {
        (self.words[j][i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of elements with bit `j` set.
    pub fn popcount(&self, j: usize) -> u64 {
        self.words[j]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Reconstructs element `i`'s operand from its slices (test oracle).
    pub fn reconstruct(&self, i: usize) -> WideInt {
        let mut v = WideInt::zero();
        for j in 0..self.width {
            if self.get(j, i) {
                let w = WideInt::pow2(j);
                if self.weight_is_negative(j) {
                    v -= &w;
                } else {
                    v += &w;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i64) -> WideInt {
        WideInt::from(v)
    }

    #[test]
    fn unsigned_slices_reconstruct() {
        let vals = [w(0), w(1), w(5), w(127), w(64)];
        let s = SliceSet::from_unsigned(&vals, 7);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&s.reconstruct(i), v, "element {i}");
        }
    }

    #[test]
    fn twos_complement_reconstructs_signed() {
        let vals = [w(0), w(1), w(-1), w(7), w(-8), w(3)];
        let s = SliceSet::from_twos_complement(&vals, 4);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&s.reconstruct(i), v, "element {i}");
        }
        assert!(s.signed_msb());
        assert!(s.weight_is_negative(3));
        assert!(!s.weight_is_negative(2));
    }

    #[test]
    #[should_panic(expected = "out of two's-complement range")]
    fn twos_complement_rejects_overflow() {
        SliceSet::from_twos_complement(&[w(8)], 4);
    }

    #[test]
    #[should_panic(expected = "negative value")]
    fn unsigned_rejects_negative() {
        SliceSet::from_unsigned(&[w(-1)], 4);
    }

    #[test]
    fn twos_complement_into_reuse_matches_fresh() {
        let mut scratch = SliceSet::default();
        let blocks: [(&[i64], usize); 4] = [
            (&[0, 1, -1, 7, -8, 3], 4),
            (&[5, -5], 5),
            (&[], 3),
            (&[-1, -1, -1], 2),
        ];
        for (vals, width) in blocks {
            let vals: Vec<WideInt> = vals.iter().map(|&v| w(v)).collect();
            scratch.from_twos_complement_into(&vals, width);
            assert_eq!(scratch, SliceSet::from_twos_complement(&vals, width));
        }
    }

    #[test]
    fn popcounts_count_set_bits() {
        let vals = [w(0b01), w(0b11), w(0b10)];
        let s = SliceSet::from_unsigned(&vals, 2);
        assert_eq!(s.popcount(0), 2);
        assert_eq!(s.popcount(1), 2);
    }

    #[test]
    fn wide_blocks_span_multiple_words() {
        let vals: Vec<WideInt> = (0..130).map(|i| w(i % 2)).collect();
        let s = SliceSet::from_unsigned(&vals, 1);
        assert_eq!(s.popcount(0), 65);
        assert_eq!(s.slice_words(0).len(), 3);
        assert!(s.get(0, 1));
        assert!(!s.get(0, 128));
        assert!(s.get(0, 129));
    }
}
