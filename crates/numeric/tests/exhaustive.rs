//! Exhaustive small-width verification: for every value in a small
//! domain, the wide-integer machinery must agree with straightforward
//! 64-bit reference computations.

use memsci_numeric::align::AlignedSlice;
use memsci_numeric::bias::{debias_partial, BiasedSlice};
use memsci_numeric::bitslice::SliceSet;
use memsci_numeric::running_sum::{regions_nonneg, settled_nonneg, settled_nonneg_remaining};
use memsci_numeric::{Rounding, WideInt};

/// Reference rounding of a u32 to `bits` significant bits.
fn round_ref(v: u32, bits: u32, mode: Rounding) -> (u64, i64) {
    if v == 0 {
        return (0, 0);
    }
    let bl = 32 - v.leading_zeros();
    if bl <= bits {
        let shift = bits - bl;
        return (u64::from(v) << shift, -i64::from(shift));
    }
    let shift = bl - bits;
    let kept = u64::from(v >> shift);
    let dropped = u64::from(v) & ((1u64 << shift) - 1);
    let guard = dropped >> (shift - 1) & 1 == 1;
    let sticky = dropped & ((1u64 << (shift - 1)) - 1) != 0;
    let inc = match mode {
        Rounding::TowardZero | Rounding::TowardNegInf => false,
        Rounding::TowardPosInf => guard || sticky,
        Rounding::NearestEven => guard && (sticky || kept & 1 == 1),
    };
    let mut m = kept + u64::from(inc);
    let mut exp = i64::from(shift);
    if m == 1u64 << bits {
        m >>= 1;
        exp += 1;
    }
    (m, exp)
}

/// Every 16-bit value, every precision 1..=8, every mode: canonical
/// rounding matches the reference.
#[test]
fn round_to_precision_exhaustive_16bit() {
    for v in 0u32..=u16::MAX as u32 {
        let w = WideInt::from(u64::from(v));
        for bits in 1..=8u32 {
            for mode in Rounding::ALL {
                let r = w.round_to_precision(bits, mode);
                let (m, e) = round_ref(v, bits, mode);
                assert_eq!(
                    (r.neg, r.mantissa, r.exp),
                    (false, m, e),
                    "v={v} bits={bits} mode={mode:?}"
                );
            }
        }
    }
}

/// Every pair of signed 8-bit values through add/sub/mul/shift.
#[test]
fn arithmetic_exhaustive_8bit() {
    for a in -128i64..=127 {
        let wa = WideInt::from(a);
        for b in -128i64..=127 {
            let wb = WideInt::from(b);
            assert_eq!((&wa + &wb).to_i128().unwrap(), i128::from(a + b));
            assert_eq!((&wa - &wb).to_i128().unwrap(), i128::from(a - b));
            assert_eq!((&wa * &wb).to_i128().unwrap(), i128::from(a * b));
        }
        for k in 0..8u32 {
            assert_eq!(wa.shr_floor(k).to_i128().unwrap(), i128::from(a >> k));
            assert_eq!(wa.shl(k).to_i128().unwrap(), i128::from(a << k));
        }
    }
}

/// Exhaustive region soundness: for every 12-bit running sum and a grid
/// of (next weight, partial width) configurations, whenever the paper's
/// region method declares the mantissa settled, adding ANY admissible
/// remaining contribution leaves the rounded mantissa unchanged.
#[test]
fn region_termination_exhaustive_12bit() {
    let precision = 4u32;
    for sum in 0u64..(1 << 12) {
        let w = WideInt::from(sum);
        for (next_w, pm) in [(0u32, 2u32), (1, 2), (0, 3)] {
            if !settled_nonneg(&w, next_w, pm, precision) {
                continue;
            }
            let before = w.round_to_precision(precision, Rounding::TowardNegInf);
            // The remaining contributions sum to at most
            // sum_{k<=next_w} (2^pm - 1) * 2^k < 2^(next_w + pm + 1).
            let bound = ((1u64 << pm) - 1) * ((1u64 << (next_w + 1)) - 1);
            for r in 0..=bound {
                let after =
                    WideInt::from(sum + r).round_to_precision(precision, Rounding::TowardNegInf);
                assert_eq!(before, after, "sum={sum:#b} next_w={next_w} pm={pm} r={r}");
            }
            // Cross-check the region decomposition invariants.
            let regions = regions_nonneg(&w, next_w, pm);
            assert!(!w.bit(regions.barrier), "barrier must be a zero bit");
            assert!(settled_nonneg_remaining(
                &w,
                next_w + pm + 1,
                precision,
                Rounding::TowardNegInf
            ));
        }
    }
}

/// Exhaustive bias/debias over all 6-bit signed blocks of length 3 with
/// all 8 vector slices.
#[test]
fn bias_debias_exhaustive() {
    for a0 in -4i64..4 {
        for a1 in -4i64..4 {
            for a2 in -4i64..4 {
                let vals = [a0 as f64, a1 as f64, a2 as f64];
                let aligned = AlignedSlice::align(&vals, 117).unwrap();
                let biased = BiasedSlice::from_aligned(&aligned);
                let slices = SliceSet::from_unsigned(biased.values(), biased.operand_bits());
                for mask in 0u32..8 {
                    let mut raw = WideInt::zero();
                    let mut pop = 0u64;
                    let mut want = 0f64;
                    for (i, v) in biased.values().iter().enumerate() {
                        if mask >> i & 1 == 1 {
                            raw += v;
                            pop += 1;
                            want += vals[i];
                        }
                    }
                    let got = debias_partial(&raw, biased.bias_bit(), pop);
                    let want_int = aligned
                        .integers()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .fold(WideInt::zero(), |acc, (_, v)| acc + v);
                    assert_eq!(got, want_int, "vals={vals:?} mask={mask:03b}");
                    let _ = want;
                    // Slices reconstruct the stored operands.
                    for i in 0..3 {
                        assert_eq!(slices.reconstruct(i), biased.values()[i]);
                    }
                }
            }
        }
    }
}
