//! Property-based tests for the numeric substrate.
//!
//! The centerpiece is `bit_sliced_dot_product_matches_exact`, which runs
//! the full floating-point-on-fixed-point pipeline the way a cluster
//! does — alignment, biasing, two's-complement vector slicing,
//! MSB-first accumulation with early termination, AN coding — and checks
//! the result against an exact wide-integer dot product rounded toward
//! negative infinity.

use memsci_numeric::align::AlignedSlice;
use memsci_numeric::bias::{debias_partial, BiasedSlice};
use memsci_numeric::bitslice::SliceSet;
use memsci_numeric::running_sum::{remaining_bound_bit, settled};
use memsci_numeric::{AnCode, FloatParts, Rounded, Rounding, WideInt};
use proptest::prelude::*;

fn wideint_strategy() -> impl Strategy<Value = (WideInt, i128)> {
    any::<i128>().prop_map(|v| {
        let v = v >> 8; // keep headroom for arithmetic in i128
        (WideInt::from(v), v)
    })
}

/// Small doubles with a bounded exponent range, as produced by physical
/// models (paper §IV-B: exponent range locality).
fn small_double() -> impl Strategy<Value = f64> {
    (any::<bool>(), 1u64..(1 << 53), -24i32..24).prop_map(|(neg, m, e)| {
        let v = (m as f64) * (2.0f64).powi(e - 52);
        if neg {
            -v
        } else {
            v
        }
    })
}

proptest! {
    #[test]
    fn add_matches_i128((a, ai) in wideint_strategy(), (b, bi) in wideint_strategy()) {
        prop_assert_eq!(&a + &b, WideInt::from(ai + bi));
        prop_assert_eq!(&a - &b, WideInt::from(ai - bi));
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let p = WideInt::from(a) * WideInt::from(b);
        prop_assert_eq!(p, WideInt::from(i128::from(a) * i128::from(b)));
    }

    #[test]
    fn shifts_match_floor((a, ai) in wideint_strategy(), k in 0u32..40) {
        prop_assert_eq!(a.shr_floor(k), WideInt::from(ai >> k));
        prop_assert_eq!(a.shl(k).shr_floor(k), a.clone());
    }

    #[test]
    fn ordering_matches_i128((a, ai) in wideint_strategy(), (b, bi) in wideint_strategy()) {
        prop_assert_eq!(a.cmp(&b), ai.cmp(&bi));
    }

    #[test]
    fn decimal_display_matches_i128((a, ai) in wideint_strategy()) {
        prop_assert_eq!(a.to_string(), ai.to_string());
    }

    #[test]
    fn float_decompose_roundtrips(x in any::<f64>()) {
        prop_assume!(x.is_finite());
        let p = FloatParts::decompose(x).unwrap();
        prop_assert_eq!(p.value().to_bits(), x.to_bits());
    }

    #[test]
    fn to_f64_nearest_matches_reference(m in 1u64..u64::MAX, e in -100i32..100) {
        // Reference: f64 conversion of m (correctly rounded) then exact
        // power-of-two scaling.
        let v = WideInt::from(m);
        let got = v.to_f64_with_exp(e, Rounding::NearestEven);
        let want = (m as f64) * (2.0f64).powi(e);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rounding_modes_bracket_the_value(m in 1u64..u64::MAX, e in -80i32..80, neg in any::<bool>()) {
        let v = if neg { -WideInt::from(m) } else { WideInt::from(m) };
        let down = v.to_f64_with_exp(e, Rounding::TowardNegInf);
        let up = v.to_f64_with_exp(e, Rounding::TowardPosInf);
        let near = v.to_f64_with_exp(e, Rounding::NearestEven);
        let toward_zero = v.to_f64_with_exp(e, Rounding::TowardZero);
        prop_assert!(down <= up);
        prop_assert!(down <= near && near <= up);
        prop_assert!(toward_zero == down || toward_zero == up);
        prop_assert!(toward_zero.abs() <= down.abs().max(up.abs()));
    }

    #[test]
    fn alignment_roundtrips(vals in prop::collection::vec(small_double(), 0..20)) {
        let a = AlignedSlice::align(&vals, 117).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(a.value(i), v);
        }
    }

    #[test]
    fn bias_then_debias_recovers_partials(
        vals in prop::collection::vec(small_double(), 1..16),
        mask in any::<u16>(),
    ) {
        let a = AlignedSlice::align(&vals, 117).unwrap();
        let b = BiasedSlice::from_aligned(&a);
        // Apply an arbitrary binary "vector slice" to the biased block.
        let mut raw = WideInt::zero();
        let mut pop = 0u64;
        let mut want = WideInt::zero();
        for (i, v) in b.values().iter().enumerate() {
            if (mask >> (i % 16)) & 1 == 1 {
                raw += v;
                pop += 1;
                want += &a.integers()[i];
            }
        }
        prop_assert_eq!(debias_partial(&raw, b.bias_bit(), pop), want);
    }

    #[test]
    fn slices_reconstruct_signed_values(
        vals in prop::collection::vec(-(1i64 << 40)..(1i64 << 40), 1..24),
    ) {
        let ints: Vec<WideInt> = vals.iter().map(|&v| WideInt::from(v)).collect();
        let s = SliceSet::from_twos_complement(&ints, 42);
        for (i, v) in ints.iter().enumerate() {
            prop_assert_eq!(&s.reconstruct(i), v);
        }
    }

    #[test]
    fn an_code_corrects_random_single_errors(
        v in any::<u64>(),
        j in 0usize..100,
        neg in any::<bool>(),
    ) {
        let code = AnCode::default();
        let value = WideInt::from(v);
        let word = code.encode(&value);
        let err = WideInt::pow2(j);
        let word = if neg { &word - &err } else { &word + &err };
        let d = code.decode(&word).unwrap();
        prop_assert_eq!(d.value, value);
        prop_assert_eq!(d.correction, Some((j, neg)));
    }

    /// Fault-subsystem guarantee: encode → flip one random bit →
    /// decode, over random value widths and flip positions. The flip is
    /// either corrected exactly (positions inside the protected window)
    /// or reported — as a correction flag or an uncorrectable error —
    /// and never silently accepted as a clean word with a wrong value.
    #[test]
    fn an_code_never_silently_accepts_a_flip(
        v in any::<u64>(),
        width_shift in 0u32..60,
        j in 0usize..300,
        neg in any::<bool>(),
    ) {
        let code = AnCode::default();
        let value = WideInt::from(v >> width_shift); // vary the value width
        let word = code.encode(&value);
        let err = WideInt::pow2(j);
        let flipped = if neg { &word - &err } else { &word + &err };
        // An `Err` decode is a detected-and-reported flip, not silent.
        if let Ok(d) = code.decode(&flipped) {
            if j < code.max_bits() {
                // Inside the protected window the flip is undone
                // exactly and attributed to the right position.
                prop_assert_eq!(&d.value, &value);
                prop_assert_eq!(d.correction, Some((j, neg)));
            } else {
                // Outside the window a decode may land on another
                // codeword, but only via a *reported* miscorrection
                // — the flag still tells the platform the word was
                // damaged. A clean decode must return the original.
                if d.correction.is_none() {
                    prop_assert_eq!(&d.value, &value);
                }
            }
        }
    }

    /// The full pipeline: an early-terminated, bit-sliced, biased,
    /// AN-protected dot product equals the exact dot product rounded
    /// toward negative infinity to a 53-bit mantissa.
    #[test]
    fn bit_sliced_dot_product_matches_exact(
        pairs in prop::collection::vec((small_double(), small_double()), 1..32),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let x: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let (got, slices_used, total_slices) = pipeline_dot(&a, &x);
        let want = exact_dot_floor(&a, &x);
        prop_assert_eq!(got, want);
        prop_assert!(slices_used <= total_slices);
    }
}

/// Exact dot product of two f64 slices, rounded toward −∞ to a 53-bit
/// mantissa, returned canonically.
fn exact_dot_floor(a: &[f64], x: &[f64]) -> Rounded {
    let mut terms = Vec::new();
    let mut min_exp = i32::MAX;
    for (&ai, &xi) in a.iter().zip(x) {
        let pa = FloatParts::decompose(ai).unwrap();
        let px = FloatParts::decompose(xi).unwrap();
        if pa.is_zero() || px.is_zero() {
            continue;
        }
        let prod = pa.signed_mantissa() * px.signed_mantissa();
        let exp = pa.exponent + px.exponent;
        min_exp = min_exp.min(exp);
        terms.push((prod, exp));
    }
    let mut sum = WideInt::zero();
    for (prod, exp) in terms {
        sum += &prod.shl((exp - min_exp) as u32);
    }
    let r = sum.round_to_precision(53, Rounding::TowardNegInf);
    if r.mantissa == 0 {
        return Rounded::zero();
    }
    Rounded {
        neg: r.neg,
        mantissa: r.mantissa,
        exp: r.exp + i64::from(min_exp),
    }
}

/// Simulates the cluster pipeline in software: returns the rounded
/// result, the number of vector slices actually consumed, and the total
/// number of vector slices.
fn pipeline_dot(a: &[f64], x: &[f64]) -> (Rounded, usize, usize) {
    let a_al = AlignedSlice::align(a, 117).unwrap();
    let x_al = AlignedSlice::align(x, 117).unwrap();
    let biased = BiasedSlice::from_aligned(&a_al);
    let code = AnCode::default();
    // Encode the stored operands with the AN code, as the crossbars do.
    let stored: Vec<WideInt> = biased.values().iter().map(|v| code.encode(v)).collect();
    let xw = x_al.magnitude_bits() + 1; // two's-complement width
    let xs = SliceSet::from_twos_complement(x_al.integers(), xw);
    // Partial dot products are bounded by n × 2^(bias_bit + 1).
    let n_bits = WideInt::from(a.len() as u64).bit_len() as u32;
    let pm = biased.operand_bits() as u32 + n_bits;
    let mut sum = WideInt::zero();
    let mut used = 0usize;
    for k in (0..xw).rev() {
        used += 1;
        // "Analog" partial product of the AN-encoded biased operands.
        let mut raw = WideInt::zero();
        let mut pop = 0u64;
        for (i, s) in stored.iter().enumerate().take(a.len()) {
            if xs.get(k, i) {
                raw += s;
                pop += 1;
            }
        }
        // AN check (no injected errors here) and decode.
        let decoded = code.decode(&raw).unwrap();
        assert_eq!(decoded.correction, None);
        let partial = debias_partial(&decoded.value, biased.bias_bit(), pop);
        let term = partial.shl(k as u32);
        if xs.weight_is_negative(k) {
            sum -= &term;
        } else {
            sum += &term;
        }
        if k > 0
            && settled(
                &sum,
                remaining_bound_bit(k as u32 - 1, pm),
                53,
                Rounding::TowardNegInf,
            )
        {
            break;
        }
    }
    let r = sum.round_to_precision(53, Rounding::TowardNegInf);
    // The fixed-point LSB carries weight 2^(a_base + x_base); fold it in
    // by adjusting the canonical exponent.
    let r = if r.mantissa == 0 {
        Rounded::zero()
    } else {
        Rounded {
            neg: r.neg,
            mantissa: r.mantissa,
            exp: r.exp + i64::from(a_al.exp_base()) + i64::from(x_al.exp_base()),
        }
    };
    (r, used, xw)
}
