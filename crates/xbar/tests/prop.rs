//! Property-based tests for the crossbar cluster: exactness of in-situ
//! dot products over randomized blocks, vectors, and configurations.

use memsci_numeric::{FloatParts, Rounding, WideInt};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions, MvmScratch};
use memsci_xbar::schedule::{plan, Policy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact dot product rounded toward −∞ to 53 bits.
fn exact_dot_floor(pairs: &[(f64, f64)]) -> f64 {
    let mut min_exp = i32::MAX;
    let mut terms = Vec::new();
    for &(a, x) in pairs {
        let pa = FloatParts::decompose(a).unwrap();
        let px = FloatParts::decompose(x).unwrap();
        if pa.is_zero() || px.is_zero() {
            continue;
        }
        terms.push((
            pa.signed_mantissa() * px.signed_mantissa(),
            pa.exponent + px.exponent,
        ));
        min_exp = min_exp.min(pa.exponent + px.exponent);
    }
    let mut sum = WideInt::zero();
    for (m, e) in terms {
        sum += &m.shl((e - min_exp) as u32);
    }
    sum.to_f64_with_exp(min_exp, Rounding::TowardNegInf)
}

fn small_double() -> impl Strategy<Value = f64> {
    (any::<bool>(), 1u64..(1 << 50), -18i32..18).prop_map(|(neg, m, e)| {
        let v = (m as f64) * (2.0f64).powi(e - 40);
        if neg {
            -v
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized blocks on randomized vectors: the cluster's output is
    /// exactly the floor-rounded dot product for every row the CIC did
    /// not evict.
    #[test]
    fn random_clusters_compute_exact_dots(
        entries in prop::collection::vec((0u16..8, 0u16..8, small_double()), 1..40),
        xs in prop::collection::vec(small_double(), 8),
        seed in any::<u64>(),
    ) {
        // Deduplicate positions (last write wins, like dense assembly).
        let mut grid = [[None::<f64>; 8]; 8];
        for &(r, c, v) in &entries {
            grid[r as usize][c as usize] = Some(v);
        }
        let block: Vec<(u16, u16, f64)> = (0..8)
            .flat_map(|r| (0..8).filter_map(move |c| grid[r][c].map(|v| (r as u16, c as u16, v))))
            .collect();
        prop_assume!(!block.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = ClusterSpec { size: 8, ..Default::default() };
        let outcome = Cluster::program(spec, &block, &mut rng).unwrap();
        let res = outcome.cluster.mvm(&xs, &MvmOptions::default(), &mut rng).unwrap();
        for r in 0..8usize {
            if outcome.evicted.iter().any(|&(er, _, _)| er as usize == r) {
                continue;
            }
            let pairs: Vec<(f64, f64)> = block
                .iter()
                .filter(|e| e.0 as usize == r)
                .map(|&(_, c, v)| (v, xs[c as usize]))
                .collect();
            prop_assert_eq!(res.y[r], exact_dot_floor(&pairs), "row {}", r);
        }
    }

    /// Early termination never changes results, only costs.
    #[test]
    fn early_termination_is_result_invariant(
        vals in prop::collection::vec(small_double(), 8),
        xs in prop::collection::vec(small_double(), 8),
    ) {
        let block: Vec<(u16, u16, f64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i % 8) as u16, ((i * 3 + 1) % 8) as u16, v))
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ClusterSpec { size: 8, ..Default::default() };
        let cluster = Cluster::program(spec, &block, &mut rng).unwrap().cluster;
        let with = cluster.mvm(&xs, &MvmOptions::default(), &mut rng).unwrap();
        let without = cluster
            .mvm(&xs, &MvmOptions { early_termination: false, ..Default::default() }, &mut rng)
            .unwrap();
        prop_assert_eq!(&with.y, &without.y);
        prop_assert!(with.slices_used <= without.slices_used);
        prop_assert!(with.energy <= without.energy + 1e-18);
    }

    /// The columnar limb-plane gather is bitwise identical to the
    /// retained per-entry reference kernel: same outputs and exactly
    /// equal stats (shared accounting, so energy is `==`) across random
    /// blocks, vector widths, AN on/off, early termination on/off, and
    /// ADC headstart on/off.
    #[test]
    fn columnar_kernel_is_bitwise_identical_to_reference(
        entries in prop::collection::vec((0u16..16, 0u16..16, small_double()), 1..80),
        xs in prop::collection::vec(small_double(), 16),
        an_enabled in any::<bool>(),
        early_termination in any::<bool>(),
        adc_headstart in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut grid = [[None::<f64>; 16]; 16];
        for &(r, c, v) in &entries {
            grid[r as usize][c as usize] = Some(v);
        }
        let block: Vec<(u16, u16, f64)> = (0..16)
            .flat_map(|r| (0..16).filter_map(move |c| grid[r][c].map(|v| (r as u16, c as u16, v))))
            .collect();
        prop_assume!(!block.is_empty());
        let spec = ClusterSpec { size: 16, an_enabled, ..Default::default() };
        let cluster = Cluster::program(spec, &block, &mut StdRng::seed_from_u64(seed))
            .unwrap()
            .cluster;
        let opts = MvmOptions {
            early_termination,
            adc_headstart,
            collect_row_profile: true,
            ..Default::default()
        };
        let mut sc_col = MvmScratch::default();
        let mut sc_ref = MvmScratch::default();
        let mut y_col = vec![0.0; 16];
        let mut y_ref = vec![0.0; 16];
        let s_col = cluster
            .mvm_with(&xs, &opts, &mut StdRng::seed_from_u64(seed), &mut sc_col, &mut y_col)
            .unwrap();
        let s_ref = cluster
            .mvm_with_reference(
                &xs,
                &opts,
                &mut StdRng::seed_from_u64(seed),
                &mut sc_ref,
                &mut y_ref,
            )
            .unwrap();
        prop_assert_eq!(y_col, y_ref);
        prop_assert_eq!(s_col, s_ref);
    }

    /// Every schedule covers the required pairs for random shapes.
    #[test]
    fn schedules_cover_required_pairs(
        j in 1usize..40,
        k in 1usize..40,
        cutoff in 0i64..60,
        chunk in 1usize..6,
    ) {
        for policy in [Policy::Vertical, Policy::Diagonal, Policy::Hybrid { chunk }] {
            let p = plan(policy, j, k, cutoff);
            prop_assert!(p.covers_required(j, k, cutoff), "{:?}", policy);
        }
    }
}
