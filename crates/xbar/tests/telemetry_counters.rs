//! Counter correctness on a hand-sized block: the global telemetry
//! sink must agree, event for event, with closed-form expectations for
//! a 64×64 cluster — ADC conversions, early-termination slice skips,
//! and crossbar activations.

use memsci_telemetry::{self as telemetry, Counter};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn counters_match_closed_form_on_a_64x64_block() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::enable();

    // A dense uniform 64×64 block: every row is active in every MVM,
    // nothing is CIC-evicted, and (unlike a diagonal block) each row
    // accumulates large contributions from the leading vector slices,
    // so wide-dynamic-range inputs do settle early.
    let n = 64usize;
    let entries: Vec<(u16, u16, f64)> = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r as u16, c as u16, 1.5)))
        .collect();
    let mut rng = StdRng::seed_from_u64(42);
    let outcome = Cluster::program(ClusterSpec::with_size(n), &entries, &mut rng).unwrap();
    assert!(outcome.evicted.is_empty(), "uniform block must not evict");
    let cluster = outcome.cluster;

    // --- Ablation MVM: no early termination, no ADC headstart. Every
    // vector slice converts every active row on every crossbar group,
    // so the counts are exact products.
    let x = vec![1.0; n];
    let no_shortcut = MvmOptions {
        early_termination: false,
        adc_headstart: false,
        ..Default::default()
    };
    let base = telemetry::snapshot().counters;
    let res = cluster.mvm(&x, &no_shortcut, &mut rng).unwrap();
    let d = telemetry::snapshot().counters.delta_since(&base);

    assert_eq!(res.slices_used, res.slices_total, "no early termination");
    let xw = res.slices_total as u64;
    assert!(xw > 0);
    // conversions = slices × rows × groups, with groups a whole number
    // of bit-slice crossbars.
    let conversions = d.get(Counter::AdcConversions);
    assert_eq!(conversions, res.conversions);
    assert_eq!(
        conversions % (xw * n as u64),
        0,
        "conversions {conversions}"
    );
    let groups = conversions / (xw * n as u64);
    assert!(groups > 0);
    assert_eq!(d.get(Counter::AdcConversionsSkipped), 0);
    assert_eq!(d.get(Counter::AdcHeadstartHits), 0, "headstart disabled");
    assert_eq!(d.get(Counter::SlicesApplied), xw);
    assert_eq!(d.get(Counter::SlicesSkipped), 0);
    assert_eq!(d.get(Counter::XbarActivations64), xw * groups);
    assert_eq!(d.xbar_activations_total(), xw * groups);

    // --- Early-termination MVM over ~180 binary orders of magnitude:
    // rows settle long before the slice set is exhausted (§IV-B), and
    // every (slice, row) pair is still accounted exactly once — either
    // as `groups` conversions or as `groups` skipped conversions.
    let wide: Vec<f64> = (0..n)
        .map(|i| (2.0f64).powi(-((i / 8) as i32) * 25))
        .collect();
    let base = telemetry::snapshot().counters;
    let res = cluster
        .mvm(&wide, &MvmOptions::default(), &mut rng)
        .unwrap();
    let d = telemetry::snapshot().counters.delta_since(&base);

    assert!(
        res.slices_used < res.slices_total,
        "wide-range vector must terminate early ({} of {})",
        res.slices_used,
        res.slices_total
    );
    assert_eq!(d.get(Counter::AdcConversions), res.conversions);
    assert_eq!(
        d.get(Counter::AdcConversionsSkipped),
        res.conversions_skipped
    );
    assert_eq!(
        d.get(Counter::AdcConversions) + d.get(Counter::AdcConversionsSkipped),
        res.slices_used as u64 * n as u64 * groups,
        "each applied slice converts or skips every active row once per group"
    );
    assert_eq!(d.get(Counter::SlicesApplied), res.slices_used as u64);
    assert_eq!(
        d.get(Counter::SlicesSkipped),
        (res.slices_total - res.slices_used) as u64
    );
    assert!(d.get(Counter::SlicesSkipped) > 0);
    assert_eq!(d.get(Counter::AdcHeadstartHits), res.headstart_hits);
    assert_eq!(
        d.get(Counter::XbarActivations64),
        res.slices_used as u64 * groups
    );

    telemetry::disable();
}

#[test]
fn disabled_sink_stays_silent() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::disable();

    let n = 16usize;
    let entries: Vec<(u16, u16, f64)> = (0..n).map(|i| (i as u16, i as u16, 2.0)).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let cluster = Cluster::program(ClusterSpec::with_size(n), &entries, &mut rng)
        .unwrap()
        .cluster;
    let x = vec![1.0; n];

    let base = telemetry::snapshot().counters;
    let res = cluster.mvm(&x, &MvmOptions::default(), &mut rng).unwrap();
    let d = telemetry::snapshot().counters.delta_since(&base);
    assert!(res.conversions > 0, "the MVM itself still counts locally");
    assert!(d.is_zero(), "disabled sink must record nothing");
}
