//! Pipelined SAR ADC model (§V-A, §VII-A).
//!
//! The reference design point is a 1.2 GHz 10-bit pipelined SAR ADC.
//! Following the paper's scaling analysis: roughly 7% of the reported
//! power scales exponentially with resolution, 20% is static, and the
//! remainder scales linearly; conversion time is held at one clock
//! period regardless of resolution, with the slack spent in the static
//! state. Computational invert coding lets every crossbar use
//! `log2(N) - 1` bits (§V-B2), and the ADC-headstart optimization skips
//! the leading search steps that the column's content makes impossible,
//! saving energy but not latency.

/// SAR ADC configuration and energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcSpec {
    /// Resolution in bits.
    pub resolution: u32,
    /// Clock/conversion frequency in hertz.
    pub f_clk: f64,
    /// Reference energy of one conversion at the 10-bit design point, in
    /// joules. Calibrated so cluster-level energy reproduces Table III
    /// (see [`crate::cost`]).
    pub e_ref_10bit: f64,
}

/// Fraction of reference ADC power scaling exponentially with resolution.
pub const EXPONENTIAL_POWER_FRACTION: f64 = 0.07;
/// Fraction of reference ADC power that is static.
pub const STATIC_POWER_FRACTION: f64 = 0.20;
/// Reference resolution for the power fractions.
pub const REFERENCE_RESOLUTION: u32 = 10;

impl AdcSpec {
    /// An ADC sized for a crossbar with `n` rows under computational
    /// invert coding: `log2(n) - 1` bits (§V-B2), scaled up for
    /// multi-level cells.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two of at least 4.
    pub fn for_crossbar(n: usize, bits_per_cell: u32, f_clk: f64, e_ref_10bit: f64) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "crossbar size must be a power of two >= 4"
        );
        // Max column output with CIC is (2^b - 1) · n/2 - 1.
        let max_out = ((1u64 << bits_per_cell) - 1) * (n as u64 / 2) - 1;
        let resolution = 64 - max_out.leading_zeros();
        AdcSpec {
            resolution,
            f_clk,
            e_ref_10bit,
        }
    }

    /// Conversion time in seconds (one clock period, independent of
    /// resolution — the slack idles at static power).
    pub fn conversion_time(&self) -> f64 {
        1.0 / self.f_clk
    }

    /// Energy of one conversion that searches `bits` of the `resolution`
    /// available (with ADC headstart, `bits < resolution`).
    ///
    /// # Panics
    ///
    /// Panics if `bits > resolution`.
    pub fn conversion_energy(&self, bits: u32) -> f64 {
        assert!(
            bits <= self.resolution,
            "cannot search more bits than the resolution"
        );
        let r = f64::from(self.resolution);
        let b = f64::from(bits);
        let r_ref = f64::from(REFERENCE_RESOLUTION);
        let linear_fraction = 1.0 - EXPONENTIAL_POWER_FRACTION - STATIC_POWER_FRACTION;
        // Static power burns for the whole period; the dynamic parts
        // scale with the fraction of search steps actually taken.
        let duty = if self.resolution == 0 { 0.0 } else { b / r };
        self.e_ref_10bit
            * (STATIC_POWER_FRACTION
                + duty
                    * (EXPONENTIAL_POWER_FRACTION * (2.0f64).powf(r - r_ref)
                        + linear_fraction * r / r_ref))
    }

    /// Energy of one full-resolution conversion.
    pub fn full_conversion_energy(&self) -> f64 {
        self.conversion_energy(self.resolution)
    }

    /// Bits a headstarted conversion must search, given the maximum
    /// output the column can produce (§V-B2): the SAR starts from the
    /// most significant *possible* bit instead of the resolution MSb.
    pub fn headstart_bits(&self, max_possible_output: u64) -> u32 {
        headstart_bits(max_possible_output, self.resolution)
    }

    /// ADC area in mm², scaling 23% exponentially with resolution and
    /// the rest linearly, against a reference area at 10 bits.
    pub fn area_mm2(&self, a_ref_10bit: f64) -> f64 {
        let r = f64::from(self.resolution);
        let r_ref = f64::from(REFERENCE_RESOLUTION);
        a_ref_10bit * (0.23 * (2.0f64).powf(r - r_ref) + 0.77 * r / r_ref)
    }
}

/// Bits a headstarted SAR conversion searches for a column whose output
/// cannot exceed `max_possible` at `resolution` bits — the single shared
/// definition behind [`AdcSpec::headstart_bits`], the crossbar's
/// per-read computation, and the cluster fast path's program-time
/// headstart tables (keeping the three callers drift-free).
pub(crate) fn headstart_bits(max_possible: u64, resolution: u32) -> u32 {
    let needed = 64 - max_possible.leading_zeros();
    needed.clamp(1, resolution)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_matches_cic_sizing() {
        // 1-bit cells: max output N/2 - 1 -> log2(N) - 1 bits.
        for (n, bits) in [(64usize, 5u32), (128, 6), (256, 7), (512, 8)] {
            let adc = AdcSpec::for_crossbar(n, 1, 1.2e9, 1.0e-12);
            assert_eq!(adc.resolution, bits, "n = {n}");
        }
    }

    #[test]
    fn multibit_cells_need_more_resolution() {
        let one = AdcSpec::for_crossbar(64, 1, 1.2e9, 1.0e-12);
        let two = AdcSpec::for_crossbar(64, 2, 1.2e9, 1.0e-12);
        // Max output goes from 31 to 95: 5 -> 7 bits.
        assert_eq!(one.resolution, 5);
        assert_eq!(two.resolution, 7);
    }

    #[test]
    fn headstart_saves_energy_not_latency() {
        let adc = AdcSpec::for_crossbar(512, 1, 1.2e9, 1.0e-12);
        let full = adc.full_conversion_energy();
        let head = adc.conversion_energy(adc.headstart_bits(7));
        assert!(head < full);
        assert_eq!(adc.conversion_time(), 1.0 / 1.2e9);
    }

    #[test]
    fn energy_grows_with_resolution() {
        let e: Vec<f64> = [64usize, 128, 256, 512]
            .iter()
            .map(|&n| AdcSpec::for_crossbar(n, 1, 1.2e9, 1.0e-12).full_conversion_energy())
            .collect();
        assert!(e.windows(2).all(|w| w[0] < w[1]), "{e:?}");
    }

    #[test]
    fn static_energy_is_the_floor() {
        let adc = AdcSpec::for_crossbar(256, 1, 1.2e9, 1.0e-12);
        let idle = adc.conversion_energy(1);
        assert!(idle >= STATIC_POWER_FRACTION * adc.e_ref_10bit);
        assert!(idle < adc.full_conversion_energy());
    }

    #[test]
    fn headstart_clamps_to_resolution() {
        let adc = AdcSpec::for_crossbar(64, 1, 1.2e9, 1.0e-12);
        assert_eq!(adc.headstart_bits(u64::MAX), adc.resolution);
        assert_eq!(adc.headstart_bits(0), 1);
        assert_eq!(adc.headstart_bits(5), 3);
    }
}
