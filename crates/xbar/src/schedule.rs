//! Static scheduling of crossbar activations (§IV-B, Figure 6).
//!
//! A partial product between matrix bit slice `j` and vector bit slice
//! `k` has significance `j + k`. Once early termination establishes that
//! only partial products with significance at least some cutoff are
//! needed, the remaining activations can be grouped in different orders:
//!
//! * **vertical** — one vector slice at a time across all matrix slices:
//!   minimum latency, maximum activations;
//! * **diagonal** — group by significance: minimum activations, extra
//!   latency;
//! * **hybrid** — vertical within chunks of vector slices, diagonal
//!   across chunks: the evaluation's compromise.
//!
//! The simulation engines compute numerics in vertical order (which is
//! what the exactness proofs cover); these plans model the energy/latency
//! trade-off of the alternatives, reproducing the Figure 6 example.

/// An activation-scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// All matrix slices per vector slice (Figure 6 left).
    Vertical,
    /// Group activations by significance `j + k` (Figure 6 middle).
    Diagonal,
    /// Vertical within chunks of `chunk` vector slices (Figure 6 right
    /// uses `chunk = 2`).
    Hybrid {
        /// Vector slices per chunk.
        chunk: usize,
    },
}

/// A concrete activation schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Per time step, the `(matrix_slice, vector_slice)` activations
    /// performed simultaneously.
    pub steps: Vec<Vec<(usize, usize)>>,
}

impl Plan {
    /// Total crossbar activations (correlates with energy).
    pub fn activations(&self) -> usize {
        self.steps.iter().map(Vec::len).sum()
    }

    /// Number of time steps (correlates with latency).
    pub fn time_steps(&self) -> usize {
        self.steps.len()
    }

    /// Checks that every required pair (`j + k >= cutoff`) is activated
    /// exactly once and nothing below the cutoff group's guarantee is
    /// missed.
    pub fn covers_required(&self, matrix_slices: usize, vector_slices: usize, cutoff: i64) -> bool {
        let mut seen = vec![false; matrix_slices * vector_slices];
        for step in &self.steps {
            for &(j, k) in step {
                if j >= matrix_slices || k >= vector_slices {
                    return false;
                }
                let idx = j * vector_slices + k;
                if seen[idx] {
                    return false; // duplicate activation
                }
                seen[idx] = true;
            }
        }
        for j in 0..matrix_slices {
            for k in 0..vector_slices {
                if (j + k) as i64 >= cutoff && !seen[j * vector_slices + k] {
                    return false;
                }
            }
        }
        true
    }
}

/// Builds the activation schedule for `matrix_slices × vector_slices`
/// bit-slice pairs where only significances `j + k >= cutoff` must be
/// computed.
///
/// # Panics
///
/// Panics if a hybrid chunk size of zero is requested.
///
/// # Examples
///
/// The Figure 6 example — 4×4 slices, cutoff 2:
///
/// ```
/// use memsci_xbar::schedule::{plan, Policy};
///
/// let vertical = plan(Policy::Vertical, 4, 4, 2);
/// assert_eq!((vertical.activations(), vertical.time_steps()), (16, 4));
/// let diagonal = plan(Policy::Diagonal, 4, 4, 2);
/// assert_eq!((diagonal.activations(), diagonal.time_steps()), (13, 5));
/// let hybrid = plan(Policy::Hybrid { chunk: 2 }, 4, 4, 2);
/// assert_eq!((hybrid.activations(), hybrid.time_steps()), (14, 4));
/// ```
pub fn plan(policy: Policy, matrix_slices: usize, vector_slices: usize, cutoff: i64) -> Plan {
    let needed_col = |k: usize| (matrix_slices - 1 + k) as i64 >= cutoff;
    let steps = match policy {
        Policy::Vertical => {
            let mut steps = Vec::new();
            for k in (0..vector_slices).rev() {
                if !needed_col(k) {
                    continue;
                }
                steps.push((0..matrix_slices).map(|j| (j, k)).collect());
            }
            steps
        }
        Policy::Diagonal => {
            let max_s = (matrix_slices + vector_slices).saturating_sub(2) as i64;
            let mut steps = Vec::new();
            let mut s = max_s;
            while s >= cutoff.max(0) && s >= 0 {
                let mut step = Vec::new();
                for j in 0..matrix_slices {
                    let k = s - j as i64;
                    if (0..vector_slices as i64).contains(&k) {
                        step.push((j, k as usize));
                    }
                }
                if !step.is_empty() {
                    steps.push(step);
                }
                s -= 1;
            }
            steps
        }
        Policy::Hybrid { chunk } => {
            assert!(chunk > 0, "hybrid chunk size must be positive");
            let mut steps = Vec::new();
            let mut k_hi = vector_slices as i64 - 1;
            while k_hi >= 0 {
                let k_lo = (k_hi - chunk as i64 + 1).max(0);
                // Matrix slices needed anywhere in this chunk, judged by
                // the chunk's most significant vector slice.
                let j_min = (cutoff - k_hi).max(0) as usize;
                if j_min < matrix_slices {
                    for k in (k_lo..=k_hi).rev() {
                        // Skip vector slices with no required pair at all.
                        if (matrix_slices as i64 - 1 + k) < cutoff {
                            continue;
                        }
                        let step: Vec<(usize, usize)> =
                            (j_min..matrix_slices).map(|j| (j, k as usize)).collect();
                        steps.push(step);
                    }
                }
                k_hi = k_lo - 1;
            }
            steps
        }
    };
    Plan { steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_numbers() {
        let v = plan(Policy::Vertical, 4, 4, 2);
        assert_eq!((v.activations(), v.time_steps()), (16, 4));
        let d = plan(Policy::Diagonal, 4, 4, 2);
        assert_eq!((d.activations(), d.time_steps()), (13, 5));
        let h = plan(Policy::Hybrid { chunk: 2 }, 4, 4, 2);
        assert_eq!((h.activations(), h.time_steps()), (14, 4));
    }

    #[test]
    fn all_policies_cover_required_pairs() {
        for (j, k, cutoff) in [(4usize, 4usize, 2i64), (8, 6, 5), (127, 60, 100), (5, 9, 0)] {
            for policy in [
                Policy::Vertical,
                Policy::Diagonal,
                Policy::Hybrid { chunk: 3 },
            ] {
                let p = plan(policy, j, k, cutoff);
                assert!(
                    p.covers_required(j, k, cutoff),
                    "{policy:?} {j}x{k} cutoff {cutoff}"
                );
            }
        }
    }

    #[test]
    fn diagonal_minimizes_activations() {
        for cutoff in 0..10 {
            let d = plan(Policy::Diagonal, 8, 8, cutoff).activations();
            let v = plan(Policy::Vertical, 8, 8, cutoff).activations();
            let h = plan(Policy::Hybrid { chunk: 2 }, 8, 8, cutoff).activations();
            assert!(d <= h && h <= v, "cutoff {cutoff}: {d} {h} {v}");
        }
    }

    #[test]
    fn vertical_minimizes_time_steps() {
        for cutoff in 0..10 {
            let d = plan(Policy::Diagonal, 8, 8, cutoff).time_steps();
            let v = plan(Policy::Vertical, 8, 8, cutoff).time_steps();
            let h = plan(Policy::Hybrid { chunk: 2 }, 8, 8, cutoff).time_steps();
            assert!(v <= h && h <= d, "cutoff {cutoff}: {v} {h} {d}");
        }
    }

    #[test]
    fn diagonal_exactly_counts_needed_pairs() {
        let (j, k, cutoff) = (6usize, 5usize, 4i64);
        let needed = (0..j)
            .flat_map(|jj| (0..k).map(move |kk| (jj, kk)))
            .filter(|&(jj, kk)| (jj + kk) as i64 >= cutoff)
            .count();
        assert_eq!(plan(Policy::Diagonal, j, k, cutoff).activations(), needed);
    }

    #[test]
    fn zero_cutoff_activates_everything() {
        let p = plan(Policy::Vertical, 3, 3, 0);
        assert_eq!(p.activations(), 9);
        let p = plan(Policy::Diagonal, 3, 3, 0);
        assert_eq!(p.activations(), 9);
    }

    #[test]
    fn high_cutoff_skips_whole_columns() {
        // cutoff above max significance: nothing to do.
        let p = plan(Policy::Vertical, 3, 3, 10);
        assert_eq!(p.activations(), 0);
        let p = plan(Policy::Hybrid { chunk: 2 }, 3, 3, 10);
        assert_eq!(p.activations(), 0);
    }

    #[test]
    fn hybrid_with_chunk_one_matches_diagonal_activations_columnwise() {
        // chunk = 1 prunes each column individually: fewer activations
        // than vertical, same step count as vertical's needed columns.
        let v = plan(Policy::Vertical, 6, 6, 4);
        let h = plan(Policy::Hybrid { chunk: 1 }, 6, 6, 4);
        assert!(h.activations() < v.activations());
        assert_eq!(h.time_steps(), v.time_steps());
        assert!(h.covers_required(6, 6, 4));
    }
}
