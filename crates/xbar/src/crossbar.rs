//! A single bit-group crossbar with computational invert coding.
//!
//! Each crossbar of a cluster stores one bit group (one bit per cell by
//! default) of every AN-encoded, biased operand in the block. The
//! crossbar's *rows* are the input lines driven by vector bit slices and
//! its *columns* accumulate currents for one matrix row each (the
//! memory-systems convention of the paper's footnote 1).
//!
//! Sparse blocks are stored sparsely: every column keeps the list of
//! cells whose *stored* level is non-zero, plus a constant level shared
//! by all absent (zero-coefficient) cells — absent coefficients still
//! carry the block bias, so their encoded pattern is the same constant
//! in every column. Computational invert coding (§V-B2) complements
//! columns whose level sum exceeds half the maximum, statically
//! guaranteeing the reduced ADC resolution.

use memsci_numeric::WideInt;
use rand::Rng;

use crate::adc::headstart_bits;
use crate::device::{standard_normal, CellSpec};

/// Error returned when a column's level sum sits exactly on the CIC
/// boundary `(levels-1)·n/2`, which would require one extra ADC bit; the
/// cluster reacts by evicting an element from the offending matrix row
/// (§V-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CicBoundaryError {
    /// The output column (block-local matrix row) on the boundary.
    pub column: usize,
}

impl core::fmt::Display for CicBoundaryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "column {} sits on the CIC resolution boundary",
            self.column
        )
    }
}

impl std::error::Error for CicBoundaryError {}

/// One stored cell with a persistent programming error.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StoredCell {
    input: u32,
    level: u8,
    eps: f32,
}

/// One output column of the crossbar.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    inverted: bool,
    /// Stored level shared by every absent (zero-coefficient) cell.
    const_level: u8,
    /// Number of present (explicit) cells in this column's matrix row.
    present: u32,
    /// Explicit cells with non-zero stored level, sorted by input.
    cells: Vec<StoredCell>,
    /// Present-cell inputs with stored level zero do not appear in
    /// `cells`; their count is needed to attribute the constant level to
    /// absent cells only.
    present_zero_inputs: Vec<u32>,
    /// Total stored level sum across all `n` cells (for ADC headstart).
    level_sum: u64,
}

/// Result of reading one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnRead {
    /// The ADC count (after clamping to the ADC range).
    pub measured: u32,
    /// The de-inverted contribution `Σ level·x` this column represents.
    pub contribution: i64,
    /// SAR bits the headstarted conversion searched.
    pub searched_bits: u32,
}

/// A crossbar storing one bit group of a block's operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    n: usize,
    bits_per_cell: u32,
    adc_resolution: u32,
    columns: Vec<Column>,
    /// Deterministic retention scale applied to every analog read
    /// (`FaultModel::drift_factor` of the operator's write age; exactly
    /// 1.0 for fault-free crossbars).
    drift: f64,
    /// Effective sigma of the aggregated absent-cell noise (equals
    /// `programming_sigma` when the fault model is off).
    absent_sigma: f64,
    /// Whether any stored cell can carry a non-zero error term.
    cell_noise: bool,
    /// Cells injected as stuck-at-G_on/G_off at program time.
    stuck_cells: u64,
}

impl Crossbar {
    /// Programs a crossbar from per-column raw levels.
    ///
    /// `present[r]` lists the `(input, level)` pairs of matrix row `r`'s
    /// explicit entries (levels may be zero), and `const_level` is the
    /// stored level of every absent cell (the bit group of the encoded
    /// bias constant). Programming errors are sampled per explicit cell
    /// from `cell`; `adc_resolution` clamps reads.
    ///
    /// # Errors
    ///
    /// Returns [`CicBoundaryError`] if a column lands exactly on the CIC
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if any level is outside `0..2^bits_per_cell` or any input
    /// index is out of range.
    pub fn program<R: Rng + ?Sized>(
        n: usize,
        bits_per_cell: u32,
        adc_resolution: u32,
        present: &[Vec<(u32, u8)>],
        const_level: u8,
        cell: &CellSpec,
        rng: &mut R,
    ) -> Result<Self, CicBoundaryError> {
        Self::program_with(
            n,
            bits_per_cell,
            adc_resolution,
            present,
            const_level,
            cell,
            0,
            0,
            rng,
        )
    }

    /// As [`Self::program`], with the hosting cluster's reliability
    /// state: `write_age` (total operator writes, drives retention
    /// drift) and `reprograms` (endurance cycles of this physical
    /// cluster, inflates the effective programming sigma). With
    /// `cell.fault` inactive and both counters zero this is
    /// bit-identical to [`Self::program`] — same conductances, same RNG
    /// draw sequence.
    ///
    /// # Errors
    ///
    /// As [`Self::program`].
    ///
    /// # Panics
    ///
    /// As [`Self::program`].
    #[allow(clippy::too_many_arguments)]
    pub fn program_with<R: Rng + ?Sized>(
        n: usize,
        bits_per_cell: u32,
        adc_resolution: u32,
        present: &[Vec<(u32, u8)>],
        const_level: u8,
        cell: &CellSpec,
        write_age: u64,
        reprograms: u64,
        rng: &mut R,
    ) -> Result<Self, CicBoundaryError> {
        let lmax = (1u16 << bits_per_cell) - 1;
        assert!(u16::from(const_level) <= lmax, "const level out of range");
        let fault = cell.fault;
        let endurance = fault.endurance_scale(reprograms);
        let stuck_rate = fault.stuck_rate();
        let mut stuck_cells = 0u64;
        let boundary = u64::from(lmax) * n as u64 / 2;
        let mut columns = Vec::with_capacity(present.len());
        for (r, entries) in present.iter().enumerate() {
            let mut raw_sum = 0u64;
            for &(input, level) in entries {
                assert!((input as usize) < n, "input index out of range");
                assert!(u16::from(level) <= lmax, "level out of range");
                raw_sum += u64::from(level);
            }
            let absent = n as u64 - entries.len() as u64;
            raw_sum += absent * u64::from(const_level);
            if raw_sum == boundary {
                return Err(CicBoundaryError { column: r });
            }
            let inverted = raw_sum > boundary;
            let stored = |l: u8| if inverted { lmax as u8 - l } else { l };
            let stored_const = stored(const_level);
            let mut cells = Vec::new();
            let mut present_zero_inputs = Vec::new();
            for &(input, level) in entries {
                // Stuck-at decision first (physical reality overrides
                // the write), in the *stored* domain: a cell pinned at
                // G_on reads as lmax regardless of CIC inversion.
                let stuck = if stuck_rate > 0.0 {
                    let u: f64 = rng.gen();
                    if u < fault.stuck_on_rate {
                        Some(lmax as u8)
                    } else if u < stuck_rate {
                        Some(0u8)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let (s, eps) = match stuck {
                    Some(pinned) => {
                        stuck_cells += 1;
                        // A pinned conductance carries no write noise.
                        (pinned, 0.0f64)
                    }
                    None => {
                        let s = stored(level);
                        let eps = if s > 0 {
                            sample_cell_error(cell, endurance, rng)
                        } else {
                            0.0
                        };
                        (s, eps)
                    }
                };
                if s > 0 {
                    cells.push(StoredCell {
                        input,
                        level: s,
                        eps: eps as f32,
                    });
                } else {
                    present_zero_inputs.push(input);
                }
            }
            let level_sum = if inverted {
                u64::from(lmax) * n as u64 - raw_sum
            } else {
                raw_sum
            };
            columns.push(Column {
                inverted,
                const_level: stored_const,
                present: entries.len() as u32,
                cells,
                present_zero_inputs,
                level_sum,
            });
        }
        let absent_sigma = (cell.programming_sigma + fault.d2d_sigma) * endurance;
        Ok(Crossbar {
            n,
            bits_per_cell,
            adc_resolution,
            columns,
            drift: fault.drift_factor(write_age),
            absent_sigma,
            cell_noise: absent_sigma > 0.0,
            stuck_cells,
        })
    }

    /// Crossbar dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cells injected as stuck-at faults when this crossbar was
    /// programmed.
    pub fn stuck_cells(&self) -> u64 {
        self.stuck_cells
    }

    /// The retention drift scale this crossbar reads under (1.0 =
    /// no drift).
    pub fn drift(&self) -> f64 {
        self.drift
    }

    /// Number of output columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Total stored level across the crossbar (proxy for set cells, used
    /// by the write-energy model).
    pub fn stored_level_sum(&self) -> u64 {
        self.columns.iter().map(|c| c.level_sum).sum()
    }

    /// Stored level sum of one column (drives the ADC-headstart model).
    pub fn column_level_sum(&self, r: usize) -> u64 {
        self.columns[r].level_sum
    }

    /// Whether column `r` is stored inverted.
    pub fn column_inverted(&self, r: usize) -> bool {
        self.columns[r].inverted
    }

    /// Reads column `r` against the active input lines (a bitmask of
    /// `ceil(n/64)` words with `active_count` ones).
    ///
    /// The analog sum includes persistent per-cell programming errors,
    /// off-state leakage from every active line, and an optional RTN
    /// upset with probability `rtn_probability` (±1 count); the ADC
    /// rounds to the nearest count and clamps to its resolution.
    pub fn read_column<R: Rng + ?Sized>(
        &self,
        r: usize,
        active: &[u64],
        active_count: u32,
        cell: &CellSpec,
        rtn_probability: f64,
        rng: &mut R,
    ) -> ColumnRead {
        let col = &self.columns[r];
        let lmax = u64::from(cell.max_level());
        let mut ideal = 0u64;
        let mut noise = 0.0f64;
        let noisy = self.cell_noise;
        let mut present_active = 0u32;
        for c in &col.cells {
            if active[c.input as usize / 64] >> (c.input % 64) & 1 == 1 {
                ideal += u64::from(c.level);
                present_active += 1;
                if noisy {
                    noise += f64::from(c.level) * f64::from(c.eps);
                }
            }
        }
        for &input in &col.present_zero_inputs {
            if active[input as usize / 64] >> (input % 64) & 1 == 1 {
                present_active += 1;
            }
        }
        let absent_active = active_count.saturating_sub(present_active);
        if col.const_level > 0 && absent_active > 0 {
            ideal += u64::from(col.const_level) * u64::from(absent_active);
            if noisy {
                // Absent cells only carry the bias pattern; their i.i.d.
                // programming errors are aggregated statistically.
                noise += f64::from(col.const_level)
                    * self.absent_sigma
                    * f64::from(absent_active).sqrt()
                    * standard_normal(rng);
            }
        }
        let leak = cell.leak_per_active_row() * f64::from(active_count);
        // Retention drift scales the stored conductances (not the
        // off-state leakage); `drift == 1.0` multiplies exactly.
        let mut analog = (ideal as f64 + noise) * self.drift + leak;
        if rtn_probability > 0.0 && rng.gen::<f64>() < rtn_probability {
            analog += if rng.gen() { 1.0 } else { -1.0 };
        }
        let adc_max = (1u64 << self.adc_resolution) - 1;
        let measured = (analog.round().max(0.0) as u64).min(adc_max) as u32;
        let contribution = if col.inverted {
            lmax as i64 * i64::from(active_count) - i64::from(measured)
        } else {
            i64::from(measured)
        };
        let max_possible = col.level_sum.min(lmax * u64::from(active_count));
        let searched_bits = headstart_bits(max_possible, self.adc_resolution);
        ColumnRead {
            measured,
            contribution,
            searched_bits,
        }
    }

    /// Exact (noise-free, infinite-resolution) contribution of column
    /// `r` — a test oracle bypassing the analog path.
    pub fn ideal_contribution(&self, r: usize, active: &[u64], active_count: u32) -> i64 {
        let col = &self.columns[r];
        let mut sum = 0i64;
        let mut present_active = 0u32;
        for c in &col.cells {
            if active[c.input as usize / 64] >> (c.input % 64) & 1 == 1 {
                sum += i64::from(c.level);
                present_active += 1;
            }
        }
        for &input in &col.present_zero_inputs {
            if active[input as usize / 64] >> (input % 64) & 1 == 1 {
                present_active += 1;
            }
        }
        let absent_active = active_count.saturating_sub(present_active);
        sum += i64::from(col.const_level) * i64::from(absent_active);
        if col.inverted {
            let lmax = i64::from((1u32 << self.bits_per_cell) - 1);
            lmax * i64::from(active_count) - sum
        } else {
            sum
        }
    }
}

/// Samples one cell's persistent relative error under the fault model:
/// the effective sigma is `(programming_sigma + d2d·|N(0,1)|)` scaled by
/// the endurance factor. With d2d off and endurance 1.0 this makes
/// exactly the draws of [`CellSpec::sample_programming_error`] (none
/// when sigma is zero), preserving zero-fault stream identity.
fn sample_cell_error<R: Rng + ?Sized>(cell: &CellSpec, endurance: f64, rng: &mut R) -> f64 {
    let sigma = if cell.fault.d2d_sigma > 0.0 {
        (cell.programming_sigma + cell.fault.d2d_sigma * standard_normal(rng).abs()) * endurance
    } else {
        cell.programming_sigma * endurance
    };
    if sigma == 0.0 {
        0.0
    } else {
        sigma * standard_normal(rng)
    }
}

/// Splits an encoded operand into base-`2^bits_per_cell` levels, least
/// significant group first.
pub fn operand_levels(value: &WideInt, bits_per_cell: u32, groups: usize) -> Vec<u8> {
    assert!(!value.is_negative(), "operands are biased non-negative");
    let mut out = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut level = 0u8;
        for b in 0..bits_per_cell {
            let bit = g as u32 * bits_per_cell + b;
            if value.bit(bit as usize) {
                level |= 1 << b;
            }
        }
        out.push(level);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn all_active(n: usize) -> (Vec<u64>, u32) {
        let mut words = vec![0u64; n.div_ceil(64)];
        for i in 0..n {
            words[i / 64] |= 1 << (i % 64);
        }
        (words, n as u32)
    }

    #[test]
    fn ideal_count_matches_pattern() {
        // 8 inputs, column 0 has ones at inputs 1, 3, 5 (const 0).
        let present = vec![vec![(1u32, 1u8), (3, 1), (5, 1)]];
        let xb = Crossbar::program(8, 1, 3, &present, 0, &CellSpec::default(), &mut rng()).unwrap();
        let (active, count) = all_active(8);
        let read = xb.read_column(0, &active, count, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.contribution, 3);
        assert_eq!(read.measured, 3);
        // Partial activation: only inputs 0..4.
        let words = vec![0b1111u64];
        let read = xb.read_column(0, &words, 4, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.contribution, 2); // inputs 1 and 3
    }

    #[test]
    fn cic_inverts_dense_columns() {
        // All 8 cells set: sum 8 > 4 -> inverted, stored zeros.
        let present = vec![(0..8).map(|i| (i, 1u8)).collect::<Vec<_>>()];
        let xb = Crossbar::program(8, 1, 3, &present, 0, &CellSpec::default(), &mut rng()).unwrap();
        assert!(xb.column_inverted(0));
        let (active, count) = all_active(8);
        let read = xb.read_column(0, &active, count, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.measured, 0); // inverted pattern stores nothing
        assert_eq!(read.contribution, 8); // de-inverted
    }

    #[test]
    fn cic_boundary_is_an_error() {
        // Exactly n/2 ones triggers the boundary condition.
        let present = vec![(0..4).map(|i| (i, 1u8)).collect::<Vec<_>>()];
        let err =
            Crossbar::program(8, 1, 3, &present, 0, &CellSpec::default(), &mut rng()).unwrap_err();
        assert_eq!(err.column, 0);
        assert!(err.to_string().contains("boundary"));
    }

    #[test]
    fn constant_plane_counts_absent_cells() {
        // One present cell (level 0) and const level 1 for the 7 absent:
        // raw sum 7 > 4 -> inverted.
        let present = vec![vec![(2u32, 0u8)]];
        let xb = Crossbar::program(8, 1, 3, &present, 1, &CellSpec::default(), &mut rng()).unwrap();
        assert!(xb.column_inverted(0));
        let (active, count) = all_active(8);
        let read = xb.read_column(0, &active, count, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.contribution, 7);
        // Activating only the present (zero-level) input yields 0.
        let words = vec![0b100u64];
        let read = xb.read_column(0, &words, 1, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.contribution, 0);
    }

    #[test]
    fn multibit_levels() {
        let present = vec![vec![(0u32, 3u8), (1, 2)]];
        let xb = Crossbar::program(8, 2, 5, &present, 0, &CellSpec::default(), &mut rng()).unwrap();
        let (active, count) = all_active(8);
        let read = xb.read_column(0, &active, count, &CellSpec::default(), 0.0, &mut rng());
        assert_eq!(read.contribution, 5);
    }

    #[test]
    fn leakage_flips_counts_at_low_dynamic_range() {
        // 512 active rows with DR 100: leak = 512/99 > 5 counts.
        let n = 512;
        let present = vec![vec![(0u32, 1u8)]];
        let cell = CellSpec::default().with_dynamic_range(100.0);
        let xb = Crossbar::program(n, 1, 8, &present, 0, &cell, &mut rng()).unwrap();
        let (active, count) = all_active(n);
        let read = xb.read_column(0, &active, count, &cell, 0.0, &mut rng());
        assert!(
            read.measured > 1,
            "leak should inflate the count: {}",
            read.measured
        );
        // At the Table I dynamic range the same read is exact.
        let cell = CellSpec::default();
        let xb = Crossbar::program(n, 1, 8, &present, 0, &cell, &mut rng()).unwrap();
        let read = xb.read_column(0, &active, count, &cell, 0.0, &mut rng());
        assert_eq!(read.measured, 1);
    }

    #[test]
    fn ideal_contribution_matches_noiseless_read() {
        let present = vec![
            vec![(0u32, 1u8), (5, 1), (9, 1)],
            (0..12).map(|i| (i, 1u8)).collect::<Vec<_>>(),
        ];
        let xb =
            Crossbar::program(16, 1, 4, &present, 0, &CellSpec::default(), &mut rng()).unwrap();
        let words = vec![0b1010_1010_1010_1010u64];
        for r in 0..2 {
            let read = xb.read_column(r, &words, 8, &CellSpec::default(), 0.0, &mut rng());
            assert_eq!(read.contribution, xb.ideal_contribution(r, &words, 8));
        }
    }

    #[test]
    fn headstart_reflects_column_content() {
        // A nearly-empty column needs to search far fewer bits.
        let present = vec![
            vec![(0u32, 1u8)],
            (0..200).map(|i| (i, 1u8)).collect::<Vec<_>>(),
        ];
        let xb =
            Crossbar::program(512, 1, 8, &present, 0, &CellSpec::default(), &mut rng()).unwrap();
        let (active, count) = all_active(512);
        let sparse = xb.read_column(0, &active, count, &CellSpec::default(), 0.0, &mut rng());
        let dense = xb.read_column(1, &active, count, &CellSpec::default(), 0.0, &mut rng());
        assert!(sparse.searched_bits < dense.searched_bits);
        assert_eq!(sparse.searched_bits, 1);
    }

    #[test]
    fn operand_levels_roundtrip() {
        let v = WideInt::from(0b1101_0110u64);
        let levels = operand_levels(&v, 2, 4);
        assert_eq!(levels, vec![0b10, 0b01, 0b01, 0b11]);
        let levels = operand_levels(&v, 1, 8);
        assert_eq!(levels, vec![0, 1, 1, 0, 1, 0, 1, 1]);
    }

    #[test]
    fn zero_fault_program_with_is_bit_identical_to_program() {
        use crate::device::FaultModel;
        let present = vec![
            vec![(0u32, 1u8), (5, 1), (9, 1)],
            (0..12).map(|i| (i, 1u8)).collect::<Vec<_>>(),
        ];
        for sigma in [0.0, 0.03] {
            let cell = CellSpec::default().with_programming_sigma(sigma);
            let armed = cell.with_fault(FaultModel::none());
            let a = Crossbar::program(16, 1, 4, &present, 0, &cell, &mut rng()).unwrap();
            let b =
                Crossbar::program_with(16, 1, 4, &present, 0, &armed, 0, 0, &mut rng()).unwrap();
            assert_eq!(a, b, "sigma {sigma}");
            assert_eq!(b.stuck_cells(), 0);
            assert_eq!(b.drift(), 1.0);
        }
    }

    #[test]
    fn stuck_on_cells_pin_to_max_level() {
        use crate::device::FaultModel;
        // Every explicit cell stuck at G_on: a column programmed with
        // zeros still reads the full count.
        let cell = CellSpec::default().with_fault(FaultModel::none().with_stuck_rates(1.0, 0.0));
        let present = vec![vec![(0u32, 0u8), (1, 0), (2, 0)]];
        let xb = Crossbar::program_with(8, 1, 3, &present, 0, &cell, 0, 0, &mut rng()).unwrap();
        assert_eq!(xb.stuck_cells(), 3);
        let (active, count) = all_active(8);
        let read = xb.read_column(0, &active, count, &cell, 0.0, &mut rng());
        assert_eq!(read.measured, 3);
        // Stuck at G_off instead: an all-ones column reads nothing.
        let cell = CellSpec::default().with_fault(FaultModel::none().with_stuck_rates(0.0, 1.0));
        let present = vec![vec![(0u32, 1u8), (1, 1), (2, 1)]];
        let xb = Crossbar::program_with(8, 1, 3, &present, 0, &cell, 0, 0, &mut rng()).unwrap();
        assert_eq!(xb.stuck_cells(), 3);
        let read = xb.read_column(0, &active, count, &cell, 0.0, &mut rng());
        assert_eq!(read.measured, 0);
    }

    #[test]
    fn stuck_rate_statistics() {
        use crate::device::FaultModel;
        let cell = CellSpec::default().with_fault(FaultModel::none().with_stuck_rates(0.1, 0.1));
        let present = vec![(0..500).map(|i| (i, 1u8)).collect::<Vec<_>>()];
        let mut r = rng();
        let mut total = 0u64;
        for _ in 0..20 {
            let xb = Crossbar::program_with(512, 1, 9, &present, 0, &cell, 0, 0, &mut r).unwrap();
            total += xb.stuck_cells();
        }
        let rate = total as f64 / (20.0 * 500.0);
        assert!((0.15..0.25).contains(&rate), "stuck rate {rate}");
    }

    #[test]
    fn retention_drift_shrinks_aged_reads() {
        use crate::device::FaultModel;
        let cell = CellSpec::default().with_fault(FaultModel::none().with_drift_coefficient(0.05));
        let present = vec![(0..10).map(|i| (i, 1u8)).collect::<Vec<_>>()];
        let fresh = Crossbar::program_with(64, 1, 5, &present, 0, &cell, 0, 0, &mut rng()).unwrap();
        let aged =
            Crossbar::program_with(64, 1, 5, &present, 0, &cell, 10_000, 0, &mut rng()).unwrap();
        assert_eq!(fresh.drift(), 1.0);
        assert!(aged.drift() < 1.0);
        let (active, count) = all_active(64);
        let f = fresh.read_column(0, &active, count, &cell, 0.0, &mut rng());
        let a = aged.read_column(0, &active, count, &cell, 0.0, &mut rng());
        assert_eq!(f.measured, 10);
        assert!(a.measured < 10, "aged read {}", a.measured);
    }

    #[test]
    fn endurance_and_d2d_widen_the_error_spread() {
        use crate::device::FaultModel;
        // Same seed: a heavily reprogrammed crossbar with d2d spread
        // must show strictly larger per-cell errors than a pristine one.
        let spread = |cell: &CellSpec, reprograms: u64| -> f64 {
            let present = vec![(0..400).map(|i| (i, 1u8)).collect::<Vec<_>>()];
            let xb =
                Crossbar::program_with(512, 1, 9, &present, 0, cell, 0, reprograms, &mut rng())
                    .unwrap();
            let (active, count) = all_active(512);
            let mut r = StdRng::seed_from_u64(77);
            let read = xb.read_column(0, &active, count, cell, 0.0, &mut r);
            (f64::from(read.measured) - 400.0).abs()
        };
        let base = CellSpec::default().with_programming_sigma(0.02);
        let worn = base.with_fault(
            FaultModel::none()
                .with_d2d_sigma(0.05)
                .with_endurance_sigma_growth(0.5),
        );
        assert!(spread(&worn, 40) > spread(&base, 0));
    }

    #[test]
    fn rtn_errors_occur_at_configured_rate() {
        let present = vec![vec![(0u32, 1u8), (1, 1)]];
        let cell = CellSpec::default();
        let xb = Crossbar::program(64, 1, 5, &present, 0, &cell, &mut rng()).unwrap();
        let (active, count) = all_active(64);
        let mut r = rng();
        let mut upsets = 0;
        let trials = 2000;
        for _ in 0..trials {
            let read = xb.read_column(0, &active, count, &cell, 0.5, &mut r);
            if read.measured != 2 {
                upsets += 1;
            }
        }
        let rate = f64::from(upsets) / f64::from(trials as u32);
        assert!((0.4..0.6).contains(&rate), "rate {rate}");
    }
}
