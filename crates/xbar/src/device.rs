//! Memristor cell model (Table I, §VII-A).
//!
//! Cells are TaOx devices modelled as resistors during computation.
//! Multi-level cells map level `l ∈ 0..2^bits` to a conductance
//! `g_off + l·Δ` with `Δ = (g_on - g_off)/(2^bits - 1)`; in ADC-count
//! units this contributes `l` plus two non-idealities:
//!
//! * **off-state leakage** — every active row adds
//!   `(2^bits - 1)/(R_off/R_on - 1)` counts regardless of its level,
//!   the §IV-E concern that motivates capping blocks at 512×512 for a
//!   dynamic range of 1.5×10³;
//! * **programming error** — each cell's conductance is off by a
//!   persistent relative factor `ε ~ N(0, σ)` fixed when the cell is
//!   programmed (§VIII-G sweeps σ from 0 to 5%).

use rand::Rng;

/// Physical and programming parameters of one memristor cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// On-state resistance in ohms (Table I: 2 kΩ).
    pub r_on: f64,
    /// Off-state resistance in ohms (Table I: 3 MΩ).
    pub r_off: f64,
    /// Bits stored per cell (the paper uses 1 for robustness; Figures
    /// 12–13 sweep 2).
    pub bits_per_cell: u32,
    /// Relative programming error σ (0.0 = ideal).
    pub programming_sigma: f64,
    /// Read voltage in volts (Table I: 0.2 V).
    pub v_read: f64,
    /// Energy to write one cell, in joules (Table I: 3.91 nJ).
    pub e_write: f64,
    /// Time to write one cell row, in seconds (Table I: 50.88 ns).
    pub t_write: f64,
}

impl Default for CellSpec {
    /// The Table I TaOx cell: 1-bit, ideal programming.
    fn default() -> Self {
        CellSpec {
            r_on: 2.0e3,
            r_off: 3.0e6,
            bits_per_cell: 1,
            programming_sigma: 0.0,
            v_read: 0.2,
            e_write: 3.91e-9,
            t_write: 50.88e-9,
        }
    }
}

impl CellSpec {
    /// Dynamic range `R_off / R_on` (Table I default: 1500).
    pub fn dynamic_range(&self) -> f64 {
        self.r_off / self.r_on
    }

    /// Returns a copy with the dynamic range set by scaling `R_off`
    /// (used by the Figure 12 sweep).
    pub fn with_dynamic_range(mut self, ratio: f64) -> Self {
        assert!(ratio > 1.0, "dynamic range must exceed 1");
        self.r_off = self.r_on * ratio;
        self
    }

    /// Returns a copy with the given bits per cell.
    pub fn with_bits_per_cell(mut self, bits: u32) -> Self {
        assert!((1..=4).contains(&bits), "1..=4 bits per cell supported");
        self.bits_per_cell = bits;
        self
    }

    /// Returns a copy with the given relative programming error σ.
    pub fn with_programming_sigma(mut self, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        self.programming_sigma = sigma;
        self
    }

    /// Number of conductance levels (`2^bits_per_cell`).
    pub fn levels(&self) -> u32 {
        1 << self.bits_per_cell
    }

    /// Maximum level value (`2^bits_per_cell - 1`).
    pub fn max_level(&self) -> u32 {
        self.levels() - 1
    }

    /// Leakage per active row in ADC-count units:
    /// `(levels - 1) / (dynamic_range - 1)`.
    pub fn leak_per_active_row(&self) -> f64 {
        f64::from(self.max_level()) / (self.dynamic_range() - 1.0)
    }

    /// Samples a persistent programming error for one cell.
    pub fn sample_programming_error<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.programming_sigma == 0.0 {
            0.0
        } else {
            self.programming_sigma * standard_normal(rng)
        }
    }
}

/// Samples a standard normal deviate via Box–Muller (keeps the crate on
/// `rand` alone, without `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_table1() {
        let c = CellSpec::default();
        assert_eq!(c.r_on, 2.0e3);
        assert_eq!(c.r_off, 3.0e6);
        assert_eq!(c.dynamic_range(), 1500.0);
        assert_eq!(c.bits_per_cell, 1);
        assert_eq!(c.levels(), 2);
    }

    #[test]
    fn leak_is_small_for_single_bit_cells() {
        // The §IV-E design point: 512 active rows at DR 1500 leak less
        // than half an LSB.
        let c = CellSpec::default();
        assert!(512.0 * c.leak_per_active_row() < 0.5);
        // At DR 750 it crosses the threshold only for the biggest arrays.
        let weak = c.with_dynamic_range(750.0);
        assert!(512.0 * weak.leak_per_active_row() > 0.5);
    }

    #[test]
    fn two_bit_cells_leak_three_times_more() {
        let c1 = CellSpec::default();
        let c2 = c1.with_bits_per_cell(2);
        let ratio = c2.leak_per_active_row() / c1.leak_per_active_row();
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn programming_error_statistics() {
        let c = CellSpec::default().with_programming_sigma(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| c.sample_programming_error(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "sigma {}", var.sqrt());
    }

    #[test]
    fn ideal_cells_have_zero_error() {
        let c = CellSpec::default();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(c.sample_programming_error(&mut rng), 0.0);
    }
}
