//! Memristor cell model (Table I, §VII-A).
//!
//! Cells are TaOx devices modelled as resistors during computation.
//! Multi-level cells map level `l ∈ 0..2^bits` to a conductance
//! `g_off + l·Δ` with `Δ = (g_on - g_off)/(2^bits - 1)`; in ADC-count
//! units this contributes `l` plus two non-idealities:
//!
//! * **off-state leakage** — every active row adds
//!   `(2^bits - 1)/(R_off/R_on - 1)` counts regardless of its level,
//!   the §IV-E concern that motivates capping blocks at 512×512 for a
//!   dynamic range of 1.5×10³;
//! * **programming error** — each cell's conductance is off by a
//!   persistent relative factor `ε ~ N(0, σ)` fixed when the cell is
//!   programmed (§VIII-G sweeps σ from 0 to 5%).

use rand::Rng;

/// Physical and programming parameters of one memristor cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// On-state resistance in ohms (Table I: 2 kΩ).
    pub r_on: f64,
    /// Off-state resistance in ohms (Table I: 3 MΩ).
    pub r_off: f64,
    /// Bits stored per cell (the paper uses 1 for robustness; Figures
    /// 12–13 sweep 2).
    pub bits_per_cell: u32,
    /// Relative programming error σ (0.0 = ideal).
    pub programming_sigma: f64,
    /// Read voltage in volts (Table I: 0.2 V).
    pub v_read: f64,
    /// Energy to write one cell, in joules (Table I: 3.91 nJ).
    pub e_write: f64,
    /// Time to write one cell row, in seconds (Table I: 50.88 ns).
    pub t_write: f64,
    /// Device non-idealities beyond Gaussian programming noise
    /// (stuck-at faults, device-to-device spread, retention drift,
    /// endurance wear). Defaults to [`FaultModel::none`].
    pub fault: FaultModel,
}

impl Default for CellSpec {
    /// The Table I TaOx cell: 1-bit, ideal programming.
    fn default() -> Self {
        CellSpec {
            r_on: 2.0e3,
            r_off: 3.0e6,
            bits_per_cell: 1,
            programming_sigma: 0.0,
            v_read: 0.2,
            e_write: 3.91e-9,
            t_write: 50.88e-9,
            fault: FaultModel::none(),
        }
    }
}

impl CellSpec {
    /// Dynamic range `R_off / R_on` (Table I default: 1500).
    pub fn dynamic_range(&self) -> f64 {
        self.r_off / self.r_on
    }

    /// Returns a copy with the dynamic range set by scaling `R_off`
    /// (used by the Figure 12 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is non-finite or ≤ 1: such a ratio would make
    /// [`Self::leak_per_active_row`] NaN/∞ and silently poison every
    /// downstream conductance.
    pub fn with_dynamic_range(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 1.0,
            "dynamic range must be finite and exceed 1, got {ratio}"
        );
        self.r_off = self.r_on * ratio;
        self
    }

    /// Returns a copy with the given bits per cell.
    pub fn with_bits_per_cell(mut self, bits: u32) -> Self {
        assert!((1..=4).contains(&bits), "1..=4 bits per cell supported");
        self.bits_per_cell = bits;
        self
    }

    /// Returns a copy with the given relative programming error σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative, non-finite, or ≥ 1 (a NaN sigma
    /// would propagate NaN into every programmed conductance).
    pub fn with_programming_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && (0.0..1.0).contains(&sigma),
            "programming sigma must be finite and in [0, 1), got {sigma}"
        );
        self.programming_sigma = sigma;
        self
    }

    /// Returns a copy with the given fault model.
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    /// Number of conductance levels (`2^bits_per_cell`).
    pub fn levels(&self) -> u32 {
        1 << self.bits_per_cell
    }

    /// Maximum level value (`2^bits_per_cell - 1`).
    pub fn max_level(&self) -> u32 {
        self.levels() - 1
    }

    /// Leakage per active row in ADC-count units:
    /// `(levels - 1) / (dynamic_range - 1)`.
    pub fn leak_per_active_row(&self) -> f64 {
        f64::from(self.max_level()) / (self.dynamic_range() - 1.0)
    }

    /// Samples a persistent programming error for one cell.
    pub fn sample_programming_error<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.programming_sigma == 0.0 {
            0.0
        } else {
            self.programming_sigma * standard_normal(rng)
        }
    }
}

/// Device non-idealities beyond the paper's Gaussian programming noise:
/// stuck-at faults, device-to-device sigma spread, retention drift, and
/// endurance wear (SIMBRAIN / memristor-MIMO style models).
///
/// The zero model ([`FaultModel::none`], the default) is guaranteed to
/// leave every programmed conductance, every RNG draw, and every read
/// bit-identical to a crossbar without a fault model — the subsystem is
/// strictly pay-for-what-you-use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that a programmed cell is stuck at `G_on` (reads as
    /// the maximum level regardless of the intended value). Sampled
    /// once per explicit cell at program time (seeded Bernoulli).
    pub stuck_on_rate: f64,
    /// Probability that a programmed cell is stuck at `G_off` (reads as
    /// level 0).
    pub stuck_off_rate: f64,
    /// Device-to-device sigma spread: each cell's effective programming
    /// sigma becomes `programming_sigma + d2d_sigma·|N(0,1)|`, modelling
    /// the variance-of-the-variance across devices.
    pub d2d_sigma: f64,
    /// Retention drift coefficient `ν`: a cluster whose operator has
    /// aged `age` writes reads conductances scaled by the deterministic
    /// factor `clamp(1 − ν·ln(1 + age), 0, 1)`.
    pub drift_coefficient: f64,
    /// Endurance aging: each reprogram of a cluster multiplies its
    /// cells' effective sigma by `1 + endurance_sigma_growth·reprograms`.
    pub endurance_sigma_growth: f64,
}

impl FaultModel {
    /// The zero model: no stuck cells, no spread, no drift, no wear.
    pub const fn none() -> Self {
        FaultModel {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            d2d_sigma: 0.0,
            drift_coefficient: 0.0,
            endurance_sigma_growth: 0.0,
        }
    }

    /// True if any non-ideality is switched on.
    pub fn is_active(&self) -> bool {
        self.stuck_on_rate > 0.0
            || self.stuck_off_rate > 0.0
            || self.d2d_sigma > 0.0
            || self.drift_coefficient > 0.0
            || self.endurance_sigma_growth > 0.0
    }

    /// Combined stuck-at probability.
    pub fn stuck_rate(&self) -> f64 {
        self.stuck_on_rate + self.stuck_off_rate
    }

    /// The deterministic retention scale for an operator aged
    /// `write_age` writes: `clamp(1 − ν·ln(1 + age), 0, 1)`. Exactly
    /// `1.0` when the coefficient or the age is zero.
    pub fn drift_factor(&self, write_age: u64) -> f64 {
        if self.drift_coefficient == 0.0 || write_age == 0 {
            return 1.0;
        }
        (1.0 - self.drift_coefficient * (1.0 + write_age as f64).ln()).clamp(0.0, 1.0)
    }

    /// The sigma multiplier after `reprograms` endurance cycles.
    /// Exactly `1.0` when growth or the reprogram count is zero.
    pub fn endurance_scale(&self, reprograms: u64) -> f64 {
        if self.endurance_sigma_growth == 0.0 || reprograms == 0 {
            return 1.0;
        }
        1.0 + self.endurance_sigma_growth * reprograms as f64
    }

    /// Returns a copy with the given stuck-at rates.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are finite, non-negative, and sum to at
    /// most 1.
    pub fn with_stuck_rates(mut self, stuck_on: f64, stuck_off: f64) -> Self {
        assert!(
            stuck_on.is_finite() && stuck_off.is_finite() && stuck_on >= 0.0 && stuck_off >= 0.0,
            "stuck-at rates must be finite and non-negative, got {stuck_on} / {stuck_off}"
        );
        assert!(
            stuck_on + stuck_off <= 1.0,
            "stuck-at rates must sum to at most 1, got {stuck_on} + {stuck_off}"
        );
        self.stuck_on_rate = stuck_on;
        self.stuck_off_rate = stuck_off;
        self
    }

    /// Returns a copy with the given device-to-device sigma spread.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn with_d2d_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "d2d sigma must be finite and non-negative, got {sigma}"
        );
        self.d2d_sigma = sigma;
        self
    }

    /// Returns a copy with the given retention drift coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `nu` is negative or non-finite.
    pub fn with_drift_coefficient(mut self, nu: f64) -> Self {
        assert!(
            nu.is_finite() && nu >= 0.0,
            "drift coefficient must be finite and non-negative, got {nu}"
        );
        self.drift_coefficient = nu;
        self
    }

    /// Returns a copy with the given endurance sigma growth per
    /// reprogram.
    ///
    /// # Panics
    ///
    /// Panics if `growth` is negative or non-finite.
    pub fn with_endurance_sigma_growth(mut self, growth: f64) -> Self {
        assert!(
            growth.is_finite() && growth >= 0.0,
            "endurance sigma growth must be finite and non-negative, got {growth}"
        );
        self.endurance_sigma_growth = growth;
        self
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// Samples a standard normal deviate via Box–Muller (keeps the crate on
/// `rand` alone, without `rand_distr`).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_table1() {
        let c = CellSpec::default();
        assert_eq!(c.r_on, 2.0e3);
        assert_eq!(c.r_off, 3.0e6);
        assert_eq!(c.dynamic_range(), 1500.0);
        assert_eq!(c.bits_per_cell, 1);
        assert_eq!(c.levels(), 2);
    }

    #[test]
    fn leak_is_small_for_single_bit_cells() {
        // The §IV-E design point: 512 active rows at DR 1500 leak less
        // than half an LSB.
        let c = CellSpec::default();
        assert!(512.0 * c.leak_per_active_row() < 0.5);
        // At DR 750 it crosses the threshold only for the biggest arrays.
        let weak = c.with_dynamic_range(750.0);
        assert!(512.0 * weak.leak_per_active_row() > 0.5);
    }

    #[test]
    fn two_bit_cells_leak_three_times_more() {
        let c1 = CellSpec::default();
        let c2 = c1.with_bits_per_cell(2);
        let ratio = c2.leak_per_active_row() / c1.leak_per_active_row();
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn programming_error_statistics() {
        let c = CellSpec::default().with_programming_sigma(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| c.sample_programming_error(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.005, "sigma {}", var.sqrt());
    }

    #[test]
    fn ideal_cells_have_zero_error() {
        let c = CellSpec::default();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(c.sample_programming_error(&mut rng), 0.0);
    }

    #[test]
    #[should_panic(expected = "dynamic range must be finite")]
    fn rejects_nan_dynamic_range() {
        let _ = CellSpec::default().with_dynamic_range(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "dynamic range must be finite")]
    fn rejects_unit_dynamic_range() {
        let _ = CellSpec::default().with_dynamic_range(1.0);
    }

    #[test]
    #[should_panic(expected = "dynamic range must be finite")]
    fn rejects_infinite_dynamic_range() {
        let _ = CellSpec::default().with_dynamic_range(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "programming sigma must be finite")]
    fn rejects_negative_sigma() {
        let _ = CellSpec::default().with_programming_sigma(-0.01);
    }

    #[test]
    #[should_panic(expected = "programming sigma must be finite")]
    fn rejects_nan_sigma() {
        let _ = CellSpec::default().with_programming_sigma(f64::NAN);
    }

    #[test]
    fn fault_model_zero_is_inactive_and_exact() {
        let f = FaultModel::none();
        assert!(!f.is_active());
        assert_eq!(f, FaultModel::default());
        assert_eq!(f.drift_factor(0), 1.0);
        assert_eq!(f.drift_factor(1_000_000), 1.0);
        assert_eq!(f.endurance_scale(0), 1.0);
        assert_eq!(f.endurance_scale(99), 1.0);
        assert_eq!(CellSpec::default().fault, f);
    }

    #[test]
    fn fault_model_builders_activate() {
        let f = FaultModel::none()
            .with_stuck_rates(1e-3, 2e-3)
            .with_d2d_sigma(0.01)
            .with_drift_coefficient(0.02)
            .with_endurance_sigma_growth(0.001);
        assert!(f.is_active());
        assert_eq!(f.stuck_rate(), 3e-3);
        // Drift is deterministic, monotone in age, and clamped.
        assert_eq!(f.drift_factor(0), 1.0);
        let d1 = f.drift_factor(10);
        let d2 = f.drift_factor(1000);
        assert!(d1 < 1.0 && d2 < d1 && d2 >= 0.0);
        // Endurance scale grows linearly with reprograms.
        assert_eq!(f.endurance_scale(1), 1.001);
        assert!((f.endurance_scale(10) - 1.01).abs() < 1e-12);
        // Extreme drift clamps at zero, never negative.
        let g = FaultModel::none().with_drift_coefficient(10.0);
        assert_eq!(g.drift_factor(u64::MAX), 0.0);
    }

    #[test]
    #[should_panic(expected = "stuck-at rates must sum")]
    fn rejects_overfull_stuck_rates() {
        let _ = FaultModel::none().with_stuck_rates(0.7, 0.6);
    }

    #[test]
    #[should_panic(expected = "d2d sigma must be finite")]
    fn rejects_negative_d2d_sigma() {
        let _ = FaultModel::none().with_d2d_sigma(-1e-3);
    }
}
