//! Memristive crossbar cluster simulator.
//!
//! This crate models the analog compute substrate of *Enabling
//! Scientific Computing on Memristive Accelerators* (ISCA 2018):
//!
//! * [`device`] — TaOx memristor cells with dynamic range, multi-level
//!   storage, and persistent programming error (Table I, §VII-A);
//! * [`adc`] — the pipelined SAR ADC with CIC-reduced resolution and
//!   the headstart optimization (§V-B2);
//! * [`crossbar`] — one bit-group crossbar with computational invert
//!   coding, leakage, and RTN upsets;
//! * [`cluster`] — the full cluster of Figure 3: programming
//!   (align → bias → AN-encode → bit-slice), MVM with MSB-first slice
//!   application, AN-checked reduction, and per-row early termination;
//! * [`schedule`] — vertical/diagonal/hybrid activation schedules
//!   (Figure 6);
//! * [`cost`] — analytic latency/energy/area models calibrated to
//!   Table III.
//!
//! # Examples
//!
//! ```
//! use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let entries = vec![(0u16, 0u16, 2.0), (0, 1, -0.5), (1, 1, 4.0)];
//! let spec = ClusterSpec::with_size(64);
//! let cluster = Cluster::program(spec, &entries, &mut rng)?.cluster;
//! let mut x = vec![0.0; 64];
//! x[0] = 1.0;
//! x[1] = 2.0;
//! let result = cluster.mvm(&x, &MvmOptions::default(), &mut rng)?;
//! assert_eq!(result.y[0], 1.0); // 2·1 − 0.5·2
//! assert_eq!(result.y[1], 8.0);
//! # Ok::<(), memsci_xbar::cluster::MvmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adc;
pub mod cluster;
pub mod cost;
pub mod crossbar;
pub mod device;
pub mod schedule;

pub use adc::AdcSpec;
pub use cluster::{
    Cluster, ClusterSpec, MvmError, MvmFault, MvmOptions, MvmResult, ProgramOutcome,
};
pub use cost::{CostModel, WriteModel};
pub use crossbar::Crossbar;
pub use device::{CellSpec, FaultModel};
pub use schedule::{plan, Plan, Policy};
