//! Analytic latency / energy / area models (§V-A), calibrated so the
//! four crossbar sizes reproduce Table III exactly.
//!
//! * **Latency** — the pipelined ADC scans one column per 1.2 GHz clock,
//!   so a crossbar MVM operation over one vector bit slice takes `N`
//!   cycles: 53.3 ns at 64 up to 427 ns at 512 (Table III).
//! * **Energy** — per-column energy decomposes into a base term
//!   (crossbar read, sample-and-hold, drivers, ADC static power), a term
//!   linear in ADC resolution, and a term exponential in ADC resolution;
//!   the coefficients below solve Table III's four points to within
//!   0.1%. ADC headstart scales the resolution-dependent terms by the
//!   fraction of search steps actually taken; a column skipped by early
//!   termination pays only the base term.
//! * **Area** — Table III values for the four deployed sizes, with
//!   power-law interpolation elsewhere.

use crate::adc::AdcSpec;

/// Calibrated energy/latency model for crossbar MVM operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cluster clock in hertz (Table I: 1.2 GHz).
    pub f_clk: f64,
    /// Per-column base energy in joules (crossbar read + S&H + drivers +
    /// ADC static).
    pub e_col_base: f64,
    /// Per-column energy per ADC resolution bit, in joules.
    pub e_col_lin: f64,
    /// Per-column energy per `2^resolution`, in joules.
    pub e_col_exp: f64,
}

impl Default for CostModel {
    /// Coefficients solving Table III:
    /// `E(N)/N = base + lin·r + exp·2^r` with `r = log2(N) - 1`.
    fn default() -> Self {
        CostModel {
            f_clk: 1.2e9,
            e_col_base: 0.0947e-12,
            e_col_lin: 0.0678e-12,
            e_col_exp: 1.2e-16,
        }
    }
}

impl CostModel {
    /// ADC spec for a crossbar of `n` rows (CIC-reduced resolution).
    pub fn adc(&self, n: usize, bits_per_cell: u32) -> AdcSpec {
        AdcSpec::for_crossbar(n, bits_per_cell, self.f_clk, self.e_col_lin * 10.0)
    }

    /// ADC resolution for a crossbar of `n` rows with CIC (§V-B2).
    pub fn resolution(&self, n: usize, bits_per_cell: u32) -> u32 {
        self.adc(n, bits_per_cell).resolution
    }

    /// Energy of one column conversion; `searched_bits` below the full
    /// resolution models ADC headstart.
    pub fn column_energy(&self, n: usize, bits_per_cell: u32, searched_bits: Option<u32>) -> f64 {
        let r = self.resolution(n, bits_per_cell);
        let searched = searched_bits.unwrap_or(r).min(r);
        let duty = if r == 0 {
            0.0
        } else {
            f64::from(searched) / f64::from(r)
        };
        self.e_col_base
            + duty * (self.e_col_lin * f64::from(r) + self.e_col_exp * (2.0f64).powi(r as i32))
    }

    /// Energy charged for a column skipped by early termination: only
    /// the base (static) term.
    pub fn skipped_column_energy(&self) -> f64 {
        self.e_col_base
    }

    /// Energy of one full crossbar MVM operation (all `n` columns, one
    /// vector bit slice) — the Table III "Energy" column.
    pub fn crossbar_op_energy(&self, n: usize, bits_per_cell: u32) -> f64 {
        n as f64 * self.column_energy(n, bits_per_cell, None)
    }

    /// Latency of one crossbar MVM operation (`n` pipelined column
    /// conversions) — the Table III "Latency" column.
    pub fn crossbar_op_latency(&self, n: usize) -> f64 {
        n as f64 / self.f_clk
    }

    /// Crossbar area including its ADC, in mm² (Table III values for the
    /// deployed sizes; power-law interpolation elsewhere).
    pub fn crossbar_area_mm2(&self, n: usize) -> f64 {
        const TABLE: [(usize, f64); 4] = [
            (64, 0.00078),
            (128, 0.00103),
            (256, 0.00162),
            (512, 0.00352),
        ];
        for &(size, area) in &TABLE {
            if n == size {
                return area;
            }
        }
        // Piecewise power-law in log-log space, extrapolating at the
        // ends.
        let (lo, hi) = match n {
            n if n <= 64 => (TABLE[0], TABLE[1]),
            n if n <= 128 => (TABLE[0], TABLE[1]),
            n if n <= 256 => (TABLE[1], TABLE[2]),
            _ => (TABLE[2], TABLE[3]),
        };
        let slope = (hi.1 / lo.1).ln() / (hi.0 as f64 / lo.0 as f64).ln();
        lo.1 * (n as f64 / lo.0 as f64).powf(slope)
    }
}

impl CostModel {
    /// Statistical design-space variant of the crossbar energy (§VII-A:
    /// "resistance determined ... by a statistical approach considering
    /// block density"): the crossbar-array component of the per-column
    /// energy scales with the stored ones density (CIC caps it at 50%),
    /// while the ADC components depend only on the resolution.
    pub fn crossbar_op_energy_statistical(
        &self,
        n: usize,
        bits_per_cell: u32,
        ones_density: f64,
    ) -> f64 {
        let d = ones_density.clamp(0.0, 0.5);
        let r = self.resolution(n, bits_per_cell);
        // Attribute half the base term to the array (conductance-
        // proportional) and half to S&H/drivers/ADC static.
        let array = 0.5 * self.e_col_base * (d / 0.25);
        let fixed = 0.5 * self.e_col_base;
        let adc = self.e_col_lin * f64::from(r) + self.e_col_exp * (2.0f64).powi(r as i32);
        n as f64 * (array + fixed + adc)
    }

    /// §V-A throughput metric: effective element-wise operations per
    /// second for one cluster processing a block of the given density,
    /// assuming `slices` vector bit slices per MVM.
    pub fn cluster_throughput(&self, n: usize, density: f64, slices: usize) -> f64 {
        let nnz = density * (n * n) as f64;
        let latency = slices as f64 * self.crossbar_op_latency(n);
        if latency == 0.0 {
            0.0
        } else {
            nnz / latency
        }
    }

    /// §V-A efficiency metric: effective element-wise operations per
    /// joule for one cluster-MVM, with `crossbars` bit-slice crossbars
    /// active per slice.
    pub fn cluster_ops_per_joule(
        &self,
        n: usize,
        bits_per_cell: u32,
        density: f64,
        slices: usize,
        crossbars: usize,
    ) -> f64 {
        let nnz = density * (n * n) as f64;
        let energy = slices as f64
            * crossbars as f64
            * self.crossbar_op_energy_statistical(n, bits_per_cell, density.min(0.5));
        if energy == 0.0 {
            0.0
        } else {
            nnz / energy
        }
    }
}

/// Crossbar programming (write) cost model (Table I cell parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteModel {
    /// Time to write one crossbar row, in seconds (rows are written
    /// sequentially; the crossbars of a cluster program in parallel).
    pub t_row_write: f64,
    /// Energy per written (switched) cell, in joules.
    pub e_cell_write: f64,
}

impl Default for WriteModel {
    fn default() -> Self {
        WriteModel {
            t_row_write: 50.88e-9,
            e_cell_write: 3.91e-9,
        }
    }
}

impl WriteModel {
    /// Time to program one cluster holding an `n × n` block: `n`
    /// sequential row writes (the 127 bit-slice crossbars write in
    /// parallel).
    pub fn cluster_write_time(&self, n: usize) -> f64 {
        n as f64 * self.t_row_write
    }

    /// Energy to program `set_cells` cells into the on state.
    pub fn write_energy(&self, set_cells: u64) -> f64 {
        set_cells as f64 * self.e_cell_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE3: [(usize, f64, f64); 4] = [
        // size, energy pJ, latency ns
        (64, 28.0, 53.3),
        (128, 65.2, 107.0),
        (256, 150.0, 213.0),
        (512, 342.0, 427.0),
    ];

    #[test]
    fn energy_reproduces_table3() {
        let m = CostModel::default();
        for &(n, pj, _) in &TABLE3 {
            let got = m.crossbar_op_energy(n, 1) * 1e12;
            let err = (got - pj).abs() / pj;
            assert!(err < 0.01, "size {n}: {got:.2} pJ vs {pj} pJ");
        }
    }

    #[test]
    fn latency_reproduces_table3() {
        let m = CostModel::default();
        for &(n, _, ns) in &TABLE3 {
            let got = m.crossbar_op_latency(n) * 1e9;
            let err = (got - ns).abs() / ns;
            assert!(err < 0.01, "size {n}: {got:.2} ns vs {ns} ns");
        }
    }

    #[test]
    fn area_matches_table3_exactly() {
        let m = CostModel::default();
        for &(n, area) in &[
            (64usize, 0.00078),
            (128, 0.00103),
            (256, 0.00162),
            (512, 0.00352),
        ] {
            assert_eq!(m.crossbar_area_mm2(n), area);
        }
    }

    #[test]
    fn area_interpolates_monotonically() {
        let m = CostModel::default();
        let a96 = m.crossbar_area_mm2(96);
        assert!(m.crossbar_area_mm2(64) < a96 && a96 < m.crossbar_area_mm2(128));
        assert!(m.crossbar_area_mm2(1024) > m.crossbar_area_mm2(512));
    }

    #[test]
    fn headstart_reduces_column_energy() {
        let m = CostModel::default();
        let full = m.column_energy(512, 1, None);
        let head = m.column_energy(512, 1, Some(3));
        assert!(head < full);
        assert!(head > m.skipped_column_energy());
    }

    #[test]
    fn skipped_columns_pay_only_base() {
        let m = CostModel::default();
        assert_eq!(m.skipped_column_energy(), m.e_col_base);
    }

    #[test]
    fn write_model_scales_with_rows_and_cells() {
        let w = WriteModel::default();
        assert!((w.cluster_write_time(512) - 512.0 * 50.88e-9).abs() < 1e-15);
        assert_eq!(w.write_energy(1000), 1000.0 * 3.91e-9);
    }
}

#[cfg(test)]
mod sizing_tests {
    use super::*;

    #[test]
    fn statistical_energy_scales_with_density() {
        let m = CostModel::default();
        let lo = m.crossbar_op_energy_statistical(256, 1, 0.05);
        let mid = m.crossbar_op_energy_statistical(256, 1, 0.25);
        let hi = m.crossbar_op_energy_statistical(256, 1, 0.5);
        assert!(lo < mid && mid < hi);
        // At 25% ones the statistical model matches the calibrated
        // Table III value (whose coefficients were fitted on real
        // blocks).
        let table = m.crossbar_op_energy(256, 1);
        assert!((mid - table).abs() / table < 1e-9);
        // Density beyond the CIC cap clamps.
        assert_eq!(hi, m.crossbar_op_energy_statistical(256, 1, 0.9));
    }

    #[test]
    fn dense_blocks_prefer_large_crossbars_sparse_prefer_small() {
        // §V-A: throughput grows with size only when density holds up.
        let m = CostModel::default();
        // Fixed per-block density: bigger crossbars win on throughput.
        let t64 = m.cluster_throughput(64, 0.3, 60);
        let t512 = m.cluster_throughput(512, 0.3, 60);
        assert!(t512 > t64);
        // But a fixed per-row count (density falls with size) favours
        // energy efficiency of small crossbars.
        let e64 = m.cluster_ops_per_joule(64, 1, 20.0 / 64.0, 60, 127);
        let e512 = m.cluster_ops_per_joule(512, 1, 20.0 / 512.0, 60, 127);
        assert!(e64 > e512, "{e64} vs {e512}");
    }
}
