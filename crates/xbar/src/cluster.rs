//! A cluster: the crossbars, reduction network, and buffers that perform
//! IEEE-754-compatible MVM on one matrix block (§III-B, Figure 3).
//!
//! Programming converts a block's double-precision coefficients to
//! aligned fixed point (§IV-A), biases them per block (§IV-C), protects
//! them with the AN code (§IV-E), and bit-slices them across the
//! cluster's crossbars. An MVM applies the incoming vector's bit slices
//! from most to least significant; each slice produces, per matrix row,
//! a reduced partial dot product that is AN-checked, de-biased, and
//! accumulated into a running sum. Rows terminate early once their
//! 53-bit mantissa settles (§IV-B), skipping the remaining conversions.

use memsci_numeric::align::{AlignError, AlignedSlice};
use memsci_numeric::bias::debias_accumulate;
use memsci_numeric::bitslice::SliceSet;
use memsci_numeric::running_sum::{remaining_bound_bit, settled};
use memsci_numeric::{AnCode, Rounding, WideInt};
use rand::Rng;

use crate::adc::headstart_bits;
use crate::cost::{CostModel, WriteModel};
use crate::crossbar::{operand_levels, Crossbar};
use crate::device::CellSpec;

/// Maximum magnitude bits for vector alignment. Vector bit slices stream
/// in time rather than occupying crossbars, so the width is bounded only
/// by the full double exponent range (2046 + 53); early termination
/// keeps the actual slice count data-dependent.
pub const VECTOR_MAX_MAGNITUDE_BITS: usize = 2200;

/// Configuration of one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Crossbar dimension (block edge): 512, 256, 128, or 64 in Table I.
    pub size: usize,
    /// Memristor cell parameters.
    pub cell: CellSpec,
    /// Latency/energy/area model.
    pub cost: CostModel,
    /// Whether operands carry the AN error-correcting code.
    pub an_enabled: bool,
    /// Per-read probability of a random telegraph noise upset (±1 ADC
    /// count) on one column.
    pub rtn_probability: f64,
    /// Maximum aligned magnitude width for the matrix block (117).
    pub max_magnitude_bits: usize,
    /// Operator write age feeding the retention drift model of
    /// `cell.fault` (0 = freshly written, no drift).
    pub write_age: u64,
    /// Endurance cycles this physical cluster has already absorbed;
    /// inflates the effective programming sigma per `cell.fault`.
    pub reprograms: u64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            size: 512,
            cell: CellSpec::default(),
            cost: CostModel::default(),
            an_enabled: true,
            rtn_probability: 0.0,
            max_magnitude_bits: memsci_numeric::align::MAX_MAGNITUDE_BITS,
            write_age: 0,
            reprograms: 0,
        }
    }
}

impl ClusterSpec {
    /// A cluster of the given size with otherwise default parameters.
    pub fn with_size(size: usize) -> Self {
        ClusterSpec {
            size,
            ..Default::default()
        }
    }
}

/// Options controlling one MVM operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvmOptions {
    /// Terminate each row's accumulation as soon as its mantissa settles
    /// (§IV-B). Disabling this is the ablation baseline.
    pub early_termination: bool,
    /// Rounding mode for the final conversion to IEEE-754.
    pub rounding: Rounding,
    /// Record the number of slices each row needed (feeds the
    /// scheduling analysis of Figure 6).
    pub collect_row_profile: bool,
    /// Pre-set the SAR search to the column's maximum possible output
    /// (§V-B2). Disabling it is the ablation baseline: every conversion
    /// searches the full resolution.
    pub adc_headstart: bool,
    /// Raise a typed [`MvmFault`] when the AN code reports a
    /// detected-but-uncorrectable error, instead of silently falling
    /// back to the nearest codeword. Platforms with a repair policy
    /// (reprogram-and-retry) set this; the default keeps the pre-fault
    /// behavior.
    pub fault_on_detection: bool,
}

impl Default for MvmOptions {
    fn default() -> Self {
        MvmOptions {
            early_termination: true,
            rounding: Rounding::TowardNegInf,
            collect_row_profile: false,
            adc_headstart: true,
            fault_on_detection: false,
        }
    }
}

impl MvmOptions {
    /// Extra settled bits required beyond the 53-bit mantissa: directed
    /// truncation needs none, other modes need three (§IV-D).
    pub fn settle_precision(&self) -> u32 {
        match self.rounding {
            Rounding::TowardNegInf => 53,
            _ => 56,
        }
    }
}

/// Result of one cluster MVM.
#[derive(Debug, Clone, PartialEq)]
pub struct MvmResult {
    /// Per-matrix-row dot products in IEEE-754.
    pub y: Vec<f64>,
    /// Energy consumed, in joules.
    pub energy: f64,
    /// Latency, in seconds.
    pub time: f64,
    /// Vector bit slices available (two's-complement width).
    pub slices_total: usize,
    /// Vector bit slices actually applied before all rows settled.
    pub slices_used: usize,
    /// ADC conversions performed.
    pub conversions: u64,
    /// Conversions skipped thanks to early termination.
    pub conversions_skipped: u64,
    /// Conversions whose SAR search was shortened by the ADC headstart
    /// (§V-B2): fewer bits searched than the full resolution.
    pub headstart_hits: u64,
    /// Partial products corrected by the AN code.
    pub an_corrections: u64,
    /// Partial products with detected-but-uncorrectable errors.
    pub an_detections: u64,
    /// AN detections attributable to injected device faults.
    pub faults_detected: u64,
    /// AN corrections attributable to injected device faults.
    pub faults_corrected: u64,
    /// Per-row slice counts (only when requested).
    pub row_slices: Option<Vec<u32>>,
}

/// Outcome of programming a block into a cluster.
#[derive(Debug)]
pub struct ProgramOutcome {
    /// The programmed cluster.
    pub cluster: Cluster,
    /// Entries evicted to satisfy the CIC resolution bound (§V-B2);
    /// they must be handled by the local processor.
    pub evicted: Vec<(u16, u16, f64)>,
}

/// A programmed cluster holding one matrix block.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    exp_base: i32,
    bias_bit: usize,
    stored_bits: usize,
    groups: Vec<Crossbar>,
    row_nnz: Vec<u32>,
    an: Option<AnCode>,
    /// Magnitude bound (bits) of a de-biased partial dot product.
    pm_bits: u32,
    /// The encoded operand table, one entry per programmed cell. The
    /// production fast path reads the columnar `plan` instead; this
    /// table backs the retained per-entry reference kernel
    /// ([`Self::mvm_with_reference`]) the property tests compare
    /// against.
    stored: Vec<WideInt>,
    /// Per output row: the present cells' `(input, stored-table index)`
    /// pairs, backing the reference kernel.
    fast_rows: Vec<Vec<(u32, u32)>>,
    /// Rows with at least one programmed cell, precomputed so each MVM
    /// skips empty rows without rescanning `row_nnz`.
    active_rows: Vec<u32>,
    /// `bias_multiples[m]` is `m` times the encoded bias constant held
    /// in every absent cell: the absent-cell contribution of a slice
    /// with `m` active-but-absent inputs, precomputed for every possible
    /// multiplicity `0..=n` (reference kernel only; the columnar kernel
    /// folds the bias into its accumulator lanes).
    bias_multiples: Vec<WideInt>,
    /// Columnar limb-plane layout and per-slice accounting tables for
    /// the exact fast path, computed once at program time (DESIGN.md
    /// §15).
    plan: SlicePlan,
    write_time: f64,
    write_energy: f64,
    /// Stuck-at cells injected across all bit-group crossbars at
    /// program time.
    stuck_cells: u64,
    /// Whether any device non-ideality from the fault model is live on
    /// this cluster (disables the exact fast path).
    fault_active: bool,
}

/// Stored operands are biased, AN-encoded and at most 127 bits wide
/// ([`Cluster::stored_bits`]), so they always fit two 64-bit limbs.
const MAX_STORED_LIMBS: usize = 2;

/// Program-time columnar limb-plane plan (DESIGN.md §15).
///
/// The exact fast path's per-slice gather reads each active row's
/// stored operands from a contiguous structure-of-arrays limb-major
/// buffer (`planes`) instead of chasing `WideInt` heap pointers, and
/// the headstart/energy accounting reduces to table lookups: every
/// column's SAR start bit `s0 = clamp(bits(level_sum), 1, res)` is a
/// program-time constant, so a slice with popcount `pop` searches
/// `min(s0, qc)` bits with `qc = clamp(bits(lmax·pop), 1, res)` —
/// aggregated per slice from the per-row histograms below.
#[derive(Debug, Default)]
struct SlicePlan {
    /// CSR row pointers over `active_rows` (`active_rows.len() + 1`
    /// entries).
    row_ptr: Vec<u32>,
    /// Flattened input line indices, grouped by active row.
    inputs: Vec<u32>,
    /// Stored-operand limbs, plane-major per row: limb `l` of entry `e`
    /// of active row `ai` sits at `row_ptr[ai]·limbs + l·cnt + e` where
    /// `cnt` is the row's entry count.
    planes: Vec<u64>,
    /// Limbs per stored operand (`1` or [`MAX_STORED_LIMBS`]).
    limbs: usize,
    /// Encoded bias constant limbs, zero-padded to `limbs`.
    bias_limbs: [u64; MAX_STORED_LIMBS],
    /// Flattened per-active-row histograms of the SAR start bit:
    /// `hist[ai·(resolution+1) + s]` counts the row's bit-group columns
    /// with `s0 == s` (`s ∈ 1..=resolution`).
    hist: Vec<u32>,
    /// Per-active-row count of columns with `s0 < resolution`: the
    /// row's headstart hits on slices whose popcount does not cap the
    /// search below the full resolution.
    full_hits: Vec<u32>,
    /// Energy of one conversion searching `s` bits, `s ∈ 1..=resolution`
    /// (index 0 unused). `energy_by_searched[resolution]` is exactly the
    /// full-resolution conversion energy, so headstart-off accounting
    /// uses the same table.
    energy_by_searched: Vec<f64>,
    /// ADC resolution (cached from the cost model).
    resolution: u32,
}

/// Reusable working memory for [`Cluster::mvm_with`].
///
/// All buffers grow on first use and persist across calls, so steady
/// state MVMs against same-shaped clusters allocate nothing. A scratch
/// is plain data — it carries no results between calls and may be moved
/// between clusters freely (every buffer is reset before use).
#[derive(Debug, Default)]
pub struct MvmScratch {
    x_aligned: AlignedSlice,
    slices: SliceSet,
    sums: Vec<WideInt>,
    /// Live (not yet settled) rows as indices into `active_rows`,
    /// compacted in place after each slice so early-terminated rows
    /// cost nothing per slice. Order-preserving: the analog path draws
    /// per-read RNG samples in row order.
    live: Vec<u32>,
    /// Live-set aggregate of the plan's per-row SAR start-bit
    /// histograms, maintained incrementally as rows settle.
    agg_hist: Vec<u64>,
    /// Conversions by searched bits, accumulated as integers across the
    /// whole MVM and converted to energy once at the end.
    counts: Vec<u64>,
    raw: WideInt,
    checked: WideInt,
    row_profile: Vec<u32>,
    warm: bool,
}

/// Event counts and costs of one cluster MVM (the buffer-free subset of
/// [`MvmResult`]; the dot products land in the caller's `y` slice).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MvmStats {
    /// Energy consumed, in joules.
    pub energy: f64,
    /// Latency, in seconds.
    pub time: f64,
    /// Vector bit slices available (two's-complement width).
    pub slices_total: usize,
    /// Vector bit slices actually applied before all rows settled.
    pub slices_used: usize,
    /// ADC conversions performed.
    pub conversions: u64,
    /// Conversions skipped thanks to early termination.
    pub conversions_skipped: u64,
    /// Conversions whose SAR search was shortened by the ADC headstart.
    pub headstart_hits: u64,
    /// Partial products corrected by the AN code.
    pub an_corrections: u64,
    /// Partial products with detected-but-uncorrectable errors.
    pub an_detections: u64,
    /// AN detections attributable to injected device faults (the
    /// cluster carries stuck cells, drift, or d2d spread).
    pub faults_detected: u64,
    /// AN corrections attributable to injected device faults.
    pub faults_corrected: u64,
}

/// A detected-but-uncorrectable error raised as a typed fault instead of
/// silently propagating a garbage partial product
/// ([`MvmOptions::fault_on_detection`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvmFault {
    /// Block-local matrix row whose partial product failed the check.
    pub row: usize,
    /// Vector bit-slice index being applied when the fault surfaced.
    pub slice: usize,
    /// The AN residue that matched no single bit-line error.
    pub syndrome: u64,
}

impl core::fmt::Display for MvmFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "uncorrectable MVM fault at row {}, slice {} (AN syndrome {})",
            self.row, self.slice, self.syndrome
        )
    }
}

impl std::error::Error for MvmFault {}

/// Error returned by [`Cluster::mvm`] / [`Cluster::mvm_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MvmError {
    /// The input vector could not be aligned (non-finite values).
    Align(AlignError),
    /// The AN code detected an uncorrectable error and the caller asked
    /// for faults to be raised.
    Fault(MvmFault),
}

impl core::fmt::Display for MvmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MvmError::Align(e) => write!(f, "{e}"),
            MvmError::Fault(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MvmError {}

impl From<AlignError> for MvmError {
    fn from(e: AlignError) -> Self {
        MvmError::Align(e)
    }
}

impl Cluster {
    /// Programs block `entries` (local coordinates, `(row, col, value)`)
    /// into a cluster.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError`] if the values are non-finite or their
    /// exponent range exceeds the operand width (the blocking
    /// preprocessor prevents both for well-formed inputs).
    ///
    /// # Panics
    ///
    /// Panics if an entry's coordinates fall outside the block.
    pub fn program<R: Rng + ?Sized>(
        spec: ClusterSpec,
        entries: &[(u16, u16, f64)],
        rng: &mut R,
    ) -> Result<ProgramOutcome, AlignError> {
        // Program time, not the SpMV hot path: build-time programming
        // and repair-lane reprograms both land here, so the timeline
        // trace shows each (re)program as its own block.
        let _span = memsci_telemetry::span("cluster_program");
        let n = spec.size;
        let mut entries: Vec<(u16, u16, f64)> = entries.to_vec();
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < n && (c as usize) < n,
                "entry outside the block"
            );
        }
        let mut evicted = Vec::new();
        loop {
            match Self::try_program(&spec, &entries, rng) {
                Ok(cluster) => return Ok(ProgramOutcome { cluster, evicted }),
                Err(ProgramError::Align(e)) => return Err(e),
                Err(ProgramError::CicBoundary { row }) => {
                    // Evict the largest-magnitude entry of the offending
                    // matrix row and retry (§V-B2 corner case).
                    let victim = entries
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.0 as usize == row)
                        .max_by(|a, b| a.1 .2.abs().total_cmp(&b.1 .2.abs()))
                        .map(|(i, _)| i)
                        .expect("boundary column must contain entries");
                    evicted.push(entries.swap_remove(victim));
                }
            }
        }
    }

    fn try_program<R: Rng + ?Sized>(
        spec: &ClusterSpec,
        entries: &[(u16, u16, f64)],
        rng: &mut R,
    ) -> Result<Cluster, ProgramError> {
        let n = spec.size;
        let values: Vec<f64> = entries.iter().map(|&(_, _, v)| v).collect();
        let aligned =
            AlignedSlice::align(&values, spec.max_magnitude_bits).map_err(ProgramError::Align)?;
        let bias_bit = aligned.magnitude_bits();
        let bias = WideInt::pow2(bias_bit);
        let an = spec.an_enabled.then(AnCode::default);
        let encode = |v: &WideInt| match &an {
            Some(code) => code.encode(v),
            None => v.clone(),
        };
        let enc_bias = encode(&bias);
        let stored: Vec<WideInt> = aligned
            .integers()
            .iter()
            .map(|v| encode(&(v + &bias)))
            .collect();
        let stored_bits = stored
            .iter()
            .map(WideInt::bit_len)
            .max()
            .unwrap_or(0)
            .max(enc_bias.bit_len());
        let b = spec.cell.bits_per_cell;
        let group_count = (stored_bits as u32).div_ceil(b) as usize;
        let adc_res = spec.cost.resolution(n, b);

        // Per matrix row: the explicit (input, stored value index) pairs.
        let mut row_entries: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n];
        let mut row_nnz = vec![0u32; n];
        for (idx, &(r, c, _)) in entries.iter().enumerate() {
            row_entries[r as usize].push((u32::from(c), idx));
            row_nnz[r as usize] += 1;
        }
        let level_tables: Vec<Vec<u8>> = stored
            .iter()
            .map(|s| operand_levels(s, b, group_count))
            .collect();
        let bias_levels = operand_levels(&enc_bias, b, group_count);

        let mut groups = Vec::with_capacity(group_count);
        for g in 0..group_count {
            let present: Vec<Vec<(u32, u8)>> = row_entries
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&(input, idx)| (input, level_tables[idx][g]))
                        .collect()
                })
                .collect();
            let xb = Crossbar::program_with(
                n,
                b,
                adc_res,
                &present,
                bias_levels[g],
                &spec.cell,
                spec.write_age,
                spec.reprograms,
                rng,
            )
            .map_err(|e| ProgramError::CicBoundary { row: e.column })?;
            groups.push(xb);
        }

        let stuck_cells: u64 = groups.iter().map(Crossbar::stuck_cells).sum();
        let fault = spec.cell.fault;
        let fault_active = stuck_cells > 0
            || fault.d2d_sigma > 0.0
            || fault.drift_factor(spec.write_age) != 1.0
            || fault.endurance_scale(spec.reprograms) != 1.0;

        if memsci_telemetry::enabled() {
            let inverted: u64 = groups
                .iter()
                .flat_map(|xb| (0..n).map(move |r| u64::from(xb.column_inverted(r))))
                .sum();
            memsci_telemetry::incr(memsci_telemetry::Counter::CicInvertedColumns, inverted);
            memsci_telemetry::incr(memsci_telemetry::Counter::FaultsInjected, stuck_cells);
        }

        // Plan precomputation: everything an MVM needs that depends only
        // on the programmed block is derived once here. Rows reference
        // the stored-operand table by index instead of cloning operands,
        // and the absent-cell bias contribution for every possible
        // active-input multiplicity is tabulated up front.
        let fast_rows: Vec<Vec<(u32, u32)>> = row_entries
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(input, idx)| (input, idx as u32))
                    .collect()
            })
            .collect();
        let active_rows: Vec<u32> = (0..n as u32).filter(|&r| row_nnz[r as usize] > 0).collect();
        let mut bias_multiples = Vec::with_capacity(n + 1);
        for m in 0..=n {
            bias_multiples.push(enc_bias.mul_u64(m as u64));
        }

        // Columnar limb-plane plan: flatten every active row's present
        // operands into one plane-major limb buffer, and tabulate the
        // per-column SAR start bits and per-searched-bits conversion
        // energies so the MVM's accounting never touches the cost model.
        let limbs = stored_bits.div_ceil(64).max(1);
        assert!(
            limbs <= MAX_STORED_LIMBS,
            "stored operands exceed {} limbs",
            MAX_STORED_LIMBS
        );
        let mut row_ptr = Vec::with_capacity(active_rows.len() + 1);
        row_ptr.push(0u32);
        let mut inputs = Vec::new();
        let mut planes = Vec::new();
        for &r in &active_rows {
            let row = &row_entries[r as usize];
            for &(input, _) in row {
                inputs.push(input);
            }
            for l in 0..limbs {
                for &(_, idx) in row {
                    planes.push(stored[idx].magnitude_limbs().get(l).copied().unwrap_or(0));
                }
            }
            row_ptr.push(inputs.len() as u32);
        }
        let mut bias_limbs = [0u64; MAX_STORED_LIMBS];
        for (l, limb) in bias_limbs.iter_mut().enumerate() {
            *limb = enc_bias.magnitude_limbs().get(l).copied().unwrap_or(0);
        }
        let buckets = adc_res as usize + 1;
        let mut hist = vec![0u32; active_rows.len() * buckets];
        let mut full_hits = vec![0u32; active_rows.len()];
        for (ai, &r) in active_rows.iter().enumerate() {
            for xb in &groups {
                let s0 = headstart_bits(xb.column_level_sum(r as usize), adc_res);
                hist[ai * buckets + s0 as usize] += 1;
                if s0 < adc_res {
                    full_hits[ai] += 1;
                }
            }
        }
        let energy_by_searched: Vec<f64> = (0..=adc_res)
            .map(|s| spec.cost.column_energy(n, b, Some(s)))
            .collect();
        let plan = SlicePlan {
            row_ptr,
            inputs,
            planes,
            limbs,
            bias_limbs,
            hist,
            full_hits,
            energy_by_searched,
            resolution: adc_res,
        };

        let write_model = WriteModel::default();
        let set_cells: u64 = groups.iter().map(Crossbar::stored_level_sum).sum();
        let n_bits = WideInt::from(n as u64).bit_len() as u32;
        Ok(Cluster {
            exp_base: aligned.exp_base(),
            bias_bit,
            stored_bits,
            groups,
            row_nnz,
            an,
            pm_bits: bias_bit as u32 + 1 + n_bits,
            stored,
            fast_rows,
            active_rows,
            bias_multiples,
            plan,
            write_time: write_model.cluster_write_time(n),
            write_energy: write_model.write_energy(set_cells),
            stuck_cells,
            fault_active,
            spec: *spec,
        })
    }

    /// Block edge.
    pub fn n(&self) -> usize {
        self.spec.size
    }

    /// The cluster's configuration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Fixed-point LSB exponent of the stored block.
    pub fn exp_base(&self) -> i32 {
        self.exp_base
    }

    /// Width of the stored (biased, AN-encoded) operands in bits — the
    /// "stored bits per cluster" of §VIII-B. At most 127.
    pub fn stored_bits(&self) -> usize {
        self.stored_bits
    }

    /// Bit position of the per-block bias constant (§IV-C).
    pub fn bias_bit(&self) -> usize {
        self.bias_bit
    }

    /// Magnitude bound (bits) of a de-biased partial dot product, used
    /// by the early-termination criterion.
    pub fn partial_magnitude_bits(&self) -> u32 {
        self.pm_bits
    }

    /// Number of bit-group crossbars.
    pub fn crossbar_count(&self) -> usize {
        self.groups.len()
    }

    /// Non-zero entries mapped to each matrix row.
    pub fn row_nnz(&self) -> &[u32] {
        &self.row_nnz
    }

    /// Stuck-at cells injected into this cluster at program time.
    pub fn stuck_cells(&self) -> u64 {
        self.stuck_cells
    }

    /// True when any device non-ideality from the fault model is live
    /// on this cluster (the exact fast path is disabled).
    pub fn fault_active(&self) -> bool {
        self.fault_active
    }

    /// Time to program the cluster, in seconds.
    pub fn write_time(&self) -> f64 {
        self.write_time
    }

    /// Energy to program the cluster, in joules.
    pub fn write_energy(&self) -> f64 {
        self.write_energy
    }

    /// Performs `y = block · x` on the crossbar substrate.
    ///
    /// Convenience form of [`Self::mvm_with`] that allocates a fresh
    /// scratch arena and output vector per call; hot paths should hold a
    /// [`MvmScratch`] and call `mvm_with` directly.
    ///
    /// # Errors
    ///
    /// Returns [`MvmError::Align`] if the vector contains non-finite
    /// values (its exponent range never exceeds
    /// [`VECTOR_MAX_MAGNITUDE_BITS`]), or [`MvmError::Fault`] when
    /// [`MvmOptions::fault_on_detection`] is set and the AN code
    /// detects an uncorrectable error.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the block edge.
    pub fn mvm<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        opts: &MvmOptions,
        rng: &mut R,
    ) -> Result<MvmResult, MvmError> {
        let mut scratch = MvmScratch::default();
        let mut y = vec![0.0; self.n()];
        let stats = self.mvm_with(x, opts, rng, &mut scratch, &mut y)?;
        Ok(MvmResult {
            y,
            energy: stats.energy,
            time: stats.time,
            slices_total: stats.slices_total,
            slices_used: stats.slices_used,
            conversions: stats.conversions,
            conversions_skipped: stats.conversions_skipped,
            headstart_hits: stats.headstart_hits,
            an_corrections: stats.an_corrections,
            an_detections: stats.an_detections,
            faults_detected: stats.faults_detected,
            faults_corrected: stats.faults_corrected,
            row_slices: opts
                .collect_row_profile
                .then(|| std::mem::take(&mut scratch.row_profile)),
        })
    }

    /// Performs `y = block · x` with caller-owned working memory.
    ///
    /// Identical in results and cost accounting to [`Self::mvm`], but
    /// every intermediate — the aligned vector, its bit slices, the
    /// per-row running sums, and the reduction/decoder words — lives in
    /// `scratch`, so repeated MVMs allocate nothing once the arena is
    /// warm. The dot products are written into `y` (fully overwritten;
    /// inactive rows become `0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`MvmError::Align`] if the vector contains non-finite
    /// values, or [`MvmError::Fault`] when
    /// [`MvmOptions::fault_on_detection`] is set and the AN code
    /// detects an uncorrectable error (event counts accumulated up to
    /// the fault are flushed to telemetry; `y` holds partial data). On
    /// error `scratch` holds no live data and may be reused.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differs from the block edge.
    pub fn mvm_with<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        opts: &MvmOptions,
        rng: &mut R,
        scratch: &mut MvmScratch,
        y: &mut [f64],
    ) -> Result<MvmStats, MvmError> {
        self.mvm_with_impl(x, opts, rng, scratch, y, false)
    }

    /// As [`Self::mvm_with`], but the exact fast path gathers through
    /// the retained per-entry reference kernel instead of the columnar
    /// limb-plane kernel. The two are bitwise identical in results and
    /// accounting; the property tests use this as their oracle.
    #[doc(hidden)]
    pub fn mvm_with_reference<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        opts: &MvmOptions,
        rng: &mut R,
        scratch: &mut MvmScratch,
        y: &mut [f64],
    ) -> Result<MvmStats, MvmError> {
        self.mvm_with_impl(x, opts, rng, scratch, y, true)
    }

    fn mvm_with_impl<R: Rng + ?Sized>(
        &self,
        x: &[f64],
        opts: &MvmOptions,
        rng: &mut R,
        scratch: &mut MvmScratch,
        y: &mut [f64],
        reference_kernel: bool,
    ) -> Result<MvmStats, MvmError> {
        let n = self.n();
        assert_eq!(x.len(), n, "vector length must match the block edge");
        assert_eq!(y.len(), n, "output length must match the block edge");
        memsci_telemetry::incr(memsci_telemetry::Counter::PlanHits, 1);
        if scratch.warm {
            memsci_telemetry::incr(memsci_telemetry::Counter::ScratchReuse, 1);
        }
        y.fill(0.0);
        scratch.x_aligned.align_into(x, VECTOR_MAX_MAGNITUDE_BITS)?;
        scratch.warm = true;
        let precision = opts.settle_precision();

        let mut stats = MvmStats::default();
        scratch.row_profile.clear();
        if opts.collect_row_profile {
            scratch.row_profile.resize(n, 0);
        }
        if self.active_rows.is_empty() || scratch.x_aligned.magnitude_bits() == 0 {
            return Ok(stats);
        }

        let xw = scratch.x_aligned.magnitude_bits() + 1; // two's-complement width
        scratch
            .slices
            .from_twos_complement_into(scratch.x_aligned.integers(), xw);
        stats.slices_total = xw;

        scratch.sums.resize_with(n, WideInt::zero);
        for &r in &self.active_rows {
            scratch.sums[r as usize].set_zero();
        }
        let active_total = self.active_rows.len();
        scratch.live.clear();
        scratch.live.extend(0..active_total as u32);
        let groups = self.groups.len() as u64;

        // Accounting state: `column_level_sum(r)` is program-time
        // constant, so per-conversion searched-bits reduce to the plan's
        // per-row histograms aggregated over the live set, and energy to
        // integer conversion counts by searched bits — converted to f64
        // once at the end (`finish_energy`). Identical counts on the
        // fast and analog paths: the analog reads' searched bits are
        // deterministic (noise-independent).
        let resolution = self.plan.resolution;
        let buckets = resolution as usize + 1;
        scratch.agg_hist.clear();
        scratch.agg_hist.resize(buckets, 0);
        let mut agg_full_hits = 0u64;
        if opts.adc_headstart {
            for &ai in &scratch.live {
                let h = &self.plan.hist[ai as usize * buckets..(ai as usize + 1) * buckets];
                for (agg, &c) in scratch.agg_hist.iter_mut().zip(h) {
                    *agg += u64::from(c);
                }
                agg_full_hits += u64::from(self.plan.full_hits[ai as usize]);
            }
        }
        scratch.counts.clear();
        scratch.counts.resize(buckets, 0);
        let slice_latency = self.spec.cost.crossbar_op_latency(n);
        let lmax = u64::from(self.spec.cell.max_level());

        for k in (0..xw).rev() {
            stats.slices_used += 1;
            stats.time += slice_latency;
            let active_words = scratch.slices.slice_words(k);
            let pop = scratch.slices.popcount(k);
            let negative_weight = scratch.slices.weight_is_negative(k);
            let live_n = scratch.live.len() as u64;
            // Rows already settled skip their conversions, paying only
            // the static column energy; the live list keeps them out of
            // the per-row loop entirely.
            stats.conversions_skipped += (active_total as u64 - live_n) * groups;
            stats.conversions += live_n * groups;
            if opts.adc_headstart {
                // Each live column searches min(s0, qc) bits this slice.
                let qc = headstart_bits(lmax * pop, resolution);
                let mut below = 0u64;
                for s in 1..qc as usize {
                    scratch.counts[s] += scratch.agg_hist[s];
                    below += scratch.agg_hist[s];
                }
                scratch.counts[qc as usize] += live_n * groups - below;
                stats.headstart_hits += if qc < resolution {
                    live_n * groups
                } else {
                    agg_full_hits
                };
            } else {
                scratch.counts[resolution as usize] += live_n * groups;
            }
            // Exact fast path: with ideal programming, no RTN, and a
            // leak below half an LSB, every group's ADC count is exact,
            // so the shift-and-add reduction provably equals the direct
            // sum of the active encoded operands (absent cells all hold
            // the encoded bias). This skips the per-group reads without
            // changing a single bit of the result.
            let fast_exact = self.spec.cell.programming_sigma == 0.0
                && self.spec.rtn_probability == 0.0
                && !self.fault_active
                && self.spec.cell.leak_per_active_row() * (pop as f64) < 0.499;

            let mut write = 0usize;
            for i in 0..scratch.live.len() {
                let ai = scratch.live[i] as usize;
                let r = self.active_rows[ai] as usize;
                if opts.collect_row_profile {
                    scratch.row_profile[r] += 1;
                }
                if fast_exact {
                    if reference_kernel {
                        self.gather_reference(r, active_words, pop, &mut scratch.raw);
                    } else {
                        self.gather_columnar(ai, active_words, pop, &mut scratch.raw);
                    }
                } else {
                    // Analog path: per-group reads with noise, leak, and
                    // ADC quantization; accumulate in two i128 lanes
                    // (shift < 64 and >= 64) and combine once.
                    let mut lane_lo: i128 = 0;
                    let mut lane_hi: i128 = 0;
                    for (g, xb) in self.groups.iter().enumerate() {
                        let read = xb.read_column(
                            r,
                            active_words,
                            pop as u32,
                            &self.spec.cell,
                            self.spec.rtn_probability,
                            rng,
                        );
                        let shift = g as u32 * self.spec.cell.bits_per_cell;
                        if shift < 64 {
                            lane_lo += i128::from(read.contribution) << shift;
                        } else {
                            lane_hi += i128::from(read.contribution) << (shift - 64);
                        }
                    }
                    scratch.raw.set_zero();
                    scratch.raw.add_shl_i128_assign(lane_lo, 0);
                    scratch.raw.add_shl_i128_assign(lane_hi, 64);
                }
                // AN check / correction (§IV-E), applied after reduction
                // and before leading-one detection.
                let checked: &WideInt = match &self.an {
                    None => &scratch.raw,
                    Some(code) => match code.decode_into(&scratch.raw, &mut scratch.checked) {
                        Ok(correction) => {
                            if correction.is_some() {
                                stats.an_corrections += 1;
                                if self.fault_active {
                                    stats.faults_corrected += 1;
                                }
                            }
                            &scratch.checked
                        }
                        Err(e) => {
                            stats.an_detections += 1;
                            if self.fault_active {
                                stats.faults_detected += 1;
                            }
                            if opts.fault_on_detection {
                                // Surface the fault instead of
                                // propagating a garbage product; the
                                // work done so far still counts.
                                self.finish_energy(&mut stats, scratch);
                                self.flush_counters(&stats);
                                return Err(MvmError::Fault(MvmFault {
                                    row: r,
                                    slice: k,
                                    syndrome: e.syndrome,
                                }));
                            }
                            nearest_multiple_into(
                                &scratch.raw,
                                code.constant(),
                                &mut scratch.checked,
                            );
                            &scratch.checked
                        }
                    },
                };
                debias_accumulate(
                    &mut scratch.sums[r],
                    checked,
                    self.bias_bit,
                    pop,
                    k as u32,
                    negative_weight,
                );
                if opts.early_termination
                    && k > 0
                    && settled(
                        &scratch.sums[r],
                        remaining_bound_bit(k as u32 - 1, self.pm_bits),
                        precision,
                        opts.rounding,
                    )
                {
                    // Settled: drop the row from the live aggregates;
                    // the in-place compaction below removes it from the
                    // live list while preserving row order.
                    if opts.adc_headstart {
                        let h = &self.plan.hist[ai * buckets..(ai + 1) * buckets];
                        for (agg, &c) in scratch.agg_hist.iter_mut().zip(h) {
                            *agg -= u64::from(c);
                        }
                        agg_full_hits -= u64::from(self.plan.full_hits[ai]);
                    }
                } else {
                    scratch.live[write] = ai as u32;
                    write += 1;
                }
            }
            scratch.live.truncate(write);
            if opts.early_termination && scratch.live.is_empty() {
                break;
            }
        }

        let out_exp = self.exp_base + scratch.x_aligned.exp_base();
        for &r in &self.active_rows {
            let r = r as usize;
            y[r] = scratch.sums[r].to_f64_with_exp(out_exp, opts.rounding);
        }
        self.finish_energy(&mut stats, scratch);
        self.flush_counters(&stats);
        Ok(stats)
    }

    /// Converts the MVM's integer conversion counts into joules, in one
    /// fixed summation order (skipped conversions, then searched-bits
    /// buckets ascending) so the energy is deterministic and identical
    /// across the fast, analog, and reference paths.
    fn finish_energy(&self, stats: &mut MvmStats, scratch: &MvmScratch) {
        let mut energy = stats.conversions_skipped as f64 * self.spec.cost.skipped_column_energy();
        for (count, e) in scratch
            .counts
            .iter()
            .zip(&self.plan.energy_by_searched)
            .skip(1)
        {
            energy += *count as f64 * e;
        }
        stats.energy = energy;
    }

    /// Columnar limb-plane gather: the slice-`k` partial sum of active
    /// row `ai` as one branch-free masked pass over the plan's
    /// plane-major limbs, accumulated in split 32-bit lanes (no carries
    /// inside the loop; row degree and popcount keep every lane far
    /// below overflow) and committed to `raw` with a single
    /// normalization. Bitwise identical to [`Self::gather_reference`]:
    /// both compute the same exact integer
    /// `Σ_present stored + absent·bias`.
    #[inline]
    fn gather_columnar(&self, ai: usize, active_words: &[u64], pop: u64, raw: &mut WideInt) {
        let plan = &self.plan;
        let start = plan.row_ptr[ai] as usize;
        let end = plan.row_ptr[ai + 1] as usize;
        let cnt = end - start;
        let inputs = &plan.inputs[start..end];
        let base = start * plan.limbs;
        let mut lo = [0u64; MAX_STORED_LIMBS];
        let mut hi = [0u64; MAX_STORED_LIMBS];
        let mut present = 0u64;
        if plan.limbs == 2 {
            let p0 = &plan.planes[base..base + cnt];
            let p1 = &plan.planes[base + cnt..base + 2 * cnt];
            for ((&input, &w0), &w1) in inputs.iter().zip(p0).zip(p1) {
                let bit = active_words[input as usize / 64] >> (input % 64) & 1;
                let mask = bit.wrapping_neg();
                present += bit;
                let w0 = w0 & mask;
                let w1 = w1 & mask;
                lo[0] += w0 & 0xFFFF_FFFF;
                hi[0] += w0 >> 32;
                lo[1] += w1 & 0xFFFF_FFFF;
                hi[1] += w1 >> 32;
            }
        } else {
            let p0 = &plan.planes[base..base + cnt];
            for (&input, &w0) in inputs.iter().zip(p0) {
                let bit = active_words[input as usize / 64] >> (input % 64) & 1;
                let mask = bit.wrapping_neg();
                present += bit;
                let w0 = w0 & mask;
                lo[0] += w0 & 0xFFFF_FFFF;
                hi[0] += w0 >> 32;
            }
        }
        // Absent active inputs each contribute the encoded bias; fold it
        // into the lanes as one multiply per limb half.
        let absent = pop - present;
        let mut limbs_out = [0u64; MAX_STORED_LIMBS + 1];
        let mut carry: u128 = 0;
        for l in 0..plan.limbs {
            let lane_lo = lo[l] + (plan.bias_limbs[l] & 0xFFFF_FFFF) * absent;
            let lane_hi = hi[l] + (plan.bias_limbs[l] >> 32) * absent;
            let t = carry + lane_lo as u128 + ((lane_hi as u128) << 32);
            limbs_out[l] = t as u64;
            carry = t >> 64;
        }
        limbs_out[plan.limbs] = carry as u64;
        raw.assign_limbs_unsigned(&limbs_out[..plan.limbs + 1]);
    }

    /// The retained naive per-entry gather (the pre-columnar fast path):
    /// walks the row's `(input, stored index)` pairs and accumulates
    /// whole `WideInt` operands. Kept as the property-test oracle for
    /// [`Self::gather_columnar`].
    fn gather_reference(&self, r: usize, active_words: &[u64], pop: u64, raw: &mut WideInt) {
        let mut present_active = 0u64;
        raw.set_zero();
        for &(input, idx) in &self.fast_rows[r] {
            if active_words[input as usize / 64] >> (input % 64) & 1 == 1 {
                raw.add_shl_assign(&self.stored[idx as usize], 0, false);
                present_active += 1;
            }
        }
        let absent_active = pop - present_active;
        if absent_active > 0 {
            raw.add_shl_assign(&self.bias_multiples[absent_active as usize], 0, false);
        }
    }

    /// Publishes one MVM's event counts to the global telemetry sink.
    /// AN corrections/detections and bias removals are counted at their
    /// source in `memsci-numeric`, so they are not flushed here.
    fn flush_counters(&self, stats: &MvmStats) {
        use memsci_telemetry::{incr, Counter};
        if !memsci_telemetry::enabled() {
            return;
        }
        incr(Counter::AdcConversions, stats.conversions);
        incr(Counter::AdcConversionsSkipped, stats.conversions_skipped);
        incr(Counter::AdcHeadstartHits, stats.headstart_hits);
        incr(Counter::SlicesApplied, stats.slices_used as u64);
        incr(
            Counter::SlicesSkipped,
            stats.slices_total.saturating_sub(stats.slices_used) as u64,
        );
        incr(
            Counter::xbar_activations_for_size(self.spec.size),
            stats.slices_used as u64 * self.groups.len() as u64,
        );
        incr(Counter::FaultsDetected, stats.faults_detected);
        incr(Counter::FaultsCorrected, stats.faults_corrected);
    }
}

/// Rounds a word to the nearest multiple of `a` and divides, writing the
/// quotient into `out`'s reused buffer — the best-effort fallback when
/// the AN code detects an uncorrectable error.
fn nearest_multiple_into(word: &WideInt, a: u64, out: &mut WideInt) {
    let r = word.divrem_u64_into(a, out);
    if r.unsigned_abs() * 2 > a {
        // Round away from zero: the remainder carries the dividend sign.
        out.add_shl_u64_assign(1, 0, r < 0);
    }
}

#[derive(Debug)]
enum ProgramError {
    Align(AlignError),
    CicBoundary { row: usize },
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_numeric::FloatParts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    /// Exact dot product oracle, rounded toward −∞ to 53 bits.
    fn exact_dot_floor(pairs: &[(f64, f64)]) -> f64 {
        let mut min_exp = i32::MAX;
        let mut terms = Vec::new();
        for &(a, x) in pairs {
            let pa = FloatParts::decompose(a).unwrap();
            let px = FloatParts::decompose(x).unwrap();
            if pa.is_zero() || px.is_zero() {
                continue;
            }
            terms.push((
                pa.signed_mantissa() * px.signed_mantissa(),
                pa.exponent + px.exponent,
            ));
            min_exp = min_exp.min(pa.exponent + px.exponent);
        }
        let mut sum = WideInt::zero();
        for (m, e) in terms {
            sum += &m.shl((e - min_exp) as u32);
        }
        sum.to_f64_with_exp(min_exp, Rounding::TowardNegInf)
    }

    fn dense_block(n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<(u16, u16, f64)> {
        let mut out = Vec::new();
        for r in 0..n {
            for c in 0..n {
                let v = f(r, c);
                if v != 0.0 {
                    out.push((r as u16, c as u16, v));
                }
            }
        }
        out
    }

    #[test]
    fn mvm_matches_exact_floor_dot_products() {
        let n = 16;
        let entries = dense_block(n, |r, c| {
            if (r + 2 * c) % 3 == 0 {
                ((r * n + c) as f64 - 100.0) * 0.037
            } else {
                0.0
            }
        });
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let outcome = Cluster::program(spec, &entries, &mut rng()).unwrap();
        assert!(outcome.evicted.is_empty());
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) - 7.5) * 0.21).collect();
        let res = outcome
            .cluster
            .mvm(&x, &MvmOptions::default(), &mut rng())
            .unwrap();
        for r in 0..n {
            let pairs: Vec<(f64, f64)> = entries
                .iter()
                .filter(|e| e.0 as usize == r)
                .map(|&(_, c, v)| (v, x[c as usize]))
                .collect();
            let want = exact_dot_floor(&pairs);
            assert_eq!(res.y[r], want, "row {r}");
        }
        assert!(res.an_corrections == 0 && res.an_detections == 0);
    }

    #[test]
    fn early_termination_preserves_results() {
        let n = 16;
        let entries = dense_block(n, |r, c| 1.0 + ((r * 31 + c * 17) % 97) as f64 * 0.125);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        // A vector with a ~36-binary-order dynamic range: plenty of
        // slices below the point where every row's mantissa settles.
        let x: Vec<f64> = (0..n)
            .map(|i| (1.0 + i as f64 * 0.3) * (2.0f64).powi((i as i32 % 6) * 6 - 15))
            .collect();
        let with = cluster.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap();
        let without = cluster
            .mvm(
                &x,
                &MvmOptions {
                    early_termination: false,
                    ..Default::default()
                },
                &mut rng(),
            )
            .unwrap();
        assert_eq!(with.y, without.y);
        assert!(with.slices_used < without.slices_used);
        assert!(with.energy < without.energy);
        assert!(with.conversions < without.conversions);
    }

    #[test]
    fn empty_rows_cost_nothing_and_yield_zero() {
        let n = 8;
        let entries = vec![(1u16, 0u16, 2.0), (1, 3, -1.5)];
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let x = vec![1.0; n];
        let res = cluster.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap();
        assert_eq!(res.y[0], 0.0);
        assert_eq!(res.y[1], 0.5);
        assert!(res.y[2..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_vector_is_free() {
        let n = 8;
        let entries = vec![(0u16, 0u16, 1.0)];
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let res = cluster
            .mvm(&vec![0.0; n], &MvmOptions::default(), &mut rng())
            .unwrap();
        assert_eq!(res.slices_used, 0);
        assert_eq!(res.conversions, 0);
        assert!(res.y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rtn_upsets_are_corrected_by_the_an_code() {
        let n = 16;
        let entries = dense_block(n, |r, c| ((r + c) % 5) as f64 - 2.0);
        // Ideal programming is deterministic, so a clean and a noisy
        // cluster built from the same seed hold identical patterns.
        let clean_spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let clean = Cluster::program(clean_spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let noisy_spec = ClusterSpec {
            size: n,
            rtn_probability: 1e-4,
            ..Default::default()
        };
        let noisy = Cluster::program(noisy_spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.5).collect();
        let reference = clean.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap().y;
        let mut r = rng();
        let mut corrections = 0u64;
        let mut clean_runs = 0u32;
        let mut matching_runs = 0u32;
        for _ in 0..20 {
            let res = noisy.mvm(&x, &MvmOptions::default(), &mut r).unwrap();
            corrections += res.an_corrections;
            if res.an_detections == 0 {
                clean_runs += 1;
                if res.y == reference {
                    matching_runs += 1;
                }
            }
        }
        assert!(corrections > 0, "expected some RTN upsets to be corrected");
        // Single upsets are always corrected; only the rare multi-upset
        // partial products (which usually raise a detection) can slip.
        assert!(
            matching_runs + 2 >= clean_runs,
            "corrected runs should match the clean reference: {matching_runs}/{clean_runs}"
        );
        assert!(matching_runs > 0);
    }

    #[test]
    fn disabling_an_lets_errors_through() {
        let n = 16;
        let entries = dense_block(n, |r, c| ((r * c) % 7) as f64 + 1.0);
        let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let clean = {
            let spec = ClusterSpec {
                size: n,
                ..Default::default()
            };
            let cluster = Cluster::program(spec, &entries, &mut rng())
                .unwrap()
                .cluster;
            cluster
                .mvm(&x, &MvmOptions::default(), &mut rng())
                .unwrap()
                .y
        };
        let spec = ClusterSpec {
            size: n,
            an_enabled: false,
            rtn_probability: 0.05,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let mut r = rng();
        let mut diverged = false;
        for _ in 0..10 {
            let res = cluster.mvm(&x, &MvmOptions::default(), &mut r).unwrap();
            diverged |= res.y != clean;
        }
        assert!(diverged, "uncoded cluster should show RTN errors");
    }

    #[test]
    fn wide_exponent_vectors_terminate_early() {
        // A vector spanning ~180 binary orders of magnitude: naive
        // fixed-point would need ~240 slices, early termination needs
        // far fewer.
        let n = 8;
        let entries = dense_block(n, |_, _| 1.5);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let x: Vec<f64> = (0..n).map(|i| (2.0f64).powi(-(i as i32) * 25)).collect();
        let res = cluster.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap();
        assert!(res.slices_total > 200, "total {}", res.slices_total);
        assert!(res.slices_used < 120, "used {}", res.slices_used);
        // Results still match the exact oracle.
        for r in 0..n {
            let pairs: Vec<(f64, f64)> = x.iter().map(|&xi| (1.5, xi)).collect();
            assert_eq!(res.y[r], exact_dot_floor(&pairs), "row {r}");
        }
    }

    #[test]
    fn rounding_modes_bracket_floor_results() {
        let n = 8;
        let entries = dense_block(n, |r, c| ((r * 13 + c * 7) % 11) as f64 * 0.3 - 1.0);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        let x: Vec<f64> = (0..n).map(|i| 0.1 + i as f64 * 0.7).collect();
        let down = cluster.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap();
        let up = cluster
            .mvm(
                &x,
                &MvmOptions {
                    rounding: Rounding::TowardPosInf,
                    ..Default::default()
                },
                &mut rng(),
            )
            .unwrap();
        let near = cluster
            .mvm(
                &x,
                &MvmOptions {
                    rounding: Rounding::NearestEven,
                    ..Default::default()
                },
                &mut rng(),
            )
            .unwrap();
        for r in 0..n {
            assert!(down.y[r] <= up.y[r], "row {r}");
            assert!(down.y[r] <= near.y[r] && near.y[r] <= up.y[r], "row {r}");
        }
    }

    #[test]
    fn eviction_handles_cic_boundary() {
        // Construct a block whose bias plane forces a boundary: with one
        // row holding exactly n/2 present entries whose top stored bit
        // is 1 and the other half absent with const 0 at that plane.
        // Easier: randomized stress — program many random sparse blocks
        // and check the invariant that programming always succeeds with
        // evictions reported.
        let mut r = rng();
        use rand::Rng as _;
        for trial in 0..20 {
            let n = 8;
            let mut entries = Vec::new();
            for row in 0..n {
                for col in 0..n {
                    if r.gen::<f64>() < 0.5 {
                        entries.push((row as u16, col as u16, r.gen_range(-4.0..4.0)));
                    }
                }
            }
            let spec = ClusterSpec {
                size: n,
                ..Default::default()
            };
            let outcome = Cluster::program(spec, &entries, &mut r).unwrap();
            let total = outcome
                .cluster
                .row_nnz()
                .iter()
                .map(|&v| v as usize)
                .sum::<usize>()
                + outcome.evicted.len();
            assert_eq!(total, entries.len(), "trial {trial}: entries conserved");
        }
    }

    #[test]
    fn stored_bits_fit_the_cluster() {
        let n = 16;
        // Values spanning the full 64-bit pad range.
        let entries = dense_block(n, |r, c| {
            (1.0 + (r as f64) * 0.01) * (2.0f64).powi(((r * n + c) % 64) as i32)
        });
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        assert!(
            cluster.stored_bits() <= 127,
            "stored bits {}",
            cluster.stored_bits()
        );
        assert!(cluster.crossbar_count() <= 127);
    }

    #[test]
    fn write_costs_scale_with_content() {
        let n = 16;
        let sparse = vec![(0u16, 0u16, 1.0)];
        let dense = dense_block(n, |r, c| 1.0 + ((r * 5 + c * 3) % 9) as f64 * 0.37);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let c1 = Cluster::program(spec, &sparse, &mut rng()).unwrap().cluster;
        let c2 = Cluster::program(spec, &dense, &mut rng()).unwrap().cluster;
        assert!(c2.write_energy() > c1.write_energy());
        assert_eq!(c1.write_time(), c2.write_time()); // row-parallel writes
    }

    #[test]
    fn stuck_faults_raise_typed_mvm_faults() {
        use crate::device::FaultModel;
        let n = 16;
        let entries = dense_block(n, |r, c| 1.0 + ((r * 3 + c) % 7) as f64);
        let spec = ClusterSpec {
            size: n,
            cell: CellSpec::default().with_fault(FaultModel::none().with_stuck_rates(0.15, 0.15)),
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        assert!(cluster.fault_active());
        assert!(cluster.stuck_cells() > 0);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
        // Default options absorb detections via the nearest-codeword
        // fallback and attribute them to the fault subsystem.
        let res = cluster.mvm(&x, &MvmOptions::default(), &mut rng()).unwrap();
        assert!(
            res.faults_detected > 0,
            "a one-third-stuck cluster must trip AN detections"
        );
        assert_eq!(res.faults_detected, res.an_detections);
        assert_eq!(res.faults_corrected, res.an_corrections);
        // With fault_on_detection the same detection surfaces as a
        // typed fault instead.
        let opts = MvmOptions {
            fault_on_detection: true,
            ..Default::default()
        };
        match cluster.mvm(&x, &opts, &mut rng()) {
            Err(MvmError::Fault(f)) => {
                assert!(f.row < n);
                assert!(f.syndrome > 0);
            }
            other => panic!("expected a typed MVM fault, got {other:?}"),
        }
    }

    #[test]
    fn fault_free_clusters_never_attribute_faults() {
        let n = 16;
        let entries = dense_block(n, |r, c| ((r + c) % 5) as f64 - 2.0);
        // Heavy RTN produces AN detections, but none are device faults
        // and fault_on_detection must not fire on a fault-free cluster
        // unless an uncorrectable RTN pattern really occurs; default
        // options must attribute zero faults either way.
        let spec = ClusterSpec {
            size: n,
            rtn_probability: 0.05,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut rng())
            .unwrap()
            .cluster;
        assert!(!cluster.fault_active());
        assert_eq!(cluster.stuck_cells(), 0);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut r = rng();
        for _ in 0..10 {
            let res = cluster.mvm(&x, &MvmOptions::default(), &mut r).unwrap();
            assert_eq!(res.faults_detected, 0);
            assert_eq!(res.faults_corrected, 0);
        }
    }

    #[test]
    fn cic_stores_uniform_dense_blocks_cheaply() {
        // A block where every coefficient is identical produces all-ones
        // or all-zeros bit planes; CIC inverts the dense planes, so the
        // stored pattern is almost empty.
        let n = 16;
        let uniform = dense_block(n, |_, _| 1.0);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let c = Cluster::program(spec, &uniform, &mut rng())
            .unwrap()
            .cluster;
        let varied = dense_block(n, |r, c| 1.0 + ((r * 5 + c * 3) % 9) as f64 * 0.37);
        let cv = Cluster::program(spec, &varied, &mut rng()).unwrap().cluster;
        assert!(c.write_energy() < cv.write_energy());
    }
}

#[cfg(test)]
mod fast_path_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The exact fast path and the analog per-group path must agree bit
    /// for bit (and in their cost accounting) when devices are ideal.
    /// An RTN probability too small to ever fire forces the slow path
    /// on an otherwise identical cluster.
    #[test]
    fn fast_path_matches_analog_path_exactly() {
        let n = 16;
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if (r * 7 + c * 3) % 4 != 0 {
                    entries.push((
                        r as u16,
                        c as u16,
                        ((r * 13 + c * 5) % 19) as f64 * 0.31 - 2.0,
                    ));
                }
            }
        }
        let fast_spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let slow_spec = ClusterSpec {
            size: n,
            rtn_probability: 1e-300,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let fast = Cluster::program(fast_spec, &entries, &mut rng)
            .unwrap()
            .cluster;
        let mut rng = StdRng::seed_from_u64(5);
        let slow = Cluster::program(slow_spec, &entries, &mut rng)
            .unwrap()
            .cluster;
        let x: Vec<f64> = (0..n)
            .map(|i| (0.4 + i as f64 * 0.17) * (2.0f64).powi((i as i32 % 5) * 3 - 6))
            .collect();
        let rf = fast.mvm(&x, &MvmOptions::default(), &mut rng).unwrap();
        let rs = slow.mvm(&x, &MvmOptions::default(), &mut rng).unwrap();
        assert_eq!(rf.y, rs.y);
        assert_eq!(rf.conversions, rs.conversions);
        assert_eq!(rf.slices_used, rs.slices_used);
        assert!((rf.energy - rs.energy).abs() < 1e-18 * rs.energy.max(1e-30));
    }

    /// A warm scratch arena must be invisible: the 2nd..Nth `mvm_with`
    /// against reused buffers is bit-identical to a fresh `mvm`, on the
    /// exact fast path, the analog path, and with live RTN noise.
    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let n = 16;
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if (r * 5 + c) % 3 != 0 {
                    entries.push((
                        r as u16,
                        c as u16,
                        ((r * 11 + c * 7) % 13) as f64 * 0.23 - 1.4,
                    ));
                }
            }
        }
        for rtn in [0.0, 1e-300, 1e-3] {
            let spec = ClusterSpec {
                size: n,
                rtn_probability: rtn,
                ..Default::default()
            };
            let cluster = Cluster::program(spec, &entries, &mut StdRng::seed_from_u64(3))
                .unwrap()
                .cluster;
            let opts = MvmOptions {
                collect_row_profile: true,
                ..Default::default()
            };
            let mut scratch = MvmScratch::default();
            let mut y = vec![0.0; n];
            for trial in 0..4u64 {
                let x: Vec<f64> = (0..n)
                    .map(|i| {
                        ((i as f64) - 6.5)
                            * 0.31
                            * (2.0f64).powi(((i + trial as usize) % 7) as i32 * 4 - 12)
                    })
                    .collect();
                // Identical RNG streams for the warm and fresh runs so
                // RTN upsets fire at the same reads.
                let mut rng_warm = StdRng::seed_from_u64(1000 + trial);
                let mut rng_fresh = rng_warm.clone();
                let stats = cluster
                    .mvm_with(&x, &opts, &mut rng_warm, &mut scratch, &mut y)
                    .unwrap();
                let fresh = cluster.mvm(&x, &opts, &mut rng_fresh).unwrap();
                assert_eq!(y, fresh.y, "rtn={rtn} trial={trial}");
                assert_eq!(stats.conversions, fresh.conversions);
                assert_eq!(stats.slices_used, fresh.slices_used);
                assert_eq!(stats.an_corrections, fresh.an_corrections);
                assert_eq!(stats.an_detections, fresh.an_detections);
                assert_eq!(stats.energy, fresh.energy, "rtn={rtn} trial={trial}");
                assert_eq!(
                    Some(scratch.row_profile.clone()),
                    fresh.row_slices,
                    "rtn={rtn} trial={trial}"
                );
            }
        }
    }

    fn pin_block(n: usize) -> Vec<(u16, u16, f64)> {
        let mut out = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if (r * 7 + c * 3) % 4 != 0 {
                    let v = ((r * 13 + c * 5) % 19) as f64 * 0.31 - 2.0;
                    out.push((r as u16, c as u16, v));
                }
            }
        }
        out
    }

    fn pin_vector(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (0.4 + i as f64 * 0.17) * (2.0f64).powi((i as i32 % 5) * 3 - 6))
            .collect()
    }

    /// Pins the accounting of the columnar kernel and live-row list to
    /// the exact values the pre-columnar implementation produced
    /// (captured before the rewrite): integer counters and outputs must
    /// match bit-for-bit; energy is the same sum in a different
    /// association order, so it gets a 1e-9 relative window.
    // The pinned literals are verbatim `{:e}` captures from the old
    // implementation; keep every digit rather than clippy's shortest
    // round-trip form.
    #[allow(clippy::excessive_precision)]
    #[test]
    fn accounting_is_pinned_to_pre_columnar_behavior() {
        let n = 16;
        let entries = pin_block(n);
        let x = pin_vector(n);
        let spec = ClusterSpec {
            size: n,
            ..Default::default()
        };
        let cluster = Cluster::program(spec, &entries, &mut StdRng::seed_from_u64(5))
            .unwrap()
            .cluster;
        struct Pin {
            opts: MvmOptions,
            conversions: u64,
            skipped: u64,
            hits: u64,
            energy: f64,
        }
        let pins = [
            Pin {
                opts: MvmOptions::default(),
                conversions: 71020,
                skipped: 2948,
                hits: 34788,
                energy: 1.848905227998426019e-8,
            },
            Pin {
                opts: MvmOptions {
                    early_termination: false,
                    ..Default::default()
                },
                conversions: 73968,
                skipped: 0,
                hits: 37736,
                energy: 1.871432511998021427e-8,
            },
            Pin {
                opts: MvmOptions {
                    adc_headstart: false,
                    ..Default::default()
                },
                conversions: 71020,
                skipped: 2948,
                hits: 0,
                energy: 2.151841679996770856e-8,
            },
        ];
        for (i, pin) in pins.iter().enumerate() {
            let res = cluster
                .mvm(&x, &pin.opts, &mut StdRng::seed_from_u64(5))
                .unwrap();
            assert_eq!(res.conversions, pin.conversions, "case {i}");
            assert_eq!(res.conversions_skipped, pin.skipped, "case {i}");
            assert_eq!(res.headstart_hits, pin.hits, "case {i}");
            assert_eq!((res.slices_used, res.slices_total), (69, 69), "case {i}");
            assert!(
                (res.energy - pin.energy).abs() <= 1e-9 * pin.energy,
                "case {i}: energy {:e} vs pinned {:e}",
                res.energy,
                pin.energy
            );
            assert_eq!(res.time, 9.200000000000008266e-7, "case {i}");
            assert_eq!(res.an_corrections, 0, "case {i}");
            assert_eq!(res.an_detections, 0, "case {i}");
            assert_eq!(res.y[0], 3.210671562499998544e1, "case {i}");
            assert_eq!(res.y[7], 1.540747374999999977e2, "case {i}");
            assert_eq!(res.y[15], -8.647656250000011369e0, "case {i}");
        }
    }

    /// The columnar limb-plane gather and the retained per-entry
    /// reference kernel must agree bit-for-bit — outputs, counters, and
    /// energy (the accounting is shared, so energy is `==`, not close).
    #[test]
    fn columnar_kernel_matches_reference_kernel() {
        let n = 16;
        let entries = pin_block(n);
        let x = pin_vector(n);
        for (an_enabled, early, headstart) in [
            (true, true, true),
            (false, false, true),
            (true, true, false),
            (false, true, true),
        ] {
            let spec = ClusterSpec {
                size: n,
                an_enabled,
                ..Default::default()
            };
            let cluster = Cluster::program(spec, &entries, &mut StdRng::seed_from_u64(5))
                .unwrap()
                .cluster;
            let opts = MvmOptions {
                early_termination: early,
                adc_headstart: headstart,
                ..Default::default()
            };
            let mut sc_col = MvmScratch::default();
            let mut sc_ref = MvmScratch::default();
            let mut y_col = vec![0.0; n];
            let mut y_ref = vec![0.0; n];
            let s_col = cluster
                .mvm_with(
                    &x,
                    &opts,
                    &mut StdRng::seed_from_u64(7),
                    &mut sc_col,
                    &mut y_col,
                )
                .unwrap();
            let s_ref = cluster
                .mvm_with_reference(
                    &x,
                    &opts,
                    &mut StdRng::seed_from_u64(7),
                    &mut sc_ref,
                    &mut y_ref,
                )
                .unwrap();
            assert_eq!(y_col, y_ref, "an={an_enabled} et={early} hs={headstart}");
            assert_eq!(s_col, s_ref, "an={an_enabled} et={early} hs={headstart}");
        }
    }
}
