//! Determinism regression for the fault campaign's telemetry stream.
//!
//! Two `repro faults`-equivalent campaign runs with the same seed must
//! produce byte-identical JSONL stream manifests regardless of the
//! host execution knobs: worker threads {1, 4} × overlap {off, on}.
//! This is the reproducibility contract the stream header advertises —
//! records carry counter deltas with the overlap-scheduling counter
//! dropped, and no wall-clock fields.

use std::path::Path;

use memsci_bench::faults::{self, FaultCampaignConfig};
use memsci_telemetry::json::Json;
use memsci_telemetry::{validate_stream, ManifestStream};

fn campaign_config(threads: usize, overlap: bool) -> FaultCampaignConfig {
    FaultCampaignConfig {
        runs: 2,
        n: 64,
        max_iters: 400,
        fault_rates: vec![0.0, 2e-3],
        drift_ages: vec![0, 500],
        threads: Some(threads),
        overlap: Some(overlap),
        ..Default::default()
    }
}

/// Runs the campaign with a fresh sink and streams every point,
/// returning the stream file's exact bytes. The caller holds the
/// telemetry test gate.
fn stream_bytes(dir: &Path, threads: usize, overlap: bool) -> String {
    memsci_telemetry::reset();
    memsci_telemetry::enable();
    let cfg = campaign_config(threads, overlap);
    let path = dir.join(format!("stream_t{threads}_o{overlap}.jsonl"));
    // The header carries only campaign parameters — the host knobs
    // must not leak into the bytes being compared.
    let config = [
        ("command", Json::Str("faults".into())),
        ("seed", Json::UInt(cfg.seed)),
        ("runs", Json::UInt(cfg.runs as u64)),
    ];
    let mut stream = ManifestStream::create(&path, &config).expect("create stream");
    faults::campaign_with(&cfg, &mut |p| {
        stream
            .record(&p.label, &faults::stream_snapshot())
            .expect("stream record");
    });
    stream.finish().expect("finish stream");
    memsci_telemetry::disable();
    memsci_telemetry::reset();
    std::fs::read_to_string(&path).expect("read stream back")
}

#[test]
fn fault_campaign_stream_is_byte_identical_across_host_knobs() {
    let _x = memsci_telemetry::exclusive_for_tests();
    let dir =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/memsci-fault-stream-test");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    let baseline = stream_bytes(&dir, 1, false);
    let records = validate_stream(&baseline).expect("baseline stream validates");
    assert_eq!(records, 4, "one record per grid point");
    assert!(
        baseline.contains("faults_injected"),
        "fault counters reach the stream"
    );
    for (threads, overlap) in [(1, true), (4, false), (4, true)] {
        let other = stream_bytes(&dir, threads, overlap);
        assert_eq!(
            baseline, other,
            "stream bytes diverged at threads={threads} overlap={overlap}"
        );
    }
}
