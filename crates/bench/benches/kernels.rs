//! Micro-benchmarks of the numeric substrate: the operations inside the
//! cluster's inner loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsci_numeric::align::AlignedSlice;
use memsci_numeric::bias::BiasedSlice;
use memsci_numeric::bitslice::SliceSet;
use memsci_numeric::running_sum::{remaining_bound_bit, settled};
use memsci_numeric::{AnCode, Rounding, WideInt};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions, MvmScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_wideint(c: &mut Criterion) {
    let a = WideInt::pow2(100) - WideInt::from(987654321u64);
    let b = WideInt::pow2(90) + WideInt::from(123456789u64);
    c.bench_function("wideint/add_100bit", |bench| {
        bench.iter(|| black_box(&a) + black_box(&b))
    });
    c.bench_function("wideint/mul_100bit", |bench| {
        bench.iter(|| black_box(&a) * black_box(&b))
    });
    c.bench_function("wideint/round_to_53", |bench| {
        bench.iter(|| black_box(&a).round_to_precision(53, Rounding::TowardNegInf))
    });
    c.bench_function("wideint/to_f64", |bench| {
        bench.iter(|| black_box(&a).to_f64_with_exp(-60, Rounding::TowardNegInf))
    });
}

fn bench_alignment(c: &mut Criterion) {
    let values: Vec<f64> = (0..512)
        .map(|i| (1.0 + i as f64 * 0.01) * (2.0f64).powi((i % 13) - 6))
        .collect();
    c.bench_function("align/512_values", |bench| {
        bench.iter(|| AlignedSlice::align(black_box(&values), 117).unwrap())
    });
    let aligned = AlignedSlice::align(&values, 117).unwrap();
    c.bench_function("bias/512_values", |bench| {
        bench.iter(|| BiasedSlice::from_aligned(black_box(&aligned)))
    });
    let biased = BiasedSlice::from_aligned(&aligned);
    c.bench_function("bitslice/512_values", |bench| {
        bench.iter(|| SliceSet::from_unsigned(black_box(biased.values()), biased.operand_bits()))
    });
}

fn bench_ancode(c: &mut Criterion) {
    let code = AnCode::default();
    let v = WideInt::pow2(110) + WideInt::from(42u64);
    let clean = code.encode(&v);
    let flipped = &clean + &WideInt::pow2(77);
    c.bench_function("ancode/decode_clean", |bench| {
        bench.iter(|| code.decode(black_box(&clean)).unwrap())
    });
    c.bench_function("ancode/decode_corrects", |bench| {
        bench.iter(|| code.decode(black_box(&flipped)).unwrap())
    });
}

/// The exact engine's per-slice hot loop: the columnar limb-plane
/// gather against the retained per-entry reference kernel, plus the
/// word-wise transpose behind the input slicing (DESIGN.md §15).
fn bench_slice_kernel(c: &mut Criterion) {
    let n = 64;
    let entries: Vec<(u16, u16, f64)> = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r, c)))
        .filter(|&(r, c)| (r * 7 + c * 3) % 4 != 0)
        .map(|(r, c)| {
            (
                r as u16,
                c as u16,
                ((r * 13 + c * 5) % 19) as f64 * 0.31 - 2.0,
            )
        })
        .collect();
    let cluster = Cluster::program(
        ClusterSpec::with_size(n),
        &entries,
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap()
    .cluster;
    let x: Vec<f64> = (0..n)
        .map(|i| (0.4 + i as f64 * 0.17) * (2.0f64).powi((i as i32 % 5) * 3 - 6))
        .collect();
    let opts = MvmOptions::default();
    let mut scratch = MvmScratch::default();
    let mut y = vec![0.0; n];
    c.bench_function("slice_kernel/columnar_mvm_64", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            cluster
                .mvm_with(black_box(&x), &opts, &mut rng, &mut scratch, &mut y)
                .unwrap()
        })
    });
    c.bench_function("slice_kernel/reference_mvm_64", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            cluster
                .mvm_with_reference(black_box(&x), &opts, &mut rng, &mut scratch, &mut y)
                .unwrap()
        })
    });
    let values: Vec<WideInt> = (0..512)
        .map(|i| {
            let v = WideInt::from(0x9E37_79B9_7F4A_7C15u64 ^ (i as u64 * 0x45D9_F3B3));
            if i % 3 == 0 {
                -v
            } else {
                v
            }
        })
        .collect();
    let mut slices = SliceSet::default();
    c.bench_function("slice_kernel/transpose_512x65", |bench| {
        bench.iter(|| slices.from_twos_complement_into(black_box(&values), 65))
    });
}

fn bench_settled(c: &mut Criterion) {
    let sum = WideInt::pow2(120) + WideInt::pow2(60) - WideInt::from(12345u64);
    let bound = remaining_bound_bit(40, 20);
    c.bench_function("running_sum/settled_check", |bench| {
        bench.iter(|| settled(black_box(&sum), bound, 53, Rounding::TowardNegInf))
    });
}

criterion_group!(
    benches,
    bench_wideint,
    bench_alignment,
    bench_ancode,
    bench_slice_kernel,
    bench_settled
);
criterion_main!(benches);
