//! Repeated-SpMV host benchmark: the solver hot path, warm vs cold.
//!
//! Warm iterations reuse the platform scratch arenas (steady state of a
//! CG/BiCGStab solve); cold iterations call `clear_scratch()` first,
//! re-paying the allocation cost the arenas exist to remove. The
//! warm/cold gap is the benefit; the warm number is what `repro bench`
//! compares against the recorded baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsci_core::{AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions};
use memsci_solvers::platform::Platform;
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::by_name;

fn config() -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(1);
    config.overlap = Some(false);
    config
}

fn setup() -> (BlockedMatrix, Vec<f64>) {
    let a = by_name("Pres_Poisson")
        .expect("suite entry")
        .generate_scaled(0.05);
    let x = (0..a.rows())
        .map(|i| (i as f64 * 0.17).sin() + 1.1)
        .collect();
    (BlockedMatrix::block(&a, &BlockingConfig::default()), x)
}

fn bench_fast(c: &mut Criterion) {
    let (blocked, x) = setup();
    let mut acc = AcceleratorPlatform::new(&blocked, config());
    let mut y = vec![0.0; acc.n()];
    acc.spmv(&x, &mut y);
    c.bench_function("spmv_repeat/fast_warm", |bench| {
        bench.iter(|| acc.spmv(black_box(&x), &mut y))
    });
    c.bench_function("spmv_repeat/fast_cold", |bench| {
        bench.iter(|| {
            acc.clear_scratch();
            acc.spmv(black_box(&x), &mut y)
        })
    });
}

fn bench_exact(c: &mut Criterion) {
    let (blocked, x) = setup();
    let opts = ExactOptions {
        seed: 7,
        ..Default::default()
    };
    let mut acc =
        ExactAcceleratorPlatform::new(&blocked, config(), opts).expect("matrix programs cleanly");
    let mut y = vec![0.0; acc.n()];
    acc.spmv(&x, &mut y);
    c.bench_function("spmv_repeat/exact_warm", |bench| {
        bench.iter(|| acc.spmv(black_box(&x), &mut y))
    });
    c.bench_function("spmv_repeat/exact_cold", |bench| {
        bench.iter(|| {
            acc.clear_scratch();
            acc.spmv(black_box(&x), &mut y)
        })
    });
}

criterion_group!(benches, bench_fast, bench_exact);
criterion_main!(benches);
