//! Benchmarks of full solver iterations on the three platforms: how
//! expensive is the *simulation* itself (host-side), per solve.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsci_core::engine::accelerate;
use memsci_core::AcceleratorConfig;
use memsci_gpu::GpuPlatform;
use memsci_solvers::platform::Platform;
use memsci_solvers::{bicgstab::bicgstab, cg::cg, gmres::gmres, CsrPlatform, SolveOptions};
use memsci_sparse::generate::poisson2d;

fn bench_cg_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve/cg_poisson_32x32");
    group.sample_size(10);
    let a = poisson2d(32, 32);
    let n = a.rows();
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-8);

    group.bench_function("reference", |bench| {
        bench.iter(|| {
            let mut p = CsrPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            black_box(cg(&mut p, &b, &mut x, &opts))
        })
    });
    group.bench_function("gpu_model", |bench| {
        bench.iter(|| {
            let mut p = GpuPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            black_box(cg(&mut p, &b, &mut x, &opts))
        })
    });
    group.bench_function("accelerator_model", |bench| {
        bench.iter(|| {
            let mut p = accelerate(&a, AcceleratorConfig::default());
            let mut x = vec![0.0; n];
            black_box(cg(&mut p, &b, &mut x, &opts))
        })
    });
    group.finish();
}

fn bench_solver_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve/variants_poisson_24x24");
    group.sample_size(10);
    let a = poisson2d(24, 24);
    let n = a.rows();
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(1e-8);
    group.bench_function("cg", |bench| {
        bench.iter(|| {
            let mut p = CsrPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            black_box(cg(&mut p, &b, &mut x, &opts))
        })
    });
    group.bench_function("bicgstab", |bench| {
        bench.iter(|| {
            let mut p = CsrPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            black_box(bicgstab(&mut p, &b, &mut x, &opts))
        })
    });
    group.bench_function("gmres30", |bench| {
        bench.iter(|| {
            let mut p = CsrPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            black_box(gmres(&mut p, &b, &mut x, 30, &opts))
        })
    });
    group.finish();
}

fn bench_engine_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/spmv_overhead");
    group.sample_size(20);
    let a = poisson2d(64, 64);
    let n = a.rows();
    let x = vec![1.0; n];
    group.bench_function("csr_reference", |bench| {
        let mut y = vec![0.0; n];
        bench.iter(|| a.spmv(black_box(&x), &mut y))
    });
    group.bench_function("accelerator_engine", |bench| {
        let mut p = accelerate(&a, AcceleratorConfig::default());
        let mut y = vec![0.0; n];
        bench.iter(|| p.spmv(black_box(&x), &mut y))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cg_platforms,
    bench_solver_variants,
    bench_engine_spmv
);
criterion_main!(benches);
