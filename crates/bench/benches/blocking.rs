//! Benchmarks of the blocking preprocessor (§V-B1): throughput per
//! non-zero and the touch bound.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use memsci_sparse::blocking::{exponent_window_partition, BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::by_name;

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    group.sample_size(10);
    for name in ["Pres_Poisson", "bcircuit", "ns3Da"] {
        let a = by_name(name).unwrap().generate_scaled(0.1);
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_function(format!("preprocess/{name}"), |bench| {
            bench.iter(|| BlockedMatrix::block(black_box(&a), &BlockingConfig::default()))
        });
    }
    group.finish();
}

fn bench_exponent_window(c: &mut Criterion) {
    let values: Vec<f64> = (0..4096)
        .map(|i| (1.0 + (i % 97) as f64) * (2.0f64).powi((i % 160) - 80))
        .collect();
    c.bench_function("blocking/exponent_window_4096", |bench| {
        bench.iter(|| exponent_window_partition(black_box(&values), 64))
    });
}

criterion_group!(benches, bench_blocking, bench_exponent_window);
criterion_main!(benches);
