//! Benchmarks of the bit-exact cluster simulator: programming and MVM
//! across crossbar sizes, with and without early termination.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn block(n: usize, density: f64, seed: u64) -> Vec<(u16, u16, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for r in 0..n {
        for c in 0..n {
            if rng.gen::<f64>() < density {
                out.push((r as u16, c as u16, rng.gen_range(-4.0..4.0)));
            }
        }
    }
    out
}

fn bench_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/program");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let entries = block(n, 0.25, n as u64);
        group.bench_function(format!("{n}x{n}"), |bench| {
            let mut rng = StdRng::seed_from_u64(1);
            bench.iter(|| {
                Cluster::program(ClusterSpec::with_size(n), black_box(&entries), &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/mvm");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let entries = block(n, 0.25, n as u64);
        let mut rng = StdRng::seed_from_u64(2);
        let cluster = Cluster::program(ClusterSpec::with_size(n), &entries, &mut rng)
            .unwrap()
            .cluster;
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| {
                cluster
                    .mvm(black_box(&x), &MvmOptions::default(), &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_early_termination_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster/early_termination");
    group.sample_size(10);
    let n = 32;
    let entries = block(n, 0.3, 9);
    let mut rng = StdRng::seed_from_u64(3);
    let cluster = Cluster::program(ClusterSpec::with_size(n), &entries, &mut rng)
        .unwrap()
        .cluster;
    // A wide-dynamic-range vector: early termination matters here.
    let x: Vec<f64> = (0..n)
        .map(|i| (1.0 + i as f64 * 0.1) * (2.0f64).powi((i as i32 % 6) * 8 - 20))
        .collect();
    group.bench_function("on", |bench| {
        bench.iter(|| {
            cluster
                .mvm(black_box(&x), &MvmOptions::default(), &mut rng)
                .unwrap()
        })
    });
    let no_term = MvmOptions {
        early_termination: false,
        ..Default::default()
    };
    group.bench_function("off", |bench| {
        bench.iter(|| cluster.mvm(black_box(&x), &no_term, &mut rng).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_program,
    bench_mvm,
    bench_early_termination_ablation
);
criterion_main!(benches);
