//! Renderings of the paper's figures and the design-choice ablations.

use memsci_core::area::system_area;
use memsci_core::overhead::lifetime_years;
use memsci_core::AcceleratorConfig;
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::by_name;
use memsci_sparse::Csr;
use memsci_xbar::cluster::{Cluster, ClusterSpec, MvmOptions};
use memsci_xbar::schedule::{plan, Policy};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::suite_run::{geometric_mean, MatrixOutcome};

/// Figure 8: speedup over the GPU baseline.
pub fn figure8(outcomes: &[MatrixOutcome]) -> String {
    let mut out = String::new();
    out.push_str("Figure 8 — Speedup over the GPU baseline\n");
    for o in outcomes {
        out.push_str(&format!(
            "{:<17} | {:>6.2}x {}\n",
            o.name,
            o.speedup(),
            bar(o.speedup(), 2.0)
        ));
    }
    let gmean = geometric_mean(outcomes.iter().map(MatrixOutcome::speedup));
    out.push_str(&format!(
        "{:<17} | {:>6.2}x  (paper: 10.3x)\n",
        "G-MEAN", gmean
    ));
    out
}

/// Figure 9: energy normalized to the GPU baseline.
pub fn figure9(outcomes: &[MatrixOutcome]) -> String {
    let mut out = String::new();
    out.push_str("Figure 9 — Accelerator energy consumption normalized to the GPU baseline\n");
    for o in outcomes {
        out.push_str(&format!(
            "{:<17} | {:>8.4} {}\n",
            o.name,
            o.energy_ratio(),
            bar(1.0 / o.energy_ratio(), 2.0)
        ));
    }
    let accel_only: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.target == memsci_core::Target::Accelerator)
        .map(MatrixOutcome::energy_ratio)
        .collect();
    let all: Vec<f64> = outcomes.iter().map(MatrixOutcome::energy_ratio).collect();
    out.push_str(&format!(
        "mean (accelerator-run) | {:.4}  (paper: 1/14.2 = 0.070)\n",
        geometric_mean(accel_only.iter().copied())
    ));
    out.push_str(&format!(
        "mean (all 20)          | {:.4}  (paper: 1/10.9 = 0.092)\n",
        geometric_mean(all.iter().copied())
    ));
    out
}

/// Figure 10: preprocessing and write time as a fraction of solve time.
pub fn figure10(outcomes: &[MatrixOutcome]) -> String {
    let mut out = String::new();
    out.push_str("Figure 10 — Setup overhead as % of total accelerator solve time\n");
    out.push_str("Matrix            | Write % | Preproc % | Total %\n");
    for o in outcomes {
        if o.target != memsci_core::Target::Accelerator {
            continue;
        }
        let denom = o.setup.total_time() + o.accel.time;
        let w = o.setup.write_time / denom * 100.0;
        let p = o.setup.preprocessing_time / denom * 100.0;
        out.push_str(&format!(
            "{:<17} | {:>6.2}% | {:>8.2}% | {:>6.2}%\n",
            o.name,
            w,
            p,
            w + p
        ));
    }
    out
}

/// Figure 6: the three scheduling policies on the paper's 4×4 example
/// plus a realistic cluster-scale sweep.
pub fn figure6() -> String {
    let mut out = String::new();
    out.push_str("Figure 6 — Crossbar activation scheduling policies\n");
    out.push_str("4x4 slices, cutoff 2 (the paper's example):\n");
    for (name, policy) in [
        ("vertical", Policy::Vertical),
        ("diagonal", Policy::Diagonal),
        ("hybrid(2)", Policy::Hybrid { chunk: 2 }),
    ] {
        let p = plan(policy, 4, 4, 2);
        out.push_str(&format!(
            "  {:<10} {:>3} activations over {} time steps\n",
            name,
            p.activations(),
            p.time_steps()
        ));
    }
    out.push_str("Cluster scale (70 matrix slices x 60 vector slices):\n");
    for cutoff in [0i64, 40, 60, 80] {
        out.push_str(&format!("  cutoff {cutoff}:\n"));
        for (name, policy) in [
            ("vertical", Policy::Vertical),
            ("diagonal", Policy::Diagonal),
            ("hybrid(4)", Policy::Hybrid { chunk: 4 }),
        ] {
            let p = plan(policy, 70, 60, cutoff);
            out.push_str(&format!(
                "    {:<10} {:>5} activations / {:>3} steps\n",
                name,
                p.activations(),
                p.time_steps()
            ));
        }
    }
    out
}

/// ASCII density map of a sparse matrix (Figures 7 and 11).
pub fn density_map(a: &Csr, grid: usize) -> String {
    let (rows, cols) = a.shape();
    let mut counts = vec![vec![0usize; grid]; grid];
    for (r, c, _) in a.iter() {
        let gr = r * grid / rows.max(1);
        let gc = c * grid / cols.max(1);
        counts[gr.min(grid - 1)][gc.min(grid - 1)] += 1;
    }
    let max = counts.iter().flatten().copied().max().unwrap_or(0).max(1);
    let shades = [' ', '.', ':', '+', '*', '#'];
    let mut out = String::new();
    for row in &counts {
        for &c in row {
            let shade = if c == 0 {
                0
            } else {
                1 + (c * (shades.len() - 2) / max).min(shades.len() - 2)
            };
            out.push(shades[shade]);
        }
        out.push('\n');
    }
    out
}

/// Figures 7 and 11: sparsity and blocking patterns of selected
/// matrices.
pub fn blocking_pattern(name: &str, scale: f64) -> String {
    let entry = by_name(name).unwrap_or_else(|| panic!("unknown matrix {name}"));
    let a = entry.generate_scaled(scale);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut out = String::new();
    out.push_str(&format!(
        "{name} — {} rows, {} nnz, blocking efficiency {:.1}% (paper: {:.1}%)\n",
        a.rows(),
        a.nnz(),
        blocked.stats.efficiency() * 100.0,
        entry.paper_blocked * 100.0
    ));
    out.push_str("sparsity (40x40 density map):\n");
    out.push_str(&density_map(&a, 40));
    out.push_str("blocks by size: ");
    let hist = blocked.block_size_histogram();
    if hist.is_empty() {
        out.push_str("(none)");
    } else {
        let parts: Vec<String> = hist
            .iter()
            .map(|&(s, n)| format!("{n} x {s}x{s}"))
            .collect();
        out.push_str(&parts.join(", "));
    }
    out.push('\n');
    out
}

/// §VIII-C: the system area breakdown.
pub fn area_report() -> String {
    let a = system_area(&AcceleratorConfig::default());
    let mut out = String::new();
    out.push_str("System area (§VIII-C)\n");
    out.push_str(&format!(
        "  crossbars + ADCs   : {:>7.1} mm2\n",
        a.crossbars_mm2
    ));
    out.push_str(&format!(
        "  cluster overheads  : {:>7.1} mm2\n",
        a.cluster_overhead_mm2
    ));
    out.push_str(&format!(
        "  local processors   : {:>7.1} mm2\n",
        a.processors_mm2
    ));
    out.push_str(&format!(
        "  global memory      : {:>7.1} mm2\n",
        a.global_memory_mm2
    ));
    out.push_str(&format!(
        "  total              : {:>7.1} mm2   (paper: 539 mm2; P100 die: 610 mm2)\n",
        a.total_mm2()
    ));
    out.push_str(&format!(
        "  processors+memory  : {:>6.1}%    (paper: 13.6%)\n",
        a.processor_memory_fraction() * 100.0
    ));
    out
}

/// §VIII-E: endurance under conservative full-rewrite assumptions.
pub fn endurance_report(outcomes: &[MatrixOutcome]) -> String {
    let mut out = String::new();
    out.push_str("System endurance (§VIII-E, 1e9 write endurance, full rewrite per solve)\n");
    let mut worst = f64::INFINITY;
    let mut worst_solve = f64::INFINITY;
    for o in outcomes {
        if o.target != memsci_core::Target::Accelerator {
            continue;
        }
        let years = lifetime_years(o.accel.time, o.setup.write_time, 1.0e9);
        if years < worst {
            worst = years;
            worst_solve = o.accel.time;
        }
    }
    out.push_str(&format!(
        "  worst case over the suite: {worst:.2} years at a {:.1} ms solve\n",
        worst_solve * 1e3
    ));
    out.push_str(&format!(
        "  at the paper's real-matrix solve durations (>= {:.1} s to 1e-8 on\n",
        3.2
    ));
    out.push_str(&format!(
        "  ill-conditioned systems): {:.0} years — the paper's >100-year claim.\n",
        lifetime_years(3.2, 1.0e-3, 1.0e9)
    ));
    out.push_str(
        "  (the synthetic replicas are diagonally dominant and converge in\n   milliseconds, so the conservative rewrite-per-solve bound shrinks\n   proportionally; endurance scales linearly with solve time.)\n",
    );
    out
}

/// Ablation study over the design choices called out in DESIGN.md.
pub fn ablation() -> String {
    let mut out = String::new();
    out.push_str("Ablations (16x16 dense block on a bit-exact cluster)\n");
    let n = 16;
    let mut entries = Vec::new();
    for r in 0..n {
        for c in 0..n {
            entries.push((
                r as u16,
                c as u16,
                ((r * 31 + c * 17) % 23) as f64 * 0.37 - 4.0,
            ));
        }
    }
    let mut rng = StdRng::seed_from_u64(7);
    let spec = ClusterSpec {
        size: n,
        ..Default::default()
    };
    let cluster = Cluster::program(spec, &entries, &mut rng).unwrap().cluster;
    let x: Vec<f64> = (0..n)
        .map(|i| (1.0 + i as f64 * 0.21) * (2.0f64).powi((i as i32 % 5) * 7 - 14))
        .collect();

    let base = cluster.mvm(&x, &MvmOptions::default(), &mut rng).unwrap();
    let no_term = cluster
        .mvm(
            &x,
            &MvmOptions {
                early_termination: false,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
    let no_head = cluster
        .mvm(
            &x,
            &MvmOptions {
                adc_headstart: false,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
    out.push_str(&format!(
        "  early termination : {:>5} / {:>5} slices used, energy x{:.2} without it\n",
        base.slices_used,
        base.slices_total,
        no_term.energy / base.energy
    ));
    out.push_str(&format!(
        "  ADC headstart     : energy x{:.2} without it (latency unchanged)\n",
        no_head.energy / base.energy
    ));

    // CIC: one extra ADC resolution bit without it (§V-B2).
    let m = memsci_xbar::CostModel::default();
    let with_cic = m.crossbar_op_energy(512, 1);
    let r = m.resolution(512, 1);
    let no_cic = 512.0
        * (m.e_col_base
            + m.e_col_lin * f64::from(r + 1)
            + m.e_col_exp * (2.0f64).powi(r as i32 + 1));
    out.push_str(&format!(
        "  invert coding     : 512-crossbar op energy x{:.2} without it (one extra ADC bit)\n",
        no_cic / with_cic
    ));

    // Scheduling policies at the measured cutoff.
    let cutoff = (base.slices_total - base.slices_used) as i64;
    for (name, policy) in [
        ("vertical", Policy::Vertical),
        ("diagonal", Policy::Diagonal),
        ("hybrid(4)", Policy::Hybrid { chunk: 4 }),
    ] {
        let p = plan(policy, cluster.crossbar_count(), base.slices_total, cutoff);
        out.push_str(&format!(
            "  schedule {:<9}: {:>5} activations / {:>3} steps\n",
            name,
            p.activations(),
            p.time_steps()
        ));
    }
    out.push_str(&heterogeneity_ablation());
    out
}

/// Heterogeneous vs homogeneous substrate (§V-B): blocking a suite
/// matrix with only 512-crossbars vs the full size mix.
fn heterogeneity_ablation() -> String {
    use memsci_core::engine::AcceleratorPlatform;
    use memsci_core::AcceleratorConfig;
    use memsci_solvers::platform::Platform;

    let mut out = String::new();
    out.push_str("Substrate heterogeneity (venkat25 replica at 0.2 scale):\n");
    let a = by_name("venkat25").unwrap().generate_scaled(0.2);
    let x = vec![1.0; a.rows()];
    for (label, sizes, densities, cluster_mix) in [
        (
            "heterogeneous",
            vec![512u32, 256, 128, 64],
            vec![(512u32, 0.10), (256, 0.08), (128, 0.07), (64, 0.06)],
            vec![(512usize, 2usize), (256, 4), (128, 6), (64, 8)],
        ),
        ("512-only", vec![512], vec![(512, 0.10)], vec![(512, 20)]),
        ("64-only", vec![64], vec![(64, 0.06)], vec![(64, 160)]),
    ] {
        let bc = BlockingConfig {
            block_sizes: sizes,
            min_densities: densities,
            ..Default::default()
        };
        let blocked = BlockedMatrix::block(&a, &bc);
        let config = AcceleratorConfig {
            clusters_per_bank: cluster_mix,
            ..Default::default()
        };
        let mut acc = AcceleratorPlatform::new(&blocked, config);
        let mut y = vec![0.0; a.rows()];
        acc.spmv(&x, &mut y);
        let s = acc.last_spmv();
        out.push_str(&format!(
            "  {:<14} efficiency {:>5.1}%, per-MVM {:>6.1} us, {:>7.2} uJ\n",
            label,
            blocked.stats.efficiency() * 100.0,
            s.time * 1e6,
            s.energy * 1e6,
        ));
    }
    out
}

fn bar(value: f64, unit: f64) -> String {
    let n = ((value / unit).round() as usize).min(60);
    "█".repeat(n)
}

/// Per-matrix diagnostic table (not a paper artifact; used to inspect
/// the cost model's composition).
pub fn detail(outcomes: &[MatrixOutcome]) -> String {
    let mut out = String::new();
    out.push_str(
        "matrix            |   rows |    nnz | eff%  | iters | acc it[us] | gpu it[us] | slices | speedup\n",
    );
    for o in outcomes {
        let it = o.accel.iterations.max(1) as f64;
        out.push_str(&format!(
            "{:<17} | {:>6} | {:>6.2}M | {:>4.1} | {:>5} | {:>10.1} | {:>10.1} | {:>6.1} | {:>6.2}x\n",
            o.name,
            o.stats.rows,
            o.stats.nnz as f64 / 1e6,
            o.efficiency * 100.0,
            o.accel.iterations,
            o.accel.time / it * 1e6,
            o.gpu.time / o.gpu.iterations.max(1) as f64 * 1e6,
            o.avg_slices,
            o.speedup(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::poisson2d;

    #[test]
    fn density_map_shape() {
        let a = poisson2d(16, 16);
        let map = density_map(&a, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 10));
        // The diagonal must be visibly dense.
        assert_ne!(lines[0].chars().next().unwrap(), ' ');
    }

    #[test]
    fn figure6_reports_paper_numbers() {
        let f = figure6();
        assert!(f.contains("16 activations over 4"));
        assert!(f.contains("13 activations over 5"));
        assert!(f.contains("14 activations over 4"));
    }

    #[test]
    fn area_report_totals() {
        let r = area_report();
        assert!(r.contains("539"));
    }

    #[test]
    fn ablation_shows_savings() {
        let a = ablation();
        assert!(a.contains("early termination"));
        assert!(a.contains("invert coding"));
    }

    #[test]
    fn blocking_pattern_renders() {
        let p = blocking_pattern("Pres_Poisson", 0.05);
        assert!(p.contains("blocking efficiency"));
        assert!(p.contains("blocks by size"));
    }
}

/// Runs the full pipeline on a real Matrix Market file: statistics,
/// blocking, dispatch, and a solve on both platforms.
pub fn real_matrix_report(path: &str, tol: f64) -> Result<String, Box<dyn std::error::Error>> {
    use memsci_core::dispatch::{choose_target, Target};
    use memsci_core::engine::AcceleratorPlatform;
    use memsci_core::AcceleratorConfig;
    use memsci_gpu::GpuPlatform;
    use memsci_solvers::{bicgstab::bicgstab, cg::cg, SolveOptions};
    use memsci_sparse::matrix_market::read_coo;
    use memsci_sparse::MatrixStats;

    let file = std::fs::File::open(path)?;
    let a = read_coo(std::io::BufReader::new(file))?.to_csr();
    let stats = MatrixStats::compute(&a);
    let mut out = String::new();
    out.push_str(&format!(
        "{path}: {} rows, {} nnz ({:.1}/row), exponent range {} bits, symmetric: {}\n",
        stats.rows, stats.nnz, stats.nnz_per_row, stats.exponent_range, stats.symmetric
    ));
    let config = AcceleratorConfig::default();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let target = choose_target(&blocked, &config);
    out.push_str(&format!(
        "blocking: {:.1}% captured, {:.2} touches/nnz -> {:?}\n",
        blocked.stats.efficiency() * 100.0,
        blocked.stats.touches_per_nnz(),
        target
    ));
    let n = a.rows();
    let b = vec![1.0; n];
    let opts = SolveOptions::with_tol(tol).max_iters(5000);
    let mut gpu = GpuPlatform::new(a.clone());
    let mut xg = vec![0.0; n];
    let rg = if stats.symmetric {
        cg(&mut gpu, &b, &mut xg, &opts)
    } else {
        bicgstab(&mut gpu, &b, &mut xg, &opts)
    };
    out.push_str(&format!(
        "gpu        : {} iterations ({}), {:.3} ms, {:.3} mJ\n",
        rg.iterations,
        if rg.converged { "converged" } else { "capped" },
        rg.time_seconds * 1e3,
        rg.energy_joules * 1e3
    ));
    if target == Target::Accelerator {
        let mut acc = AcceleratorPlatform::new(&blocked, config);
        let mut x = vec![0.0; n];
        let ra = if stats.symmetric {
            cg(&mut acc, &b, &mut x, &opts)
        } else {
            bicgstab(&mut acc, &b, &mut x, &opts)
        };
        out.push_str(&format!(
            "accelerator: {} iterations ({}), {:.3} ms, {:.3} mJ -> speedup {:.1}x, energy {:.1}x\n",
            ra.iterations,
            if ra.converged { "converged" } else { "capped" },
            ra.time_seconds * 1e3,
            ra.energy_joules * 1e3,
            rg.time_seconds / ra.time_seconds,
            rg.energy_joules / ra.energy_joules
        ));
    } else {
        out.push_str("accelerator: dispatched to the GPU (blocking efficiency below threshold)\n");
    }
    Ok(out)
}

/// §V-A design-space exploration: the crossbar-sizing trade-offs that
/// motivate the heterogeneous substrate, from the statistical cost
/// model.
pub fn sizing_exploration() -> String {
    let m = memsci_xbar::CostModel::default();
    let mut out = String::new();
    out.push_str("Crossbar sizing trade-offs (§V-A; statistical model, 60 vector slices)\n");
    out.push_str("size | density | thrpt [Gop/s] | eff [Gop/J] | area-eff [Gop/s/mm2]\n");
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for n in [32usize, 64, 128, 256, 512, 1024] {
        for density in [0.004f64, 0.02, 0.10, 0.40] {
            let thr = m.cluster_throughput(n, density, 60);
            let eff = m.cluster_ops_per_joule(n, 1, density, 60, 127);
            let area = 127.0 * m.crossbar_area_mm2(n);
            out.push_str(&format!(
                "{n:>4} | {:>6.1}% | {:>13.2} | {:>11.2} | {:>10.2}\n",
                density * 100.0,
                thr / 1e9,
                eff / 1e9,
                thr / 1e9 / area,
            ));
        }
    }
    out.push_str(
        "(throughput rewards large+dense blocks; energy and area efficiency favour\n the smallest crossbar that still captures the non-zeros — the interlocking\n trade-off the heterogeneous substrate balances)\n",
    );
    out
}

#[cfg(test)]
mod harness_tests {
    use super::*;

    #[test]
    fn sizing_exploration_orders_sizes() {
        let s = sizing_exploration();
        assert!(s.contains("512"));
        assert!(s.contains("Gop/s"));
    }

    #[test]
    fn real_matrix_report_roundtrip() {
        // Write a replica to a temp .mtx and run the real-matrix path.
        let a = memsci_sparse::suite::by_name("crystm03")
            .unwrap()
            .generate_scaled(0.05);
        let path = std::env::temp_dir().join("memsci_real_matrix_test.mtx");
        let f = std::fs::File::create(&path).unwrap();
        memsci_sparse::matrix_market::write_csr(&a, std::io::BufWriter::new(f)).unwrap();
        let report = real_matrix_report(path.to_str().unwrap(), 1e-8).unwrap();
        assert!(report.contains("blocking"), "{report}");
        assert!(report.contains("speedup"), "{report}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn real_matrix_report_rejects_missing_files() {
        assert!(real_matrix_report("/nonexistent/file.mtx", 1e-8).is_err());
    }

    #[test]
    fn detail_lists_all_outcomes() {
        let outcomes = vec![];
        let d = detail(&outcomes);
        assert!(d.contains("matrix"));
    }
}
