//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--scale S] [--runs N] [--tol T] [--perturbed]
//!                    [--telemetry-out FILE] [--telemetry-stream FILE]
//! repro bench [--smoke] [--iters N] [--rhs K1,K2,..] [--matrix M1,M2,..] [--out FILE]
//! repro bench --compare BASELINE.json NEW.json [--tolerance T]
//! repro concurrent [--k N] [--engine fast|exact] [--telemetry-out FILE]
//! repro faults [--runs N] [--scale S] [--tol T] [--out FILE] [--validate FILE]
//!              [--d2d S1,S2,..] [--endurance G1,G2,..]
//!              [--telemetry-out FILE] [--telemetry-stream FILE]
//! repro trace [--out FILE] [--scale S] [--iters N] [--capacity N]
//!
//! experiments:
//!   table1 table2 table3
//!   fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!   area endurance ablation smoke solve all
//! ```
//!
//! `solve` runs the 20-matrix suite once and prints Figures 8, 9, and
//! 10 together (they share the same runs); `all` runs everything;
//! `smoke` is a fast telemetry exerciser (one suite matrix plus an
//! error-injected bit-exact solve so AN-code counters fire); `bench`
//! measures host wall-clock (simulator speed) and writes a
//! schema-versioned `BENCH_*.json` document (default `BENCH_PR10.json`);
//! `--rhs` picks the multi-RHS batch widths swept by its `spmv_batch`
//! and `concurrent` sections (default `1,8`); `--matrix` restricts its
//! `matrix_sweep` section to the named suite matrices (the default
//! sweeps all 20); `concurrent` runs the
//! k-way shared-operator acceptance check: k solves through one cached
//! operator must match k re-programming sequential solves bit for bit,
//! with exactly one `operator_programs` and `k − 1` `cache_hits` in the
//! run manifest; `--perturbed` switches fig12/fig13 to the
//! perturbed-input mode (one cached operator per point, trials batched
//! through the MVM lane); `faults` runs the device-reliability
//! campaign (stuck-at rate × retention age grid) and writes a
//! schema-versioned `FAULTS_*.json` coverage report (default
//! `FAULTS_PR7.json`), byte-reproducible under a fixed seed.
//!
//! Telemetry: `--telemetry-out FILE` enables the global sink and writes
//! a schema-versioned JSON run manifest on exit. The `MEMSCI_TELEMETRY`
//! environment variable does the same without touching the command line
//! (`1`/`on` = enable only, any other non-empty value = manifest path);
//! the flag wins when both are given. `--telemetry-stream FILE` also
//! enables the sink but appends an incremental JSONL record per
//! Monte-Carlo sweep point (fig12/fig13), so killed sweeps keep their
//! finished points.

use memsci_bench::{faults, figures, montecarlo, perf, suite_run, tables, tracecmd};
use memsci_telemetry::json::Json;
use memsci_telemetry::ManifestStream;

#[derive(Debug, Clone, Copy)]
struct Args {
    scale: f64,
    runs: usize,
    tol: f64,
    perturbed: bool,
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!(
            "usage: repro <experiment> [--scale S] [--runs N] [--tol T] [--telemetry-out FILE] \
             [--telemetry-stream FILE]"
        );
        eprintln!(
            "       repro bench [--smoke] [--iters N] [--rhs K1,K2,..] [--matrix M1,M2,..] \
             [--out FILE]"
        );
        eprintln!("       repro bench --compare BASELINE.json NEW.json [--tolerance T]");
        eprintln!("       repro concurrent [--k N] [--engine fast|exact] [--telemetry-out FILE]");
        eprintln!(
            "       repro faults [--runs N] [--scale S] [--tol T] [--out FILE] [--validate FILE]"
        );
        eprintln!("                    [--d2d S1,S2,..] [--endurance G1,G2,..]");
        eprintln!("       repro trace [--out FILE] [--scale S] [--iters N] [--capacity N]");
        eprintln!("experiments: table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11");
        eprintln!("             fig12 fig13 area endurance ablation sizing smoke solve all");
        eprintln!("             matrix <file.mtx>   (run a real SuiteSparse download)");
        std::process::exit(2);
    };
    let rest: Vec<String> = argv.collect();

    // MEMSCI_TELEMETRY can enable the sink (and pick a manifest path)
    // without touching the command line; --telemetry-out overrides the
    // path below.
    let mut telemetry_out: Option<std::path::PathBuf> = None;
    let mut telemetry_stream_path: Option<std::path::PathBuf> = None;
    match memsci_telemetry::env_setting() {
        memsci_telemetry::EnvSetting::Disabled => {}
        memsci_telemetry::EnvSetting::Enabled => memsci_telemetry::enable(),
        memsci_telemetry::EnvSetting::File(path) => {
            memsci_telemetry::enable();
            telemetry_out = Some(path.into());
        }
    }
    if cmd == "matrix" {
        let Some(path) = rest.first() else {
            eprintln!("usage: repro matrix <file.mtx> [--tol T]");
            std::process::exit(2);
        };
        let tol = rest
            .iter()
            .position(|a| a == "--tol")
            .and_then(|i| rest.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-8);
        match memsci_bench::figures::real_matrix_report(path, tol) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("failed to process {path}: {e}");
                std::process::exit(1);
            }
        }
        let config = [
            ("command", Json::Str(format!("matrix {path}"))),
            ("tol", Json::Num(tol)),
        ];
        finish_telemetry(telemetry_out.as_deref(), &config);
        return;
    }
    if cmd == "bench" {
        run_bench_cmd(&rest);
        return;
    }
    if cmd == "concurrent" {
        run_concurrent_cmd(&rest, telemetry_out);
        return;
    }
    if cmd == "faults" {
        run_faults_cmd(&rest, telemetry_out);
        return;
    }
    if cmd == "trace" {
        run_trace_cmd(&rest);
        return;
    }
    let mut args = Args {
        scale: 1.0,
        runs: 15,
        tol: 1e-8,
        perturbed: false,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                args.scale = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--runs" => {
                args.runs = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--runs needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--tol" => {
                args.tol = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--tol needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--perturbed" => {
                args.perturbed = true;
                i += 1;
            }
            "--telemetry-out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--telemetry-out needs a file path");
                    std::process::exit(2);
                };
                memsci_telemetry::enable();
                telemetry_out = Some(path.into());
                i += 2;
            }
            "--telemetry-stream" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--telemetry-stream needs a file path");
                    std::process::exit(2);
                };
                memsci_telemetry::enable();
                telemetry_stream_path = Some(std::path::PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    // `perturbed` appears in the manifest header only when the new mode
    // is on, so classic fig12/fig13 streams stay byte-identical.
    let mut config = vec![
        ("command", Json::Str(cmd.clone())),
        ("scale", Json::Num(args.scale)),
        ("runs", Json::UInt(args.runs as u64)),
        ("tol", Json::Num(args.tol)),
    ];
    if args.perturbed {
        config.push(("perturbed", Json::Bool(true)));
    }
    let mut stream = telemetry_stream_path.as_deref().map(|path| {
        let config: Vec<(&str, Json)> = config.to_vec();
        match ManifestStream::create(path, &config) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("cannot create telemetry stream {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    });
    run(&cmd, args, &mut stream);
    if let Some(stream) = stream {
        let records = stream.records();
        match stream.finish() {
            Ok(()) => eprintln!(
                "telemetry stream written to {} ({records} records)",
                telemetry_stream_path
                    .as_deref()
                    .unwrap_or_else(|| std::path::Path::new("?"))
                    .display()
            ),
            Err(e) => {
                eprintln!("failed to finish telemetry stream: {e}");
                std::process::exit(1);
            }
        }
    }
    finish_telemetry(telemetry_out.as_deref(), &config);
}

/// `repro bench [--smoke] [--iters N] [--rhs K1,K2,..] [--matrix
/// M1,M2,..] [--out FILE]` — host wall-clock benchmark; writes the
/// schema-versioned document and prints a summary. `--rhs` sets the
/// multi-RHS batch widths swept by the `spmv_batch` section; `--matrix`
/// restricts the suite sweep behind the `matrix_sweep` section (the
/// default sweeps the whole 20-matrix suite). `--validate FILE` instead
/// checks an existing document against the schema without running
/// anything.
/// `--compare BASELINE.json NEW.json [--tolerance T]` instead diffs two
/// bench documents and exits nonzero on any slowdown beyond the
/// fractional tolerance (default 0.25 = 25%) — the perf-regression
/// gate.
fn run_bench_cmd(rest: &[String]) {
    if let Some(i) = rest.iter().position(|a| a == "--compare") {
        let (Some(base_path), Some(new_path)) = (rest.get(i + 1), rest.get(i + 2)) else {
            eprintln!("--compare needs two file paths: BASELINE.json NEW.json");
            std::process::exit(2);
        };
        let tolerance = match rest.iter().position(|a| a == "--tolerance") {
            Some(j) => rest
                .get(j + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--tolerance needs a number");
                    std::process::exit(2);
                }),
            None => 0.25,
        };
        let read = |path: &String| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            })
        };
        let base_text = read(base_path);
        let new_text = read(new_path);
        match perf::compare_bench(&base_text, &new_text, tolerance) {
            Ok(report) => {
                print!("{}", report.render());
                if !report.passed() {
                    std::process::exit(1);
                }
                return;
            }
            Err(e) => {
                eprintln!("bench compare failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let mut opts = perf::BenchOptions::full();
    let mut out = std::path::PathBuf::from("BENCH_PR10.json");
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--validate" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--validate needs a file path");
                    std::process::exit(2);
                };
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                match perf::validate_bench(&text) {
                    Ok(doc) => {
                        println!(
                            "{path}: ok (schema {} v{})",
                            perf::BENCH_SCHEMA_NAME,
                            doc.get("schema_version")
                                .and_then(Json::as_u64)
                                .unwrap_or(0)
                        );
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--smoke" => {
                opts = perf::BenchOptions::smoke();
                i += 1;
            }
            "--iters" => {
                opts.iters = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--matrix" => {
                let names: Option<Vec<String>> = rest.get(i + 1).map(|v| {
                    v.split(',')
                        .map(|n| n.trim().to_string())
                        .filter(|n| !n.is_empty())
                        .collect()
                });
                match names {
                    Some(names) if !names.is_empty() => {
                        for name in &names {
                            if memsci_sparse::suite::by_name(name).is_none() {
                                eprintln!("--matrix: {name} is not a suite matrix");
                                std::process::exit(2);
                            }
                        }
                        opts.sweep_matrices = Some(names);
                    }
                    _ => {
                        eprintln!("--matrix needs a comma-separated list of suite matrix names");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--rhs" => {
                let widths: Option<Vec<usize>> = rest
                    .get(i + 1)
                    .map(|v| v.split(',').map(|k| k.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match widths {
                    Some(widths) if !widths.is_empty() && widths.iter().all(|&k| k > 0) => {
                        opts.rhs_counts = widths;
                    }
                    _ => {
                        eprintln!("--rhs needs a comma-separated list of positive integers");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                };
                out = path.into();
                i += 2;
            }
            other => {
                eprintln!("unknown bench flag {other}");
                std::process::exit(2);
            }
        }
    }
    let doc = perf::run_bench(&opts);
    let text = doc.to_string_pretty();
    if let Err(e) = std::fs::write(&out, format!("{text}\n")) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{}", perf::summarize(&doc));
    println!("bench document written to {}", out.display());
}

/// `repro concurrent [--k N] [--engine fast|exact] [--telemetry-out
/// FILE]` — the shared-operator acceptance check: runs k sequential
/// re-programming solves of the bench system, then the same k solves
/// concurrently through one cached operator, and fails unless every
/// solution matches bit for bit, exactly one operator was programmed,
/// and the cache reports `k − 1` hits. The telemetry counters are reset
/// between the two passes, so a `--telemetry-out` manifest accounts
/// only the concurrent run (`operator_programs == 1`,
/// `cache_hits == k − 1`).
fn run_concurrent_cmd(rest: &[String], mut telemetry_out: Option<std::path::PathBuf>) {
    let mut k = 8usize;
    let mut engine = String::from("fast");
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--k" => {
                k = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 2)
                    .unwrap_or_else(|| {
                        eprintln!("--k needs an integer >= 2");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--engine" => {
                engine = match rest.get(i + 1).map(String::as_str) {
                    Some(e @ ("fast" | "exact")) => e.to_string(),
                    _ => {
                        eprintln!("--engine needs `fast` or `exact`");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--telemetry-out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--telemetry-out needs a file path");
                    std::process::exit(2);
                };
                telemetry_out = Some(path.into());
                i += 2;
            }
            other => {
                eprintln!("unknown concurrent flag {other}");
                std::process::exit(2);
            }
        }
    }
    // The cache counters must reach the manifest even when no env/flag
    // enabled the sink beforehand.
    memsci_telemetry::enable();
    let run = perf::concurrent_acceptance(&engine, k, 25);
    println!(
        "concurrent: {} engine, k={} — {} operator program(s), {} cache hit(s), \
         concurrent {:.4e}s vs sequential re-programs {:.4e}s ({:.2}x)",
        run.engine,
        run.k,
        run.operator_programs,
        run.cache_hits,
        run.concurrent_s,
        run.sequential_s,
        run.sequential_s / run.concurrent_s
    );
    let mut failed = false;
    if !run.matches_sequential {
        eprintln!("FAIL: concurrent solutions are not bitwise identical to sequential");
        failed = true;
    }
    if run.operator_programs != 1 {
        eprintln!(
            "FAIL: expected exactly 1 operator program, got {}",
            run.operator_programs
        );
        failed = true;
    }
    if run.cache_hits != (k - 1) as u64 {
        eprintln!(
            "FAIL: expected {} cache hits, got {}",
            k - 1,
            run.cache_hits
        );
        failed = true;
    }
    let config = [
        ("command", Json::Str("concurrent".into())),
        ("engine", Json::Str(engine)),
        ("k", Json::UInt(k as u64)),
    ];
    finish_telemetry(telemetry_out.as_deref(), &config);
    if failed {
        std::process::exit(1);
    }
    println!("concurrent: all {k} solutions bitwise identical to sequential");
}

/// `repro trace [--out FILE] [--scale S] [--iters N] [--capacity N]` —
/// runs the traced pipeline workload (exact CG, fast CG, fast batched
/// SpMV) with timeline tracing on and writes a Chrome `trace_event`
/// JSON document (default `TRACE.json`) loadable in Perfetto /
/// `chrome://tracing`. Host knobs (`MEMSCI_THREADS`, `MEMSCI_OVERLAP`)
/// shape the lane layout; timestamps are wall-clock and excluded from
/// every byte-reproducibility gate.
fn run_trace_cmd(rest: &[String]) {
    let mut opts = tracecmd::TraceOptions::default();
    let mut out = std::path::PathBuf::from("TRACE.json");
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                };
                out = path.into();
                i += 2;
            }
            "--scale" => {
                opts.scale = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a positive number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--iters" => {
                opts.max_iters = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--iters needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--capacity" => {
                opts.capacity = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--capacity needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown trace flag {other}");
                std::process::exit(2);
            }
        }
    }
    let doc = tracecmd::run_trace(&opts);
    let text = doc.to_string_pretty();
    if let Err(e) = std::fs::write(&out, format!("{text}\n")) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    match memsci_telemetry::validate_trace(&text) {
        Ok(summary) => println!(
            "trace written to {} ({} events, {} span paths, {} threads, depth {}, {} dropped)",
            out.display(),
            summary.events,
            summary.names.len(),
            summary.tids.len(),
            summary.max_depth,
            summary.dropped
        ),
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro faults [--runs N] [--scale S] [--tol T] [--out FILE]` — the
/// device-reliability campaign: sweeps stuck-at fault rate × retention
/// write age with the reprogram-and-retry repair lane armed, prints the
/// coverage table, and writes the schema-versioned report (default
/// `FAULTS_PR7.json`). `--scale` scales the test-system size (base
/// n = 128). `--d2d` / `--endurance` add device-to-device sigma and
/// endurance sigma-growth sweep axes (defaults `0`, which keeps the
/// classic rate × age grid). `--validate FILE` instead checks an
/// existing report
/// against the schema and its counter invariants without running
/// anything. The report and any `--telemetry-stream` records carry no
/// wall-clock or host-knob fields, so a fixed seed reproduces both
/// byte-for-byte at any `MEMSCI_THREADS` / `MEMSCI_OVERLAP` setting.
fn run_faults_cmd(rest: &[String], mut telemetry_out: Option<std::path::PathBuf>) {
    let mut cfg = faults::FaultCampaignConfig::default();
    let mut out = std::path::PathBuf::from("FAULTS_PR7.json");
    let mut stream_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--validate" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--validate needs a file path");
                    std::process::exit(2);
                };
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                let doc = memsci_telemetry::json::parse(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                });
                match faults::validate_report(&doc) {
                    Ok(()) => {
                        println!(
                            "{path}: ok (schema {} v{})",
                            faults::FAULT_SCHEMA,
                            doc.get("schema_version")
                                .and_then(Json::as_u64)
                                .unwrap_or(0)
                        );
                        return;
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--runs" => {
                cfg.runs = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--runs needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--scale" => {
                let scale: f64 = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a positive number");
                        std::process::exit(2);
                    });
                cfg.n = ((128.0 * scale).round() as usize).clamp(32, 1024);
                i += 2;
            }
            "--tol" => {
                cfg.tol = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--tol needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                };
                out = path.into();
                i += 2;
            }
            "--d2d" => {
                cfg.d2d_sigmas = parse_axis(rest.get(i + 1), "--d2d");
                i += 2;
            }
            "--endurance" => {
                cfg.endurance_growths = parse_axis(rest.get(i + 1), "--endurance");
                i += 2;
            }
            "--telemetry-out" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--telemetry-out needs a file path");
                    std::process::exit(2);
                };
                memsci_telemetry::enable();
                telemetry_out = Some(path.into());
                i += 2;
            }
            "--telemetry-stream" => {
                let Some(path) = rest.get(i + 1) else {
                    eprintln!("--telemetry-stream needs a file path");
                    std::process::exit(2);
                };
                memsci_telemetry::enable();
                stream_path = Some(std::path::PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown faults flag {other}");
                std::process::exit(2);
            }
        }
    }
    // The stream header promises byte-identity across hosts, so it
    // carries only the campaign parameters — never threads or overlap.
    let config = [
        ("command", Json::Str("faults".into())),
        ("runs", Json::UInt(cfg.runs as u64)),
        ("n", Json::UInt(cfg.n as u64)),
        ("tol", Json::Num(cfg.tol)),
        ("seed", Json::UInt(cfg.seed)),
        ("retry_limit", Json::UInt(u64::from(cfg.retry_limit))),
    ];
    let mut stream = stream_path.as_deref().map(|path| {
        let config: Vec<(&str, Json)> = config.to_vec();
        match ManifestStream::create(path, &config) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("cannot create telemetry stream {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    });
    println!(
        "Fault campaign — AN coverage and convergence vs fault rate x drift age \
         ({} runs/point, n={}, retry limit {})",
        cfg.runs, cfg.n, cfg.retry_limit
    );
    let points = faults::campaign_with(&cfg, &mut |p| {
        if let Some(stream) = stream.as_mut() {
            if let Err(e) = stream.record(&p.label, &faults::stream_snapshot()) {
                eprintln!("telemetry stream write failed: {e}");
                std::process::exit(1);
            }
        }
    });
    print!("{}", faults::summarize(&points));
    let doc = faults::report(&cfg, &points);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.to_string_pretty())) {
        eprintln!("cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("fault campaign report written to {}", out.display());
    if let Some(stream) = stream {
        let records = stream.records();
        match stream.finish() {
            Ok(()) => eprintln!(
                "telemetry stream written to {} ({records} records)",
                stream_path
                    .as_deref()
                    .unwrap_or_else(|| std::path::Path::new("?"))
                    .display()
            ),
            Err(e) => {
                eprintln!("failed to finish telemetry stream: {e}");
                std::process::exit(1);
            }
        }
    }
    finish_telemetry(telemetry_out.as_deref(), &config);
}

/// Parses a comma-separated sweep-axis list of finite non-negative
/// numbers (the `--d2d` / `--endurance` fault-campaign flags).
fn parse_axis(arg: Option<&String>, flag: &str) -> Vec<f64> {
    let values: Option<Vec<f64>> = arg
        .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
        .unwrap_or(None);
    match values {
        Some(values) if !values.is_empty() && values.iter().all(|v| v.is_finite() && *v >= 0.0) => {
            values
        }
        _ => {
            eprintln!("{flag} needs a comma-separated list of non-negative numbers");
            std::process::exit(2);
        }
    }
}

/// Writes the run manifest when the sink is on and a path was chosen.
fn finish_telemetry(path: Option<&std::path::Path>, config: &[(&str, Json)]) {
    if !memsci_telemetry::enabled() {
        return;
    }
    let Some(path) = path else {
        return; // enabled without a file: counters stay in-process
    };
    match memsci_telemetry::write_manifest(path, &memsci_telemetry::snapshot(), config) {
        Ok(()) => eprintln!("telemetry manifest written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write telemetry manifest {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Flushes one stream record labelled after the finished sweep point,
/// or does nothing when streaming is off.
fn stream_point(stream: &mut Option<ManifestStream>, point: &montecarlo::McPoint) {
    if let Some(stream) = stream.as_mut() {
        if let Err(e) = stream.record(&point.label, &memsci_telemetry::snapshot()) {
            eprintln!("telemetry stream write failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run(cmd: &str, args: Args, stream: &mut Option<ManifestStream>) {
    match cmd {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2(args.scale)),
        "table3" => print!("{}", tables::table3()),
        "fig6" => print!("{}", figures::figure6()),
        "fig7" => {
            print!(
                "{}",
                figures::blocking_pattern("Pres_Poisson", args.scale.min(0.25))
            );
            println!();
            print!(
                "{}",
                figures::blocking_pattern("xenon1", args.scale.min(0.25))
            );
        }
        "fig11" => {
            print!(
                "{}",
                figures::blocking_pattern("ns3Da", args.scale.min(0.25))
            );
        }
        "fig8" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure8(&outcomes));
        }
        "fig9" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure9(&outcomes));
        }
        "fig10" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure10(&outcomes));
        }
        "solve" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure8(&outcomes));
            println!();
            print!("{}", figures::figure9(&outcomes));
            println!();
            print!("{}", figures::figure10(&outcomes));
            println!();
            print!("{}", figures::endurance_report(&outcomes));
        }
        "fig12" => {
            let mc = montecarlo::MonteCarloConfig {
                runs: args.runs,
                ..Default::default()
            };
            println!(
                "Figure 12 — iteration count vs bits/cell and dynamic range ({} runs/point{})",
                mc.runs,
                if args.perturbed {
                    ", perturbed-input batch mode"
                } else {
                    ""
                }
            );
            let points = if args.perturbed {
                montecarlo::figure12_perturbed_with(&mc, &mut |p| stream_point(stream, p))
            } else {
                montecarlo::figure12_with(&mc, &mut |p| stream_point(stream, p))
            };
            print_mc(&points, "B=1; D=1.5K");
        }
        "fig13" => {
            let mc = montecarlo::MonteCarloConfig {
                runs: args.runs,
                ..Default::default()
            };
            println!(
                "Figure 13 — iteration count vs bits/cell and programming error ({} runs/point{})",
                mc.runs,
                if args.perturbed {
                    ", perturbed-input batch mode"
                } else {
                    ""
                }
            );
            let points = if args.perturbed {
                montecarlo::figure13_perturbed_with(&mc, &mut |p| stream_point(stream, p))
            } else {
                montecarlo::figure13_with(&mc, &mut |p| stream_point(stream, p))
            };
            print_mc(&points, "B=1; E=0%");
        }
        "smoke" => {
            // Fast telemetry exerciser: one well-blocking suite matrix
            // through the modelled accelerator (ADC / slice / activation
            // counters), then a small bit-exact solve with RTN upsets
            // injected so the AN-code correction counters fire (§IV-E).
            use memsci_core::{AcceleratorConfig, ExactAcceleratorPlatform, ExactOptions};
            use memsci_solvers::platform::Platform;
            use memsci_solvers::{cg::cg, SolveOptions};
            use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
            use memsci_sparse::generate::poisson2d;
            use memsci_sparse::suite::by_name;

            let entry = by_name("Pres_Poisson").expect("suite entry");
            let scale = args.scale.min(0.05);
            let o = suite_run::run_matrix(&entry, scale, args.tol);
            println!(
                "smoke: {} @ scale {scale} -> {:?}, accel {} iters (converged {}), gpu {} iters",
                o.name, o.target, o.accel.iterations, o.accel.converged, o.gpu.iterations
            );

            let a = poisson2d(12, 12);
            let n = a.rows();
            let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
            let mut exact = ExactAcceleratorPlatform::new(
                &blocked,
                AcceleratorConfig::with_banks(2),
                ExactOptions {
                    seed: 7,
                    rtn_probability: 2e-5,
                    ..Default::default()
                },
            )
            .expect("finite matrix");
            let b = vec![1.0; n];
            let mut x = vec![0.0; n];
            let opts = SolveOptions::with_tol(1e-8).max_iters(400).telemetry(true);
            let r = cg(&mut exact, &b, &mut x, &opts);
            // A vector spanning many binary orders of magnitude makes the
            // early-termination logic skip bit slices (§IV-B), which the
            // uniform CG vectors above rarely trigger.
            let wide: Vec<f64> = (0..n)
                .map(|i| (2.0f64).powi(-((i % 8) as i32) * 25))
                .collect();
            let mut y = vec![0.0; n];
            exact.spmv(&wide, &mut y);
            println!(
                "smoke: exact poisson2d(12x12) {} iters (converged {}), AN corrections {}, detections {}",
                r.iterations, r.converged, exact.an_corrections, exact.an_detections
            );
            if let Some(t) = &r.telemetry {
                println!(
                    "smoke: solve telemetry: {} counters nonzero, {} spans",
                    t.counters.iter().filter(|&(_, v)| v > 0).count(),
                    t.spans.len()
                );
            }
        }
        "area" => print!("{}", figures::area_report()),
        "endurance" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::endurance_report(&outcomes));
        }
        "ablation" => print!("{}", figures::ablation()),
        "sizing" => print!("{}", figures::sizing_exploration()),
        "detail" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::detail(&outcomes));
        }
        "all" => {
            for c in ["table1", "table3", "fig6", "sizing", "ablation", "area"] {
                run(c, args, stream);
                println!();
            }
            run("table2", args, stream);
            println!();
            run("fig7", args, stream);
            println!();
            run("fig11", args, stream);
            println!();
            run("solve", args, stream);
            println!();
            run("fig12", args, stream);
            println!();
            run("fig13", args, stream);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
}

fn print_mc(points: &[montecarlo::McPoint], baseline_label: &str) {
    let baseline = points
        .iter()
        .find(|p| p.label == baseline_label)
        .map(|p| p.mean)
        .unwrap_or(1.0);
    println!(
        "{:<14} | {:>5} | {:>6} | {:>5} | fails | normalized (min/mean/max)",
        "config", "min", "mean", "max"
    );
    for p in points {
        let (nmin, nmean, nmax) = p.normalized(baseline);
        println!(
            "{:<14} | {:>5} | {:>6.1} | {:>5} | {:>5} | {:.2} / {:.2} / {:.2}",
            p.label, p.min, p.mean, p.max, p.failures, nmin, nmean, nmax
        );
    }
}
