//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--scale S] [--runs N] [--tol T]
//!
//! experiments:
//!   table1 table2 table3
//!   fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!   area endurance ablation solve all
//! ```
//!
//! `solve` runs the 20-matrix suite once and prints Figures 8, 9, and
//! 10 together (they share the same runs); `all` runs everything.

use memsci_bench::{figures, montecarlo, suite_run, tables};

#[derive(Debug, Clone, Copy)]
struct Args {
    scale: f64,
    runs: usize,
    tol: f64,
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("usage: repro <experiment> [--scale S] [--runs N] [--tol T]");
        eprintln!("experiments: table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11");
        eprintln!("             fig12 fig13 area endurance ablation sizing solve all");
        eprintln!("             matrix <file.mtx>   (run a real SuiteSparse download)");
        std::process::exit(2);
    };
    let rest: Vec<String> = argv.collect();
    if cmd == "matrix" {
        let Some(path) = rest.first() else {
            eprintln!("usage: repro matrix <file.mtx> [--tol T]");
            std::process::exit(2);
        };
        let tol = rest
            .iter()
            .position(|a| a == "--tol")
            .and_then(|i| rest.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-8);
        match memsci_bench::figures::real_matrix_report(path, tol) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("failed to process {path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let mut args = Args {
        scale: 1.0,
        runs: 15,
        tol: 1e-8,
    };
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                args.scale = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--runs" => {
                args.runs = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--runs needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--tol" => {
                args.tol = rest
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--tol needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    run(&cmd, args);
}

fn run(cmd: &str, args: Args) {
    match cmd {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2(args.scale)),
        "table3" => print!("{}", tables::table3()),
        "fig6" => print!("{}", figures::figure6()),
        "fig7" => {
            print!(
                "{}",
                figures::blocking_pattern("Pres_Poisson", args.scale.min(0.25))
            );
            println!();
            print!(
                "{}",
                figures::blocking_pattern("xenon1", args.scale.min(0.25))
            );
        }
        "fig11" => {
            print!(
                "{}",
                figures::blocking_pattern("ns3Da", args.scale.min(0.25))
            );
        }
        "fig8" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure8(&outcomes));
        }
        "fig9" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure9(&outcomes));
        }
        "fig10" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure10(&outcomes));
        }
        "solve" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::figure8(&outcomes));
            println!();
            print!("{}", figures::figure9(&outcomes));
            println!();
            print!("{}", figures::figure10(&outcomes));
            println!();
            print!("{}", figures::endurance_report(&outcomes));
        }
        "fig12" => {
            let mc = montecarlo::MonteCarloConfig {
                runs: args.runs,
                ..Default::default()
            };
            println!(
                "Figure 12 — iteration count vs bits/cell and dynamic range ({} runs/point)",
                mc.runs
            );
            print_mc(&montecarlo::figure12(&mc), "B=1; D=1.5K");
        }
        "fig13" => {
            let mc = montecarlo::MonteCarloConfig {
                runs: args.runs,
                ..Default::default()
            };
            println!(
                "Figure 13 — iteration count vs bits/cell and programming error ({} runs/point)",
                mc.runs
            );
            print_mc(&montecarlo::figure13(&mc), "B=1; E=0%");
        }
        "area" => print!("{}", figures::area_report()),
        "endurance" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::endurance_report(&outcomes));
        }
        "ablation" => print!("{}", figures::ablation()),
        "sizing" => print!("{}", figures::sizing_exploration()),
        "detail" => {
            let outcomes = suite_run::run_suite(args.scale, args.tol);
            print!("{}", figures::detail(&outcomes));
        }
        "all" => {
            for c in ["table1", "table3", "fig6", "sizing", "ablation", "area"] {
                run(c, args);
                println!();
            }
            run("table2", args);
            println!();
            run("fig7", args);
            println!();
            run("fig11", args);
            println!();
            run("solve", args);
            println!();
            run("fig12", args);
            println!();
            run("fig13", args);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
}

fn print_mc(points: &[montecarlo::McPoint], baseline_label: &str) {
    let baseline = points
        .iter()
        .find(|p| p.label == baseline_label)
        .map(|p| p.mean)
        .unwrap_or(1.0);
    println!(
        "{:<14} | {:>5} | {:>6} | {:>5} | fails | normalized (min/mean/max)",
        "config", "min", "mean", "max"
    );
    for p in points {
        let (nmin, nmean, nmax) = p.normalized(baseline);
        println!(
            "{:<14} | {:>5} | {:>6.1} | {:>5} | {:>5} | {:.2} / {:.2} / {:.2}",
            p.label, p.min, p.mean, p.max, p.failures, nmin, nmean, nmax
        );
    }
}
