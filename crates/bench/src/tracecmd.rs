//! `repro trace` — run a representative staged-pipeline workload with
//! timeline tracing on and export a Chrome `trace_event` document.
//!
//! The workload deliberately exercises every event source the tracer
//! knows about: an exact-engine CG solve (per-iteration solver spans,
//! `cluster_mvm` / `residual_csr` stage lanes, per-bank shard spans on
//! `memsci-exec` worker threads), a fast-engine solve, and one batched
//! multi-RHS kernel (`batch_mvm`). Host knobs come from the usual
//! environment (`MEMSCI_THREADS`, `MEMSCI_OVERLAP`), so running with
//! `MEMSCI_OVERLAP=1` puts the residual lane on its own thread id —
//! visibly parallel to the cluster lane in Perfetto.
//!
//! Tracing is wall-clock and therefore excluded from every
//! byte-reproducibility gate; the solve *outputs* under tracing are
//! bitwise identical to untraced runs (asserted by the workspace's
//! trace-identity tests).

use memsci_core::{AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions};
use memsci_solvers::platform::Platform;
use memsci_solvers::{cg::cg, SolveOptions};
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::by_name;
use memsci_telemetry::json::Json;

/// Shape of one `repro trace` run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Scale factor applied to the suite matrix (`Pres_Poisson`).
    pub scale: f64,
    /// Iteration cap for the traced solves.
    pub max_iters: usize,
    /// Trace ring capacity in events.
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> TraceOptions {
        TraceOptions {
            scale: 0.05,
            max_iters: 8,
            capacity: memsci_telemetry::trace::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Runs the traced workload and returns the Chrome `trace_event`
/// document. The trace ring is cleared first and tracing is disabled
/// again afterwards; the telemetry statistics sink is left exactly as
/// found.
pub fn run_trace(opts: &TraceOptions) -> Json {
    let a = by_name("Pres_Poisson")
        .expect("suite entry")
        .generate_scaled(opts.scale.clamp(0.01, 1.0));
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let n = a.rows();
    let b = vec![1.0; n];
    let solve_opts = SolveOptions::with_tol(1e-8).max_iters(opts.max_iters);
    // Threads and overlap stay unset so MEMSCI_THREADS / MEMSCI_OVERLAP
    // drive the lane layout the trace is meant to expose.
    let config = AcceleratorConfig::with_banks(4);

    memsci_telemetry::trace::enable_with_capacity(opts.capacity);
    memsci_telemetry::trace::clear();

    {
        let _workload = memsci_telemetry::span("trace/exact_cg");
        let mut exact = ExactAcceleratorPlatform::new(
            &blocked,
            config.clone(),
            ExactOptions {
                seed: 7,
                ..Default::default()
            },
        )
        .expect("suite matrix programs cleanly");
        let mut x = vec![0.0; n];
        cg(&mut exact, &b, &mut x, &solve_opts);
    }
    {
        let _workload = memsci_telemetry::span("trace/fast_cg");
        let mut fast = AcceleratorPlatform::new(&blocked, config.clone());
        let mut x = vec![0.0; n];
        cg(&mut fast, &b, &mut x, &solve_opts);
    }
    {
        let _workload = memsci_telemetry::span("trace/fast_batch");
        let mut fast = AcceleratorPlatform::new(&blocked, config);
        let k = 4;
        let xs: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                (0..n)
                    .map(|i| (i as f64 * 0.17 + j as f64 * 0.43).sin() + 1.1)
                    .collect()
            })
            .collect();
        let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
        let mut ys = vec![Vec::new(); k];
        fast.spmv_batch(&x_refs, &mut ys);
    }

    memsci_telemetry::trace::disable();
    memsci_telemetry::trace::export_chrome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_telemetry::validate_trace;

    #[test]
    fn traced_workload_exports_a_valid_pipeline_trace() {
        let _x = memsci_telemetry::exclusive_for_tests();
        memsci_telemetry::trace::shutdown();
        let opts = TraceOptions {
            scale: 0.02,
            max_iters: 2,
            ..Default::default()
        };
        let doc = run_trace(&opts);
        memsci_telemetry::trace::shutdown();
        let summary = validate_trace(&doc.to_string_pretty()).unwrap();
        // The stage lanes and all three workload phases are present.
        for name in [
            "trace/exact_cg",
            "trace/fast_cg",
            "trace/fast_batch",
            "cluster_mvm",
            "residual_csr",
            "batch_mvm",
            "iter",
            "exact/bank_shard",
            "cluster_program",
        ] {
            assert!(summary.names.contains(name), "missing event `{name}`");
        }
        assert_eq!(summary.dropped, 0);
    }
}
