//! Monte-Carlo device-sensitivity experiments (Figures 12–13).
//!
//! Convergence behaviour is re-evaluated on the bit-exact platform
//! under varying cell configurations: bits per cell × dynamic range
//! (Figure 12) and bits per cell × programming error (Figure 13).
//! Iteration counts over many seeded runs are reported normalized to
//! the paper's baseline point (1-bit cells, `R_off/R_on = 1500`, ideal
//! programming).

use memsci_core::service::{EngineSpec, OperatorCache};
use memsci_core::{AcceleratorConfig, ExactAcceleratorPlatform, ExactOptions, ExecStats};
use memsci_solvers::block_cg::block_cg;
use memsci_solvers::cg::cg;
use memsci_solvers::SolveOptions;
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::generate::{self, ValueModel};
use memsci_sparse::Csr;
use memsci_xbar::CellSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Solves per configuration point (the paper uses 100).
    pub runs: usize,
    /// Linear-system size (one full crossbar block; 256 puts the §IV-E
    /// leak of two-bit cells right at the half-LSB boundary, where the
    /// paper's sensitivity appears without wholesale divergence).
    pub n: usize,
    /// Stopping tolerance.
    pub tol: f64,
    /// Iteration cap (non-converged runs are reported at the cap).
    pub max_iters: usize,
    /// Per-read RTN upset probability (0 by default: discrete count
    /// upsets are either AN-corrected — invisible — or catastrophic, so
    /// the Monte-Carlo spread instead comes from per-seed programming
    /// error).
    pub rtn_probability: f64,
    /// Host worker threads for the trial loop (`None` = machine
    /// parallelism; `MEMSCI_THREADS` overrides). Results are
    /// bit-identical at any setting: every trial derives its RNG stream
    /// from its own seed.
    pub threads: Option<usize>,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            runs: 15,
            n: 256,
            tol: 1e-6,
            max_iters: 150,
            rtn_probability: 0.0,
            threads: None,
        }
    }
}

/// Aggregated iteration counts for one configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct McPoint {
    /// Configuration label (e.g. `B=2; D=0.75K`).
    pub label: String,
    /// Minimum iterations over the runs.
    pub min: usize,
    /// Mean iterations over the runs.
    pub mean: f64,
    /// Maximum iterations over the runs.
    pub max: usize,
    /// Runs that failed to converge within the cap.
    pub failures: usize,
    /// Host execution stats of the trial loop (wall-clock measurement,
    /// not modelled accelerator time).
    pub exec: ExecStats,
}

impl McPoint {
    /// Normalizes the point against a baseline mean.
    pub fn normalized(&self, baseline_mean: f64) -> (f64, f64, f64) {
        (
            self.min as f64 / baseline_mean,
            self.mean / baseline_mean,
            self.max as f64 / baseline_mean,
        )
    }
}

/// The SPD test system: a banded matrix filling one 512×512 block, so
/// column currents see the full §IV-E summation pressure.
pub fn test_matrix(n: usize) -> Csr {
    let mut rng = StdRng::seed_from_u64(2024);
    let base = generate::banded(n, 16, 0.85, ValueModel::with_spread(6), &mut rng);
    let sym = generate::symmetrize(&base);
    generate::make_diagonally_dominant(&sym, 1.1)
}

/// Runs CG on the exact platform for one cell configuration and seed,
/// returning the iteration count (the cap if unconverged).
pub fn mc_iterations(a: &Csr, cell: CellSpec, seed: u64, mc: &MonteCarloConfig) -> (usize, bool) {
    let blocked = BlockedMatrix::block(a, &BlockingConfig::default());
    let mut config = AcceleratorConfig::with_banks(1);
    config.cell = cell;
    let mut platform = ExactAcceleratorPlatform::new(
        &blocked,
        config,
        ExactOptions {
            seed,
            rtn_probability: mc.rtn_probability,
            ..Default::default()
        },
    )
    .expect("test matrix programs cleanly");
    let n = a.rows();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let opts = SolveOptions::with_tol(mc.tol).max_iters(mc.max_iters);
    let report = cg(&mut platform, &b, &mut x, &opts);
    (report.iterations, report.converged)
}

/// Sweeps one cell configuration over the Monte-Carlo seeds.
///
/// Trials are independent — each derives its stream from
/// `task_seed(0, trial)` (which reproduces the historical `0..runs`
/// seeds) — so they fan out across host workers; the aggregation is a
/// serial fold in trial order, making the point bit-identical at any
/// thread count.
pub fn sweep_point(a: &Csr, label: String, cell: CellSpec, mc: &MonteCarloConfig) -> McPoint {
    let threads = memsci_core::exec::worker_count(mc.threads);
    let (trials, exec) = memsci_core::exec::timed(threads, mc.runs, || {
        memsci_core::exec::parallel_tasks(threads, mc.runs, |trial| {
            mc_iterations(a, cell, memsci_core::exec::task_seed(0, trial as u64), mc)
        })
    });
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut failures = 0usize;
    for (iters, converged) in trials {
        let iters = if converged { iters } else { mc.max_iters };
        if !converged {
            failures += 1;
        }
        min = min.min(iters);
        max = max.max(iters);
        sum += iters;
    }
    McPoint {
        label,
        min,
        mean: sum as f64 / mc.runs as f64,
        max,
        failures,
        exec,
    }
}

/// Exact-engine accelerator config for one Monte-Carlo cell
/// configuration (shared by the per-trial and perturbed-input modes).
fn point_config(cell: CellSpec, mc: &MonteCarloConfig) -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(1);
    config.cell = cell;
    config.threads = mc.threads;
    config
}

/// The exact-engine spec of the perturbed-input mode: one fixed
/// programming seed, so every trial of a point shares one operator.
fn perturbed_engine(mc: &MonteCarloConfig) -> EngineSpec {
    EngineSpec::Exact(ExactOptions {
        seed: 0,
        rtn_probability: mc.rtn_probability,
        ..Default::default()
    })
}

/// The deterministic perturbed right-hand side of one trial: the unit
/// source of the per-trial mode, wobbled per entry by a trial-indexed
/// harmonic. No RNG — trial j's vector is the same on every host.
pub fn perturbed_rhs(n: usize, trial: u64) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + 0.05 * ((i as f64) * 0.7 + (trial as f64) * 1.3).sin())
        .collect()
}

/// Sweeps one cell configuration in *perturbed-input* mode: instead of
/// re-programming the operator per trial (per-seed programming error),
/// the point programs the matrix **once** — through `cache`, so repeat
/// points are free — and runs every trial's [`perturbed_rhs`] through
/// the batched MVM lane in one deflating [`block_cg`] call. Each column
/// reproduces the plain per-trial `cg` iteration bit for bit against a
/// session over the same cached operator.
pub fn sweep_point_perturbed(
    a: &Csr,
    label: String,
    cell: CellSpec,
    mc: &MonteCarloConfig,
    cache: &OperatorCache,
) -> McPoint {
    let n = a.rows();
    let config = point_config(cell, mc);
    let shared = cache
        .get_or_program(a, &config, &perturbed_engine(mc))
        .expect("test matrix programs cleanly");
    let threads = memsci_core::exec::worker_count(mc.threads);
    let (reports, exec) = memsci_core::exec::timed(threads, mc.runs, || {
        let mut session = shared.open_session();
        let bs: Vec<Vec<f64>> = (0..mc.runs).map(|t| perturbed_rhs(n, t as u64)).collect();
        let b_refs: Vec<&[f64]> = bs.iter().map(|b| b.as_slice()).collect();
        let mut xs = vec![vec![0.0; n]; mc.runs];
        let opts = SolveOptions::with_tol(mc.tol).max_iters(mc.max_iters);
        block_cg(&mut session, &b_refs, &mut xs, &opts)
    });
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut failures = 0usize;
    for report in reports {
        let iters = if report.converged {
            report.iterations
        } else {
            mc.max_iters
        };
        if !report.converged {
            failures += 1;
        }
        min = min.min(iters);
        max = max.max(iters);
        sum += iters;
    }
    McPoint {
        label,
        min,
        mean: sum as f64 / mc.runs as f64,
        max,
        failures,
        exec,
    }
}

/// [`figure12`] in perturbed-input mode: same cell grid, one cached
/// operator per point, trials batched through the MVM lane.
pub fn figure12_perturbed(mc: &MonteCarloConfig) -> Vec<McPoint> {
    figure12_perturbed_with(mc, &mut |_| {})
}

/// [`figure12_perturbed`] with a per-point observer; see
/// [`figure12_with`].
pub fn figure12_perturbed_with(
    mc: &MonteCarloConfig,
    observe: &mut dyn FnMut(&McPoint),
) -> Vec<McPoint> {
    let a = test_matrix(mc.n);
    let cache = OperatorCache::with_capacity(8);
    let mut out = Vec::new();
    for bits in [1u32, 2] {
        for dr in [750.0, 1500.0, 3000.0] {
            let cell = CellSpec::default()
                .with_bits_per_cell(bits)
                .with_dynamic_range(dr)
                .with_programming_sigma(0.005);
            let label = format!("B={bits}; D={}K", dr / 1000.0);
            let point = sweep_point_perturbed(&a, label, cell, mc, &cache);
            observe(&point);
            out.push(point);
        }
    }
    out
}

/// [`figure13`] in perturbed-input mode; see [`figure12_perturbed`].
pub fn figure13_perturbed(mc: &MonteCarloConfig) -> Vec<McPoint> {
    figure13_perturbed_with(mc, &mut |_| {})
}

/// [`figure13_perturbed`] with a per-point observer; see
/// [`figure12_with`].
pub fn figure13_perturbed_with(
    mc: &MonteCarloConfig,
    observe: &mut dyn FnMut(&McPoint),
) -> Vec<McPoint> {
    let a = test_matrix(mc.n);
    let cache = OperatorCache::with_capacity(8);
    let mut out = Vec::new();
    for bits in [1u32, 2] {
        for sigma in [0.0, 0.01, 0.03, 0.05] {
            let cell = CellSpec::default()
                .with_bits_per_cell(bits)
                .with_programming_sigma(sigma);
            let label = format!("B={bits}; E={}%", sigma * 100.0);
            let point = sweep_point_perturbed(&a, label, cell, mc, &cache);
            observe(&point);
            out.push(point);
        }
    }
    out
}

/// Figure 12: iteration count vs bits per cell × dynamic range,
/// normalized to 1-bit cells at `R_off/R_on = 1500`.
///
/// Every point carries a small (0.5%) programming error — well within
/// the §VIII-G-reported achievable precision — which is the per-seed
/// randomness behind the min/mean/max whiskers; the dynamic-range
/// effect itself comes from the deterministic off-state leakage.
pub fn figure12(mc: &MonteCarloConfig) -> Vec<McPoint> {
    figure12_with(mc, &mut |_| {})
}

/// [`figure12`] with an observer invoked after each sweep point
/// completes — the hook long sweeps use to flush one telemetry stream
/// record per trial batch, so a killed run still leaves every finished
/// point on disk.
pub fn figure12_with(mc: &MonteCarloConfig, observe: &mut dyn FnMut(&McPoint)) -> Vec<McPoint> {
    let a = test_matrix(mc.n);
    let mut out = Vec::new();
    for bits in [1u32, 2] {
        for dr in [750.0, 1500.0, 3000.0] {
            let cell = CellSpec::default()
                .with_bits_per_cell(bits)
                .with_dynamic_range(dr)
                .with_programming_sigma(0.005);
            let label = format!("B={bits}; D={}K", dr / 1000.0);
            let point = sweep_point(&a, label, cell, mc);
            observe(&point);
            out.push(point);
        }
    }
    out
}

/// Figure 13: iteration count vs bits per cell × programming error,
/// normalized to 1-bit cells with ideal programming.
pub fn figure13(mc: &MonteCarloConfig) -> Vec<McPoint> {
    figure13_with(mc, &mut |_| {})
}

/// [`figure13`] with a per-point observer; see [`figure12_with`].
pub fn figure13_with(mc: &MonteCarloConfig, observe: &mut dyn FnMut(&McPoint)) -> Vec<McPoint> {
    let a = test_matrix(mc.n);
    let mut out = Vec::new();
    for bits in [1u32, 2] {
        for sigma in [0.0, 0.01, 0.03, 0.05] {
            let cell = CellSpec::default()
                .with_bits_per_cell(bits)
                .with_programming_sigma(sigma);
            let label = format!("B={bits}; E={}%", sigma * 100.0);
            let point = sweep_point(&a, label, cell, mc);
            observe(&point);
            out.push(point);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_mc() -> MonteCarloConfig {
        MonteCarloConfig {
            runs: 2,
            n: 64,
            tol: 1e-6,
            max_iters: 200,
            ..Default::default()
        }
    }

    #[test]
    fn ideal_single_bit_cells_converge() {
        let mc = small_mc();
        let a = test_matrix(mc.n);
        let (iters, converged) = mc_iterations(&a, CellSpec::default(), 0, &mc);
        assert!(converged, "ideal cells must converge ({iters} iters)");
        assert!(iters < mc.max_iters);
    }

    #[test]
    fn sweep_point_aggregates() {
        let mc = small_mc();
        let a = test_matrix(mc.n);
        let p = sweep_point(&a, "B=1; D=1.5K".into(), CellSpec::default(), &mc);
        assert!(p.min <= p.max);
        assert!(p.mean >= p.min as f64 && p.mean <= p.max as f64);
        assert_eq!(p.failures, 0);
        let (nmin, nmean, nmax) = p.normalized(p.mean);
        assert!(nmin <= 1.0 + 1e-12 && nmax + 1e-12 >= 1.0);
        assert!((nmean - 1.0).abs() < 1e-12);
        assert_eq!(p.exec.tasks, mc.runs);
    }

    #[test]
    fn perturbed_point_matches_sequential_sessions_bitwise() {
        // The batched perturbed-input point must reproduce, bit for bit,
        // one plain cg per trial on fresh sessions over the same cached
        // operator — the deflating block recurrence may not change a
        // single iterate.
        let mc = small_mc();
        let a = test_matrix(mc.n);
        let cell = CellSpec::default().with_programming_sigma(0.01);
        let cache = OperatorCache::with_capacity(2);
        let point = sweep_point_perturbed(&a, "p".into(), cell, &mc, &cache);

        let config = point_config(cell, &mc);
        let shared = cache
            .get_or_program(&a, &config, &perturbed_engine(&mc))
            .unwrap();
        let opts = SolveOptions::with_tol(mc.tol).max_iters(mc.max_iters);
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for trial in 0..mc.runs {
            let b = perturbed_rhs(a.rows(), trial as u64);
            let mut x = vec![0.0; a.rows()];
            let mut session = shared.open_session();
            let report = cg(&mut session, &b, &mut x, &opts);
            assert!(report.converged, "trial {trial}");
            min = min.min(report.iterations);
            max = max.max(report.iterations);
            sum += report.iterations;
        }
        assert_eq!(point.min, min);
        assert_eq!(point.max, max);
        assert_eq!(
            point.mean.to_bits(),
            (sum as f64 / mc.runs as f64).to_bits()
        );
        assert_eq!(point.failures, 0);
        // One program served the batched point and every sequential
        // replay: only the first lookup missed.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, stats.lookups - 1);
    }

    #[test]
    fn perturbed_trials_are_host_deterministic() {
        let mc1 = MonteCarloConfig {
            threads: Some(1),
            ..small_mc()
        };
        let mc2 = MonteCarloConfig {
            threads: Some(2),
            ..small_mc()
        };
        let a = test_matrix(mc1.n);
        let cell = CellSpec::default().with_programming_sigma(0.01);
        let serial =
            sweep_point_perturbed(&a, "p".into(), cell, &mc1, &OperatorCache::with_capacity(2));
        let parallel =
            sweep_point_perturbed(&a, "p".into(), cell, &mc2, &OperatorCache::with_capacity(2));
        assert_eq!(parallel.min, serial.min);
        assert_eq!(parallel.mean.to_bits(), serial.mean.to_bits());
        assert_eq!(parallel.max, serial.max);
        assert_eq!(parallel.failures, serial.failures);
    }

    #[test]
    fn parallel_trials_match_serial() {
        let a = test_matrix(64);
        let cell = CellSpec::default().with_programming_sigma(0.01);
        let mut serial_mc = small_mc();
        serial_mc.threads = Some(1);
        let serial = sweep_point(&a, "p".into(), cell, &serial_mc);
        let mut parallel_mc = small_mc();
        parallel_mc.threads = Some(2);
        let parallel = sweep_point(&a, "p".into(), cell, &parallel_mc);
        assert_eq!(parallel.min, serial.min);
        assert_eq!(parallel.mean.to_bits(), serial.mean.to_bits());
        assert_eq!(parallel.max, serial.max);
        assert_eq!(parallel.failures, serial.failures);
        assert_eq!(parallel.exec.threads, 2);
    }
}
