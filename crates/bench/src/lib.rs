//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! The `repro` binary exposes one subcommand per artifact:
//!
//! ```text
//! cargo run --release -p memsci-bench --bin repro -- table2
//! cargo run --release -p memsci-bench --bin repro -- fig8 --scale 0.5
//! cargo run --release -p memsci-bench --bin repro -- all
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod figures;
pub mod montecarlo;
pub mod perf;
pub mod suite_run;
pub mod tables;
pub mod tracecmd;
