//! Fault-injection campaigns: AN-code coverage and solver convergence
//! under device faults.
//!
//! The campaign sweeps a stuck-at fault rate × retention write-age grid
//! over the exact platform with the reprogram-and-retry repair lane
//! armed, running CG and BiCGStab per trial. Each point reports the
//! platform's fault ledger (injected / detected / corrected /
//! reprogrammed / degraded) and solver success rates, giving the
//! detection-and-correction coverage curve and the convergence-vs-fault
//! -rate curve in one pass.
//!
//! Reports carry no wall-clock fields, trials derive their RNG streams
//! from `task_seed(seed, trial)`, and aggregation is a serial fold in
//! trial order — so a fixed seed reproduces the report byte-for-byte at
//! any `MEMSCI_THREADS` / `MEMSCI_OVERLAP` setting.

use memsci_core::{AcceleratorConfig, ExactAcceleratorPlatform, ExactOptions};
use memsci_solvers::bicgstab::bicgstab;
use memsci_solvers::cg::cg;
use memsci_solvers::SolveOptions;
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_telemetry::json::Json;
use memsci_telemetry::manifest::ManifestError;
use memsci_telemetry::{Counter, TelemetrySnapshot};
use memsci_xbar::{CellSpec, FaultModel};

use crate::montecarlo;

/// Schema identifier for campaign reports.
pub const FAULT_SCHEMA: &str = "memsci-fault-campaign";
/// Schema version for campaign reports. v2 adds the device-to-device
/// sigma and endurance-growth sweep axes to the grid and per-point
/// `d2d_sigma` / `endurance_growth` fields.
pub const FAULT_SCHEMA_VERSION: u64 = 2;
/// Oldest report schema version the validator still accepts. v1
/// reports (rate × age grid only) predate the variation axes; their
/// points read as `d2d_sigma = endurance_growth = 0`.
pub const FAULT_SCHEMA_MIN_VERSION: u64 = 1;

/// Retention drift coefficient used for every point with a nonzero
/// write age (`drift_factor` is exactly 1 at age 0, so the zero-age
/// column stays on the ideal-retention path bit-for-bit).
pub const DRIFT_COEFFICIENT: f64 = 0.004;

/// Fault-campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignConfig {
    /// Trials per grid point (each trial solves with CG and BiCGStab).
    pub runs: usize,
    /// Linear-system size (the Monte-Carlo banded SPD test system).
    pub n: usize,
    /// Solver stopping tolerance.
    pub tol: f64,
    /// Solver iteration cap.
    pub max_iters: usize,
    /// Base RNG seed; trial streams derive from `task_seed(seed, k)`.
    pub seed: u64,
    /// Reprogram-and-retry budget per cluster before it degrades to
    /// the residual-CSR exact path.
    pub retry_limit: u32,
    /// Stuck-at fault rates to sweep (split evenly on/off per cell).
    pub fault_rates: Vec<f64>,
    /// Operator write ages to sweep (retention drift axis).
    pub drift_ages: Vec<u64>,
    /// Device-to-device sigma spreads to sweep (programming-variation
    /// axis; `0.0` keeps the classic rate × age grid unchanged).
    pub d2d_sigmas: Vec<f64>,
    /// Endurance sigma-growth-per-reprogram values to sweep (wear
    /// axis; `0.0` keeps the classic grid unchanged).
    pub endurance_growths: Vec<f64>,
    /// Host worker threads for the trial loop (`None` = machine
    /// parallelism; `MEMSCI_THREADS` overrides).
    pub threads: Option<usize>,
    /// Overlap knob forwarded to the platform config (`None` = default
    /// / `MEMSCI_OVERLAP`). Campaign results are identical either way.
    pub overlap: Option<bool>,
}

impl Default for FaultCampaignConfig {
    fn default() -> Self {
        FaultCampaignConfig {
            runs: 5,
            n: 128,
            tol: 1e-8,
            max_iters: 600,
            seed: 2026,
            retry_limit: 2,
            fault_rates: vec![0.0, 1e-4, 5e-4, 2e-3],
            drift_ages: vec![0, 1000],
            d2d_sigmas: vec![0.0],
            endurance_growths: vec![0.0],
            threads: None,
            overlap: None,
        }
    }
}

/// Aggregated outcome of one solver across a point's trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverAggregate {
    /// Trials that converged within the cap.
    pub converged: usize,
    /// Total iterations across trials (cap counts for unconverged).
    pub iterations: u64,
}

impl SolverAggregate {
    /// Mean iterations per trial.
    pub fn mean_iterations(&self, runs: usize) -> f64 {
        if runs == 0 {
            return 0.0;
        }
        self.iterations as f64 / runs as f64
    }
}

/// One grid point of the campaign: the platform fault ledger summed
/// over trials (both solvers' platforms) plus solver outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Stable point label (used for stream records).
    pub label: String,
    /// Stuck-at rate for this point (on+off combined).
    pub fault_rate: f64,
    /// Operator write age for this point.
    pub drift_age: u64,
    /// Device-to-device sigma spread for this point.
    pub d2d_sigma: f64,
    /// Endurance sigma growth per reprogram for this point.
    pub endurance_growth: f64,
    /// Trials aggregated into this point.
    pub runs: usize,
    /// Stuck cells drawn at program time (the injected-fault count).
    pub faults_injected: u64,
    /// AN detections (syndrome outside the correction table).
    pub an_detections: u64,
    /// AN single-bit corrections applied in place.
    pub an_corrections: u64,
    /// Detections attributed to an active fault model.
    pub faults_detected: u64,
    /// Corrections attributed to an active fault model.
    pub faults_corrected: u64,
    /// Wear-aware reprogram-and-retry repairs.
    pub cluster_reprograms: u64,
    /// Clusters that exhausted the retry budget and degraded.
    pub retries_exhausted: u64,
    /// Clusters on the residual-CSR exact path after the trials.
    pub degraded_clusters: u64,
    /// CG outcomes.
    pub cg: SolverAggregate,
    /// BiCGStab outcomes.
    pub bicgstab: SolverAggregate,
}

impl FaultPoint {
    /// Share of fault-attributed AN events corrected in place (1.0
    /// when nothing fired: an empty ledger is full coverage).
    pub fn correction_coverage(&self) -> f64 {
        let events = self.faults_corrected + self.faults_detected;
        if events == 0 {
            return 1.0;
        }
        self.faults_corrected as f64 / events as f64
    }
}

/// One trial's raw ledger, folded serially into a [`FaultPoint`].
#[derive(Debug, Clone, Copy, Default)]
struct Trial {
    injected: u64,
    an_detections: u64,
    an_corrections: u64,
    faults_detected: u64,
    faults_corrected: u64,
    reprograms: u64,
    exhausted: u64,
    degraded: u64,
    cg_converged: bool,
    cg_iterations: usize,
    bicg_converged: bool,
    bicg_iterations: usize,
}

/// The campaign cell: ideal programming plus the swept fault model, so
/// every AN event is attributable to the injected faults (and, on the
/// v2 axes, to device-to-device variation and endurance wear).
fn fault_cell(rate: f64, d2d_sigma: f64, endurance_growth: f64) -> CellSpec {
    CellSpec::default().with_fault(
        FaultModel::none()
            .with_stuck_rates(rate / 2.0, rate / 2.0)
            .with_drift_coefficient(DRIFT_COEFFICIENT)
            .with_d2d_sigma(d2d_sigma)
            .with_endurance_sigma_growth(endurance_growth),
    )
}

/// Stable point label: the classic `rate_R_age_A` stem, extended with
/// `_d2d_S` / `_end_G` only when the corresponding axis is nonzero so
/// v1-era labels (and any stream tooling keyed on them) are unchanged.
fn point_label(rate: f64, age: u64, d2d_sigma: f64, endurance_growth: f64) -> String {
    let mut label = format!("rate_{rate:.0e}_age_{age}");
    if d2d_sigma != 0.0 {
        label.push_str(&format!("_d2d_{d2d_sigma:.0e}"));
    }
    if endurance_growth != 0.0 {
        label.push_str(&format!("_end_{endurance_growth:.0e}"));
    }
    label
}

fn solve_one(
    platform: &mut ExactAcceleratorPlatform,
    n: usize,
    opts: &SolveOptions,
    use_bicg: bool,
) -> (bool, usize) {
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let report = if use_bicg {
        bicgstab(platform, &b, &mut x, opts)
    } else {
        cg(platform, &b, &mut x, opts)
    };
    (report.converged, report.iterations)
}

fn run_trial(
    blocked: &BlockedMatrix,
    n: usize,
    cell: CellSpec,
    age: u64,
    seed: u64,
    cfg: &FaultCampaignConfig,
) -> Trial {
    let solve = SolveOptions::with_tol(cfg.tol).max_iters(cfg.max_iters);
    let mut t = Trial::default();
    for (salt, use_bicg) in [(0u64, false), (0x5eed, true)] {
        let mut config = AcceleratorConfig::with_banks(2);
        config.cell = cell;
        config.threads = cfg.threads;
        config.overlap = cfg.overlap;
        let mut platform = ExactAcceleratorPlatform::new(
            blocked,
            config,
            ExactOptions {
                seed: seed ^ salt,
                retry_limit: cfg.retry_limit,
                write_age: age,
                ..Default::default()
            },
        )
        .expect("campaign matrix programs cleanly");
        t.injected += platform.stuck_cells();
        let (converged, iterations) = solve_one(&mut platform, n, &solve, use_bicg);
        if use_bicg {
            t.bicg_converged = converged;
            t.bicg_iterations = iterations;
        } else {
            t.cg_converged = converged;
            t.cg_iterations = iterations;
        }
        t.an_detections += platform.an_detections;
        t.an_corrections += platform.an_corrections;
        t.faults_detected += platform.faults_detected;
        t.faults_corrected += platform.faults_corrected;
        t.reprograms += platform.cluster_reprograms;
        t.exhausted += platform.retries_exhausted;
        t.degraded += platform.degraded_clusters() as u64;
    }
    t
}

/// Runs the campaign, invoking `observe` after each grid point (stream
/// hook). Points appear in sweep order: fault rate major, then age,
/// then d2d sigma, then endurance growth. With the variation axes at
/// their `[0.0]` defaults, the grid (and every trial's RNG stream
/// index) is identical to the v1 rate × age campaign.
pub fn campaign_with(
    cfg: &FaultCampaignConfig,
    observe: &mut dyn FnMut(&FaultPoint),
) -> Vec<FaultPoint> {
    let a = montecarlo::test_matrix(cfg.n);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let threads = memsci_core::exec::worker_count(cfg.threads);
    let mut points = Vec::new();
    let mut point_index = 0u64;
    for &rate in &cfg.fault_rates {
        for &age in &cfg.drift_ages {
            for &d2d in &cfg.d2d_sigmas {
                for &growth in &cfg.endurance_growths {
                    let cell = fault_cell(rate, d2d, growth);
                    let trials = memsci_core::exec::parallel_tasks(threads, cfg.runs, |trial| {
                        let stream = point_index * cfg.runs as u64 + trial as u64;
                        run_trial(
                            &blocked,
                            cfg.n,
                            cell,
                            age,
                            memsci_core::exec::task_seed(cfg.seed, stream),
                            cfg,
                        )
                    });
                    let mut point = FaultPoint {
                        label: point_label(rate, age, d2d, growth),
                        fault_rate: rate,
                        drift_age: age,
                        d2d_sigma: d2d,
                        endurance_growth: growth,
                        runs: cfg.runs,
                        faults_injected: 0,
                        an_detections: 0,
                        an_corrections: 0,
                        faults_detected: 0,
                        faults_corrected: 0,
                        cluster_reprograms: 0,
                        retries_exhausted: 0,
                        degraded_clusters: 0,
                        cg: SolverAggregate::default(),
                        bicgstab: SolverAggregate::default(),
                    };
                    for t in &trials {
                        point.faults_injected += t.injected;
                        point.an_detections += t.an_detections;
                        point.an_corrections += t.an_corrections;
                        point.faults_detected += t.faults_detected;
                        point.faults_corrected += t.faults_corrected;
                        point.cluster_reprograms += t.reprograms;
                        point.retries_exhausted += t.exhausted;
                        point.degraded_clusters += t.degraded;
                        point.cg.converged += usize::from(t.cg_converged);
                        point.cg.iterations += t.cg_iterations as u64;
                        point.bicgstab.converged += usize::from(t.bicg_converged);
                        point.bicgstab.iterations += t.bicg_iterations as u64;
                    }
                    observe(&point);
                    points.push(point);
                    point_index += 1;
                }
            }
        }
    }
    points
}

/// Runs the campaign without an observer.
pub fn campaign(cfg: &FaultCampaignConfig) -> Vec<FaultPoint> {
    campaign_with(cfg, &mut |_| {})
}

/// A telemetry snapshot for campaign stream records: drops the
/// overlap-scheduling counter — the only counter that tracks a host
/// execution knob — so streams stay byte-identical across
/// `MEMSCI_THREADS` × `MEMSCI_OVERLAP` settings.
pub fn stream_snapshot() -> TelemetrySnapshot {
    let mut snap = memsci_telemetry::snapshot();
    snap.counters = snap.counters.without(Counter::OverlapKernels);
    snap
}

fn solver_json(agg: &SolverAggregate, runs: usize) -> Json {
    Json::Obj(vec![
        ("converged".into(), Json::UInt(agg.converged as u64)),
        (
            "mean_iterations".into(),
            Json::Num(agg.mean_iterations(runs)),
        ),
    ])
}

/// Builds the schema-versioned campaign report. Contains no wall-clock
/// or host fields: a fixed config reproduces it byte-for-byte.
pub fn report(cfg: &FaultCampaignConfig, points: &[FaultPoint]) -> Json {
    let config = Json::Obj(vec![
        ("runs".into(), Json::UInt(cfg.runs as u64)),
        ("n".into(), Json::UInt(cfg.n as u64)),
        ("tol".into(), Json::Num(cfg.tol)),
        ("max_iters".into(), Json::UInt(cfg.max_iters as u64)),
        ("seed".into(), Json::UInt(cfg.seed)),
        ("retry_limit".into(), Json::UInt(u64::from(cfg.retry_limit))),
        ("drift_coefficient".into(), Json::Num(DRIFT_COEFFICIENT)),
        (
            "fault_rates".into(),
            Json::Arr(cfg.fault_rates.iter().map(|&r| Json::Num(r)).collect()),
        ),
        (
            "drift_ages".into(),
            Json::Arr(cfg.drift_ages.iter().map(|&a| Json::UInt(a)).collect()),
        ),
        (
            "d2d_sigmas".into(),
            Json::Arr(cfg.d2d_sigmas.iter().map(|&s| Json::Num(s)).collect()),
        ),
        (
            "endurance_growths".into(),
            Json::Arr(
                cfg.endurance_growths
                    .iter()
                    .map(|&g| Json::Num(g))
                    .collect(),
            ),
        ),
    ]);
    let points: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("label".into(), Json::Str(p.label.clone())),
                ("fault_rate".into(), Json::Num(p.fault_rate)),
                ("drift_age".into(), Json::UInt(p.drift_age)),
                ("d2d_sigma".into(), Json::Num(p.d2d_sigma)),
                ("endurance_growth".into(), Json::Num(p.endurance_growth)),
                ("runs".into(), Json::UInt(p.runs as u64)),
                ("faults_injected".into(), Json::UInt(p.faults_injected)),
                ("an_detections".into(), Json::UInt(p.an_detections)),
                ("an_corrections".into(), Json::UInt(p.an_corrections)),
                ("faults_detected".into(), Json::UInt(p.faults_detected)),
                ("faults_corrected".into(), Json::UInt(p.faults_corrected)),
                (
                    "cluster_reprograms".into(),
                    Json::UInt(p.cluster_reprograms),
                ),
                ("retries_exhausted".into(), Json::UInt(p.retries_exhausted)),
                ("degraded_clusters".into(), Json::UInt(p.degraded_clusters)),
                (
                    "correction_coverage".into(),
                    Json::Num(p.correction_coverage()),
                ),
                ("cg".into(), solver_json(&p.cg, p.runs)),
                ("bicgstab".into(), solver_json(&p.bicgstab, p.runs)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(FAULT_SCHEMA.into())),
        ("schema_version".into(), Json::UInt(FAULT_SCHEMA_VERSION)),
        ("config".into(), config),
        ("points".into(), Json::Arr(points)),
    ])
}

fn point_u64(p: &Json, key: &str) -> Result<u64, ManifestError> {
    p.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ManifestError(format!("point missing counter '{key}'")))
}

/// Validates a campaign report: schema header, per-point counter
/// consistency, and solver-outcome bounds. This is the `check.sh`
/// gate contract for committed campaign artifacts.
pub fn validate_report(doc: &Json) -> Result<(), ManifestError> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == FAULT_SCHEMA => {}
        other => {
            return Err(ManifestError(format!(
                "schema must be '{FAULT_SCHEMA}', got {other:?}"
            )))
        }
    }
    let version = match doc.get("schema_version").and_then(Json::as_u64) {
        Some(v) if (FAULT_SCHEMA_MIN_VERSION..=FAULT_SCHEMA_VERSION).contains(&v) => v,
        other => {
            return Err(ManifestError(format!(
                "schema_version must be in {FAULT_SCHEMA_MIN_VERSION}..={FAULT_SCHEMA_VERSION}, \
                 got {other:?}"
            )))
        }
    };
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| ManifestError("report has no points array".into()))?;
    if points.is_empty() {
        return Err(ManifestError("report has an empty points array".into()));
    }
    for p in points {
        let label = p
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| ManifestError("point missing label".into()))?;
        let check = |cond: bool, msg: &str| -> Result<(), ManifestError> {
            if cond {
                Ok(())
            } else {
                Err(ManifestError(format!("point '{label}': {msg}")))
            }
        };
        let runs = point_u64(p, "runs")?;
        let rate = p
            .get("fault_rate")
            .and_then(Json::as_f64)
            .ok_or_else(|| ManifestError(format!("point '{label}': missing fault_rate")))?;
        let age = point_u64(p, "drift_age")?;
        let injected = point_u64(p, "faults_injected")?;
        let an_det = point_u64(p, "an_detections")?;
        let an_cor = point_u64(p, "an_corrections")?;
        let f_det = point_u64(p, "faults_detected")?;
        let f_cor = point_u64(p, "faults_corrected")?;
        let reprograms = point_u64(p, "cluster_reprograms")?;
        let exhausted = point_u64(p, "retries_exhausted")?;
        let degraded = point_u64(p, "degraded_clusters")?;
        check(
            f_det <= an_det,
            "fault-attributed detections exceed AN detections",
        )?;
        check(
            f_cor <= an_cor,
            "fault-attributed corrections exceed AN corrections",
        )?;
        check(
            reprograms == 0 || an_det + f_det > 0,
            "reprograms without any detection",
        )?;
        check(
            exhausted <= reprograms || exhausted == 0,
            "more exhaustions than repair attempts",
        )?;
        check(
            degraded == exhausted,
            "degraded clusters must equal exhausted retries",
        )?;
        // v2 points carry the variation axes; v1 points predate them
        // and read as zero. Nonzero d2d / endurance values mean
        // programming noise can legitimately fire the AN path even at
        // a zero stuck-at rate, so the ideal-point invariant only
        // applies when every axis is at its ideal setting.
        let axis = |key: &str| -> Result<f64, ManifestError> {
            match p.get(key) {
                None if version < 2 => Ok(0.0),
                Some(v) => v
                    .as_f64()
                    .filter(|x| x.is_finite() && *x >= 0.0)
                    .ok_or_else(|| {
                        ManifestError(format!(
                            "point '{label}': {key} must be finite and non-negative"
                        ))
                    }),
                None => Err(ManifestError(format!("point '{label}': missing {key}"))),
            }
        };
        let d2d = axis("d2d_sigma")?;
        let growth = axis("endurance_growth")?;
        if rate == 0.0 {
            check(injected == 0, "stuck cells at a zero fault rate")?;
            if age == 0 && d2d == 0.0 && growth == 0.0 {
                check(
                    reprograms == 0,
                    "repairs on the ideal (zero-fault, zero-age) point",
                )?;
            }
        }
        for solver in ["cg", "bicgstab"] {
            let conv = p
                .get(solver)
                .and_then(|s| s.get("converged"))
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    ManifestError(format!("point '{label}': missing {solver} outcome"))
                })?;
            check(conv <= runs, "more converged trials than runs")?;
        }
    }
    Ok(())
}

/// Renders a fixed-width summary table of campaign points.
pub fn summarize(points: &[FaultPoint]) -> String {
    let mut out = String::new();
    out.push_str(
        "rate      age    stuck  an_det  an_cor  reprog  exhaust  coverage  cg    bicgstab\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<9} {:<6} {:<6} {:<7} {:<7} {:<7} {:<8} {:<9.3} {:>2}/{:<2} {:>2}/{:<2}\n",
            format!("{:.0e}", p.fault_rate),
            p.drift_age,
            p.faults_injected,
            p.an_detections,
            p.an_corrections,
            p.cluster_reprograms,
            p.retries_exhausted,
            p.correction_coverage(),
            p.cg.converged,
            p.runs,
            p.bicgstab.converged,
            p.runs,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FaultCampaignConfig {
        FaultCampaignConfig {
            runs: 2,
            n: 64,
            max_iters: 400,
            fault_rates: vec![0.0, 2e-3],
            drift_ages: vec![0],
            ..Default::default()
        }
    }

    #[test]
    fn campaign_report_is_valid_and_faults_fire() {
        let cfg = tiny();
        let points = campaign(&cfg);
        assert_eq!(points.len(), 2);
        let ideal = &points[0];
        assert_eq!(ideal.faults_injected, 0);
        assert_eq!(ideal.cluster_reprograms, 0);
        assert_eq!(ideal.cg.converged, cfg.runs);
        let faulty = &points[1];
        assert!(faulty.faults_injected > 0, "stuck cells drawn");
        assert!(faulty.an_detections > 0, "AN code saw the faults");
        let doc = report(&cfg, &points);
        validate_report(&doc).expect("fresh report validates");
        let text = doc.to_string_pretty();
        let parsed = memsci_telemetry::json::parse(&text).expect("round-trip");
        validate_report(&parsed).expect("parsed report validates");
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let mut cfg = tiny();
        cfg.threads = Some(1);
        let serial = campaign(&cfg);
        cfg.threads = Some(4);
        let parallel = campaign(&cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn drift_age_triggers_repair_and_still_converges() {
        let mut cfg = tiny();
        cfg.fault_rates = vec![0.0];
        cfg.drift_ages = vec![4000];
        let points = campaign(&cfg);
        let p = &points[0];
        assert!(
            p.cluster_reprograms > 0,
            "retention drift should force repairs"
        );
        assert_eq!(p.cg.converged, cfg.runs, "repair restores convergence");
        validate_report(&report(&cfg, &points)).expect("report validates");
    }

    #[test]
    fn variation_axes_sweep_with_backward_compatible_labels() {
        let mut cfg = tiny();
        cfg.fault_rates = vec![0.0];
        cfg.d2d_sigmas = vec![0.0, 0.05];
        cfg.endurance_growths = vec![0.0, 0.01];
        let points = campaign(&cfg);
        assert_eq!(points.len(), 4, "rate x age x d2d x endurance grid");
        // Zero axes keep the v1-era label stem untouched; nonzero axes
        // extend it.
        assert_eq!(points[0].label, "rate_0e0_age_0");
        assert_eq!(points[1].label, "rate_0e0_age_0_end_1e-2");
        assert_eq!(points[2].label, "rate_0e0_age_0_d2d_5e-2");
        assert_eq!(points[3].label, "rate_0e0_age_0_d2d_5e-2_end_1e-2");
        // Device-to-device spread is real programming noise: the AN
        // code sees it even with no stuck cells.
        assert!(
            points[2].an_detections > 0,
            "d2d spread should trip the AN code"
        );
        assert_eq!(points[2].faults_injected, 0, "no stuck cells at rate 0");
        validate_report(&report(&cfg, &points)).expect("v2 report validates");
    }

    /// Drops `keys` from every object in the tree and rewrites
    /// `schema_version` (test scaffolding for downgraded documents).
    fn rewrite(doc: &Json, version: u64, drop: &[&str]) -> Json {
        match doc {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| !drop.contains(&k.as_str()))
                    .map(|(k, v)| {
                        let v = if k == "schema_version" {
                            Json::UInt(version)
                        } else {
                            rewrite(v, version, drop)
                        };
                        (k.clone(), v)
                    })
                    .collect(),
            ),
            Json::Arr(items) => {
                Json::Arr(items.iter().map(|v| rewrite(v, version, drop)).collect())
            }
            other => other.clone(),
        }
    }

    #[test]
    fn v1_reports_without_variation_axes_still_validate() {
        let cfg = tiny();
        let points = campaign(&cfg);
        let doc = report(&cfg, &points);
        // A v1-shaped document — version 1, no variation fields — is
        // exactly what committed FAULTS_PR7.json is; it must validate.
        let v1 = rewrite(
            &doc,
            1,
            &[
                "d2d_sigma",
                "endurance_growth",
                "d2d_sigmas",
                "endurance_growths",
            ],
        );
        validate_report(&v1).expect("v1 report validates");
        // But a v2 document missing the axes is rejected.
        let broken = rewrite(&doc, 2, &["d2d_sigma"]);
        let err = validate_report(&broken).expect_err("v2 without axes must fail");
        assert!(err.to_string().contains("d2d_sigma"), "{err}");
        // And unknown future versions are rejected.
        validate_report(&rewrite(&doc, 3, &[])).expect_err("future version must fail");
    }

    #[test]
    fn validator_rejects_inconsistent_points() {
        let cfg = tiny();
        let mut points = campaign(&cfg);
        points[0].faults_detected = points[0].an_detections + 1;
        let doc = report(&cfg, &points);
        let err = validate_report(&doc).expect_err("must reject");
        assert!(err.to_string().contains("AN detections"), "{err}");
    }
}
