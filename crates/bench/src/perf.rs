//! Host-performance benchmark harness (`repro bench`).
//!
//! Unlike the modelled accelerator costs reported by the tables and
//! figures, this module measures *host wall-clock* — the simulator's
//! own speed — so the zero-allocation SpMV work (scratch arenas,
//! precomputed MVM plans) has a recorded, comparable number. It times
//! repeated SpMV on both engines in warm (scratch reused) and cold
//! (`clear_scratch()` before every kernel) modes, plus end-to-end
//! CG/BiCGStab solves across host thread counts and lane overlap, and
//! emits a schema-versioned JSON document (`BENCH_PR5.json`) with the
//! speedup against the embedded pre-optimization baseline.

use std::time::Instant;

use memsci_core::service::{solve_concurrent, EngineSpec, OperatorCache};
use memsci_core::{AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions};
use memsci_solvers::platform::Platform;
use memsci_solvers::{bicgstab::bicgstab, cg::cg, SolveOptions};
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::{by_name, suite};
use memsci_sparse::Csr;
use memsci_telemetry::json::{parse, Json};
use memsci_telemetry::{Counter, ManifestError};

/// Bench document schema identifier.
pub const BENCH_SCHEMA_NAME: &str = "memsci-bench";
/// Current bench document schema version. Version 2 adds the
/// `spmv_batch` section (multi-RHS amortization); version 3 adds the
/// `concurrent` section (k cached-operator solves vs k re-programming
/// solves); version 4 adds the `matrix_sweep` section (per-suite-matrix
/// warm SpMV medians on both engines). Documents at versions 1–3 (the
/// committed `BENCH_PR5.json` / `BENCH_PR6.json` / `BENCH_PR9.json`)
/// still validate.
pub const BENCH_SCHEMA_VERSION: u64 = 4;
/// Oldest schema version [`validate_bench`] still accepts.
pub const BENCH_SCHEMA_MIN_VERSION: u64 = 1;

/// Workspace commit the baselines below were measured at (before the
/// scratch-arena / MVM-plan optimization).
pub const BASELINE_COMMIT: &str = "3a7d543";
/// Median host seconds per warm exact-engine SpMV at
/// [`BASELINE_COMMIT`]: Pres_Poisson scale 0.05, 4 banks, 1 thread,
/// seed 7, 64 iterations.
pub const BASELINE_EXACT_SPMV_S: f64 = 0.1111;
/// Median host seconds per warm fast-engine SpMV at
/// [`BASELINE_COMMIT`] (same matrix and shape, 512 iterations).
pub const BASELINE_FAST_SPMV_S: f64 = 9.03e-5;

/// The suite matrix every bench configuration runs on.
pub const BENCH_MATRIX: &str = "Pres_Poisson";
/// Scale factor applied to [`BENCH_MATRIX`] (the suite smoke size).
pub const BENCH_SCALE: f64 = 0.05;
const BENCH_BANKS: usize = 4;
const BENCH_SEED: u64 = 7;

/// Shape of one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchOptions {
    /// Timed repeated-SpMV iterations per engine/mode (after warm-up).
    pub iters: usize,
    /// Iteration cap for the end-to-end solver runs (the exact engine
    /// would otherwise dominate the bench; a capped solve still times
    /// the full platform stack per iteration).
    pub solver_max_iters: usize,
    /// Host worker-thread counts swept by the solver benches.
    pub thread_counts: Vec<usize>,
    /// Lane-overlap settings swept by the solver benches.
    pub overlaps: Vec<bool>,
    /// RHS batch widths swept by the multi-RHS SpMV bench.
    pub rhs_counts: Vec<usize>,
    /// Timed warm iterations per engine per matrix in the suite sweep
    /// (the fast engine again runs 8× as many).
    pub sweep_iters: usize,
    /// Target row count the sweep scales every suite matrix to (the
    /// generator clamps to at least 192 rows).
    pub sweep_target_n: usize,
    /// Restrict the suite sweep to these matrix names (`None` sweeps
    /// the whole 20-matrix suite).
    pub sweep_matrices: Option<Vec<String>>,
    /// True when this is the reduced CI smoke shape.
    pub smoke: bool,
}

impl BenchOptions {
    /// The full shape behind the committed `BENCH_PR5.json`: 64 timed
    /// iterations, threads {1, 4} × overlap {off, on}.
    pub fn full() -> BenchOptions {
        BenchOptions {
            iters: 64,
            solver_max_iters: 25,
            thread_counts: vec![1, 4],
            overlaps: vec![false, true],
            rhs_counts: vec![1, 8],
            sweep_iters: 8,
            sweep_target_n: 768,
            sweep_matrices: None,
            smoke: false,
        }
    }

    /// The CI smoke shape: 16 iterations, single-threaded, no overlap.
    pub fn smoke() -> BenchOptions {
        BenchOptions {
            iters: 16,
            solver_max_iters: 8,
            thread_counts: vec![1],
            overlaps: vec![false],
            rhs_counts: vec![1, 8],
            sweep_iters: 2,
            sweep_target_n: 256,
            sweep_matrices: None,
            smoke: true,
        }
    }
}

fn bench_matrix() -> Csr {
    by_name(BENCH_MATRIX)
        .expect("suite entry")
        .generate_scaled(BENCH_SCALE)
}

fn bench_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.17).sin() + 1.1).collect()
}

fn config(threads: usize, overlap: bool) -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(BENCH_BANKS);
    config.threads = Some(threads);
    config.overlap = Some(overlap);
    config
}

fn exact_opts() -> ExactOptions {
    ExactOptions {
        seed: BENCH_SEED,
        ..Default::default()
    }
}

/// Median of per-iteration durations (seconds).
fn median_s(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times `iters` SpMVs on a warm platform, optionally dropping the
/// scratch arenas before every kernel (`cold`), returning
/// `(median s/iter, total s)`.
fn time_spmv<P: Platform>(acc: &mut P, clear: Option<&dyn Fn(&mut P)>, iters: usize) -> (f64, f64) {
    let n = acc.n();
    let x = bench_vector(n);
    let mut y = vec![0.0; n];
    for _ in 0..2 {
        acc.spmv(&x, &mut y);
    }
    let mut samples = Vec::with_capacity(iters);
    let start = Instant::now();
    for _ in 0..iters {
        if let Some(clear) = clear {
            clear(acc);
        }
        let t0 = Instant::now();
        acc.spmv(&x, &mut y);
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median_s(samples), start.elapsed().as_secs_f64())
}

fn spmv_entry(
    engine: &str,
    mode: &str,
    iters: usize,
    median_s_per_iter: f64,
    total_s: f64,
) -> Json {
    Json::Obj(vec![
        ("engine".to_string(), Json::Str(engine.into())),
        ("mode".to_string(), Json::Str(mode.into())),
        ("threads".to_string(), Json::UInt(1)),
        ("overlap".to_string(), Json::Bool(false)),
        ("iters".to_string(), Json::UInt(iters as u64)),
        (
            "median_s_per_iter".to_string(),
            Json::Num(median_s_per_iter),
        ),
        ("total_s".to_string(), Json::Num(total_s)),
    ])
}

/// Runs the repeated-SpMV microbench: both engines, warm and cold, on
/// one thread with overlap off (the configuration the baselines were
/// recorded at). Returns the JSON entries plus the warm medians
/// `(exact, fast)`.
fn run_spmv_bench(opts: &BenchOptions) -> (Vec<Json>, f64, f64) {
    let a = bench_matrix();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut entries = Vec::new();

    let mut exact = ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
        .expect("bench matrix programs cleanly");
    let (warm_exact, total) = time_spmv(&mut exact, None, opts.iters);
    entries.push(spmv_entry("exact", "warm", opts.iters, warm_exact, total));
    let clear_exact = |p: &mut ExactAcceleratorPlatform| p.clear_scratch();
    let (cold_exact, total) = time_spmv(&mut exact, Some(&clear_exact), opts.iters);
    entries.push(spmv_entry("exact", "cold", opts.iters, cold_exact, total));

    // The fast engine is ~3 orders of magnitude quicker per kernel;
    // scale the iteration count up so the timings stay measurable.
    let fast_iters = opts.iters * 8;
    let mut fast = AcceleratorPlatform::new(&blocked, config(1, false));
    let (warm_fast, total) = time_spmv(&mut fast, None, fast_iters);
    entries.push(spmv_entry("fast", "warm", fast_iters, warm_fast, total));
    let clear_fast = |p: &mut AcceleratorPlatform| p.clear_scratch();
    let (cold_fast, total) = time_spmv(&mut fast, Some(&clear_fast), fast_iters);
    entries.push(spmv_entry("fast", "cold", fast_iters, cold_fast, total));

    (entries, warm_exact, warm_fast)
}

fn batch_vectors(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (i as f64 * 0.17 + j as f64 * 0.43).sin() + 1.1)
                .collect()
        })
        .collect()
}

/// Times `batches` calls to `spmv_batch` with `k` right-hand sides,
/// returning `(median s/batch, total s)`.
fn time_spmv_batch<P: Platform>(acc: &mut P, k: usize, batches: usize) -> (f64, f64) {
    let n = acc.n();
    let xs = batch_vectors(n, k);
    let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
    let mut ys = vec![Vec::new(); k];
    acc.spmv_batch(&x_refs, &mut ys); // warm-up
    let mut samples = Vec::with_capacity(batches);
    let start = Instant::now();
    for _ in 0..batches {
        let t0 = Instant::now();
        acc.spmv_batch(&x_refs, &mut ys);
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median_s(samples), start.elapsed().as_secs_f64())
}

/// Checks that one `spmv_batch` on a fresh `batched` platform is
/// bitwise identical to `k` sequential `spmv` calls on a fresh `solo`
/// twin (same build, same vectors).
fn batch_matches_sequential<P: Platform>(solo: &mut P, batched: &mut P, k: usize) -> bool {
    let n = solo.n();
    let xs = batch_vectors(n, k);
    let mut want = vec![0.0; n];
    let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
    let mut ys = vec![Vec::new(); k];
    batched.spmv_batch(&x_refs, &mut ys);
    for (x, got) in xs.iter().zip(&ys) {
        solo.spmv(x, &mut want);
        if want
            .iter()
            .zip(got)
            .any(|(u, v)| u.to_bits() != v.to_bits())
        {
            return false;
        }
    }
    true
}

/// Runs the multi-RHS SpMV bench: both engines × each batch width in
/// `opts.rhs_counts`, recording the median host time per batch, the
/// amortized per-RHS time, and whether the batch reproduced k
/// sequential kernels bit for bit.
fn run_batch_bench(opts: &BenchOptions) -> Vec<Json> {
    let a = bench_matrix();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut entries = Vec::new();
    for engine in ["exact", "fast"] {
        for &k in &opts.rhs_counts {
            // Hold the total kernel count roughly constant across
            // widths so wide batches don't dominate the bench.
            let base_iters = if engine == "fast" {
                opts.iters * 8
            } else {
                opts.iters
            };
            let batches = (base_iters / k).max(2);
            let (median, total, matches) = if engine == "exact" {
                let mut acc =
                    ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
                        .expect("bench matrix programs cleanly");
                let (median, total) = time_spmv_batch(&mut acc, k, batches);
                let mut solo =
                    ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
                        .expect("bench matrix programs cleanly");
                let mut batched =
                    ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
                        .expect("bench matrix programs cleanly");
                let matches = batch_matches_sequential(&mut solo, &mut batched, k);
                (median, total, matches)
            } else {
                let mut acc = AcceleratorPlatform::new(&blocked, config(1, false));
                let (median, total) = time_spmv_batch(&mut acc, k, batches);
                let mut solo = AcceleratorPlatform::new(&blocked, config(1, false));
                let mut batched = AcceleratorPlatform::new(&blocked, config(1, false));
                let matches = batch_matches_sequential(&mut solo, &mut batched, k);
                (median, total, matches)
            };
            entries.push(Json::Obj(vec![
                ("engine".to_string(), Json::Str(engine.into())),
                ("rhs".to_string(), Json::UInt(k as u64)),
                ("batches".to_string(), Json::UInt(batches as u64)),
                ("median_s_per_batch".to_string(), Json::Num(median)),
                (
                    "amortized_s_per_rhs".to_string(),
                    Json::Num(median / k as f64),
                ),
                ("total_s".to_string(), Json::Num(total)),
                ("matches_sequential".to_string(), Json::Bool(matches)),
            ]));
        }
    }
    entries
}

/// Runs the suite matrix sweep: every matrix of the evaluation suite
/// (optionally restricted by `opts.sweep_matrices`), scaled to roughly
/// `opts.sweep_target_n` rows, timed on both engines' warm SpMV. This
/// is the breadth check behind `repro bench --matrix`: the single-matrix
/// `spmv` section shows the depth of the hot path, this section shows
/// the speedup holds across sparsity structures and exponent spreads.
fn run_matrix_bench(opts: &BenchOptions) -> Vec<Json> {
    let mut entries = Vec::new();
    for entry in suite() {
        if let Some(only) = &opts.sweep_matrices {
            if !only.iter().any(|n| n == entry.name) {
                continue;
            }
        }
        let scale = (opts.sweep_target_n as f64 / entry.rows as f64).min(1.0);
        let a = entry.generate_scaled(scale);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let mut exact = ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
            .expect("suite matrix programs cleanly");
        let (exact_median, exact_total) = time_spmv(&mut exact, None, opts.sweep_iters);
        let mut fast = AcceleratorPlatform::new(&blocked, config(1, false));
        let (fast_median, fast_total) = time_spmv(&mut fast, None, opts.sweep_iters * 8);
        entries.push(Json::Obj(vec![
            ("matrix".to_string(), Json::Str(entry.name.into())),
            ("rows".to_string(), Json::UInt(a.rows() as u64)),
            ("nnz".to_string(), Json::UInt(a.nnz() as u64)),
            ("iters".to_string(), Json::UInt(opts.sweep_iters as u64)),
            (
                "exact_median_s_per_iter".to_string(),
                Json::Num(exact_median),
            ),
            ("fast_median_s_per_iter".to_string(), Json::Num(fast_median)),
            ("total_s".to_string(), Json::Num(exact_total + fast_total)),
        ]));
    }
    entries
}

fn engine_spec(engine: &str) -> EngineSpec {
    match engine {
        "fast" => EngineSpec::Fast,
        _ => EngineSpec::Exact(exact_opts()),
    }
}

/// Solves every RHS sequentially, **re-programming** the operator for
/// each one (a fresh platform per solve — the pre-service cost of k
/// independent solves of the same system), returning the solutions and
/// the total wall-clock.
fn sequential_reprogram_solves(
    engine: &str,
    rhs: &[Vec<f64>],
    solve_opts: &SolveOptions,
) -> (Vec<Vec<f64>>, f64) {
    let a = bench_matrix();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let n = a.rows();
    let t0 = Instant::now();
    let xs = rhs
        .iter()
        .map(|b| {
            let mut x = vec![0.0; n];
            match engine {
                "fast" => {
                    let mut acc = AcceleratorPlatform::new(&blocked, config(1, false));
                    cg(&mut acc, b, &mut x, solve_opts);
                }
                _ => {
                    let mut acc =
                        ExactAcceleratorPlatform::new(&blocked, config(1, false), exact_opts())
                            .expect("bench matrix programs cleanly");
                    cg(&mut acc, b, &mut x, solve_opts);
                }
            }
            x
        })
        .collect();
    (xs, t0.elapsed().as_secs_f64())
}

/// Outcome of one k-way cached-operator concurrency measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentRun {
    /// Engine the solves ran on (`fast` / `exact`).
    pub engine: String,
    /// Number of independent solves.
    pub k: usize,
    /// Wall-clock of k sequential solves, each re-programming.
    pub sequential_s: f64,
    /// Wall-clock of the k solves through one cached operator.
    pub concurrent_s: f64,
    /// Operators programmed by the concurrent path (cache misses).
    pub operator_programs: u64,
    /// Cache hits of the concurrent path (must be `k - 1`).
    pub cache_hits: u64,
    /// Every concurrent solution bitwise equal to its sequential twin.
    pub matches_sequential: bool,
}

/// Runs k independent solves of the bench system through one cached
/// operator ([`solve_concurrent`]) and through k re-programming
/// sequential sessions, and compares the two bit for bit. When
/// `reset_counters` is set the telemetry counters are zeroed *between*
/// the sequential reference and the concurrent pass, so a manifest
/// written afterwards accounts only the cached-operator run.
fn concurrent_run_inner(
    engine: &str,
    k: usize,
    solver_max_iters: usize,
    reset_counters: bool,
) -> ConcurrentRun {
    let a = bench_matrix();
    let cfg = config(4, false);
    let solve_opts = SolveOptions::with_tol(1e-8).max_iters(solver_max_iters);
    let rhs = batch_vectors(a.rows(), k);
    let (want, sequential_s) = sequential_reprogram_solves(engine, &rhs, &solve_opts);
    if reset_counters {
        memsci_telemetry::reset();
    }
    let cache = OperatorCache::with_capacity(2);
    let t0 = Instant::now();
    let outcome = solve_concurrent(&cache, &a, &cfg, &engine_spec(engine), &rhs, &solve_opts)
        .expect("bench matrix programs cleanly");
    let concurrent_s = t0.elapsed().as_secs_f64();
    let matches = want.len() == outcome.solves.len()
        && want.iter().zip(&outcome.solves).all(|(w, s)| {
            w.len() == s.x.len() && w.iter().zip(&s.x).all(|(u, v)| u.to_bits() == v.to_bits())
        });
    let stats = cache.stats();
    ConcurrentRun {
        engine: engine.into(),
        k,
        sequential_s,
        concurrent_s,
        operator_programs: stats.misses,
        cache_hits: stats.hits,
        matches_sequential: matches,
    }
}

/// [`concurrent_run_inner`] without counter manipulation — the bench
/// section shape.
pub fn concurrent_run(engine: &str, k: usize, solver_max_iters: usize) -> ConcurrentRun {
    concurrent_run_inner(engine, k, solver_max_iters, false)
}

/// Runs the cached-operator concurrency bench: both engines × each k in
/// `opts.rhs_counts`, timing k re-programming sequential solves against
/// k concurrent solves of one cached operator.
fn run_concurrent_bench(opts: &BenchOptions) -> Vec<Json> {
    let mut entries = Vec::new();
    for engine in ["fast", "exact"] {
        for &k in &opts.rhs_counts {
            let run = concurrent_run(engine, k, opts.solver_max_iters);
            entries.push(Json::Obj(vec![
                ("engine".to_string(), Json::Str(run.engine.clone())),
                ("k".to_string(), Json::UInt(run.k as u64)),
                ("sequential_s".to_string(), Json::Num(run.sequential_s)),
                ("concurrent_s".to_string(), Json::Num(run.concurrent_s)),
                (
                    "amortized_s_per_solve".to_string(),
                    Json::Num(run.concurrent_s / run.k as f64),
                ),
                (
                    "reprogram_speedup".to_string(),
                    Json::Num(run.sequential_s / run.concurrent_s),
                ),
                (
                    "operator_programs".to_string(),
                    Json::UInt(run.operator_programs),
                ),
                ("cache_hits".to_string(), Json::UInt(run.cache_hits)),
                (
                    "matches_sequential".to_string(),
                    Json::Bool(run.matches_sequential),
                ),
            ]));
        }
    }
    entries
}

/// The `repro concurrent` acceptance shape: runs the k sequential
/// reference solves first, then **resets the telemetry counters** so a
/// manifest written after this call reports only the concurrent pass —
/// exactly one `operator_programs` and `k − 1` `cache_hits` when the
/// service layer holds its contract.
pub fn concurrent_acceptance(engine: &str, k: usize, solver_max_iters: usize) -> ConcurrentRun {
    concurrent_run_inner(engine, k, solver_max_iters, true)
}

/// Runs the end-to-end solver benches across engines × solvers ×
/// threads × overlap.
fn run_solver_bench(opts: &BenchOptions) -> Vec<Json> {
    let a = bench_matrix();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let n = a.rows();
    let b = vec![1.0; n];
    let solve_opts = SolveOptions::with_tol(1e-8).max_iters(opts.solver_max_iters);
    let mut entries = Vec::new();
    for &threads in &opts.thread_counts {
        for &overlap in &opts.overlaps {
            for engine in ["fast", "exact"] {
                for solver in ["cg", "bicgstab"] {
                    let mut x = vec![0.0; n];
                    let t0 = Instant::now();
                    let report = match engine {
                        "fast" => {
                            let mut acc =
                                AcceleratorPlatform::new(&blocked, config(threads, overlap));
                            match solver {
                                "cg" => cg(&mut acc, &b, &mut x, &solve_opts),
                                _ => bicgstab(&mut acc, &b, &mut x, &solve_opts),
                            }
                        }
                        _ => {
                            let mut acc = ExactAcceleratorPlatform::new(
                                &blocked,
                                config(threads, overlap),
                                exact_opts(),
                            )
                            .expect("bench matrix programs cleanly");
                            match solver {
                                "cg" => cg(&mut acc, &b, &mut x, &solve_opts),
                                _ => bicgstab(&mut acc, &b, &mut x, &solve_opts),
                            }
                        }
                    };
                    let wall = t0.elapsed().as_secs_f64();
                    entries.push(Json::Obj(vec![
                        ("solver".to_string(), Json::Str(solver.into())),
                        ("engine".to_string(), Json::Str(engine.into())),
                        ("threads".to_string(), Json::UInt(threads as u64)),
                        ("overlap".to_string(), Json::Bool(overlap)),
                        (
                            "iterations".to_string(),
                            Json::UInt(report.iterations as u64),
                        ),
                        ("converged".to_string(), Json::Bool(report.converged)),
                        ("wall_s".to_string(), Json::Num(wall)),
                    ]));
                }
            }
        }
    }
    entries
}

/// Runs the whole bench and builds the schema-versioned document.
///
/// The telemetry sink is enabled for the duration so the document can
/// report the `scratch_reuse` / `plan_hits` counters the hot path fires
/// (proof the arenas and plans are actually exercised); the previous
/// sink state is restored afterwards.
pub fn run_bench(opts: &BenchOptions) -> Json {
    let was_enabled = memsci_telemetry::enabled();
    memsci_telemetry::enable();
    let counters_before = memsci_telemetry::snapshot().counters;
    let (spmv, warm_exact, warm_fast) = run_spmv_bench(opts);
    let spmv_batch = run_batch_bench(opts);
    let concurrent = run_concurrent_bench(opts);
    let matrix_sweep = run_matrix_bench(opts);
    let solves = run_solver_bench(opts);
    let delta = memsci_telemetry::snapshot()
        .counters
        .delta_since(&counters_before);
    if !was_enabled {
        memsci_telemetry::disable();
    }
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(BENCH_SCHEMA_NAME.into())),
        (
            "schema_version".to_string(),
            Json::UInt(BENCH_SCHEMA_VERSION),
        ),
        (
            "baseline".to_string(),
            Json::Obj(vec![
                ("commit".to_string(), Json::Str(BASELINE_COMMIT.into())),
                ("exact_spmv_s".to_string(), Json::Num(BASELINE_EXACT_SPMV_S)),
                ("fast_spmv_s".to_string(), Json::Num(BASELINE_FAST_SPMV_S)),
            ]),
        ),
        (
            "config".to_string(),
            Json::Obj(vec![
                ("matrix".to_string(), Json::Str(BENCH_MATRIX.into())),
                ("scale".to_string(), Json::Num(BENCH_SCALE)),
                ("banks".to_string(), Json::UInt(BENCH_BANKS as u64)),
                ("seed".to_string(), Json::UInt(BENCH_SEED)),
                ("iters".to_string(), Json::UInt(opts.iters as u64)),
                (
                    "solver_max_iters".to_string(),
                    Json::UInt(opts.solver_max_iters as u64),
                ),
                ("smoke".to_string(), Json::Bool(opts.smoke)),
            ]),
        ),
        ("spmv".to_string(), Json::Arr(spmv)),
        ("spmv_batch".to_string(), Json::Arr(spmv_batch)),
        ("concurrent".to_string(), Json::Arr(concurrent)),
        ("matrix_sweep".to_string(), Json::Arr(matrix_sweep)),
        ("solves".to_string(), Json::Arr(solves)),
        (
            "counters".to_string(),
            Json::Obj(vec![
                (
                    "scratch_reuse".to_string(),
                    Json::UInt(delta.get(Counter::ScratchReuse)),
                ),
                (
                    "plan_hits".to_string(),
                    Json::UInt(delta.get(Counter::PlanHits)),
                ),
            ]),
        ),
        (
            "speedup".to_string(),
            Json::Obj(vec![
                (
                    "exact_vs_baseline".to_string(),
                    Json::Num(BASELINE_EXACT_SPMV_S / warm_exact),
                ),
                (
                    "fast_vs_baseline".to_string(),
                    Json::Num(BASELINE_FAST_SPMV_S / warm_fast),
                ),
            ]),
        ),
    ])
}

/// Renders a one-screen summary of a bench document for the terminal.
pub fn summarize(doc: &Json) -> String {
    let mut out = String::new();
    out.push_str("repro bench — host wall-clock (simulator speed, not modelled time)\n");
    if let Some(entries) = doc.get("spmv").and_then(Json::as_arr) {
        out.push_str("repeated SpMV (median s/iter):\n");
        for e in entries {
            out.push_str(&format!(
                "  {:<5} {:<4} iters={:<4} {:.6e}\n",
                e.get("engine").and_then(Json::as_str).unwrap_or("?"),
                e.get("mode").and_then(Json::as_str).unwrap_or("?"),
                e.get("iters").and_then(Json::as_u64).unwrap_or(0),
                e.get("median_s_per_iter")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
            ));
        }
    }
    if let Some(entries) = doc.get("spmv_batch").and_then(Json::as_arr) {
        out.push_str("batched multi-RHS SpMV (amortized s/iter/rhs):\n");
        for e in entries {
            out.push_str(&format!(
                "  {:<5} rhs={:<2} {:.6e}{}\n",
                e.get("engine").and_then(Json::as_str).unwrap_or("?"),
                e.get("rhs").and_then(Json::as_u64).unwrap_or(0),
                e.get("amortized_s_per_rhs")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                if e.get("matches_sequential").and_then(Json::as_bool) == Some(true) {
                    " (bit-identical to sequential)"
                } else {
                    " (MISMATCH vs sequential)"
                },
            ));
        }
    }
    if let Some(entries) = doc.get("concurrent").and_then(Json::as_arr) {
        out.push_str("cached-operator concurrency (k solves, one program):\n");
        for e in entries {
            out.push_str(&format!(
                "  {:<5} k={:<2} concurrent {:.4e}s vs sequential {:.4e}s ({:.2}x){}\n",
                e.get("engine").and_then(Json::as_str).unwrap_or("?"),
                e.get("k").and_then(Json::as_u64).unwrap_or(0),
                e.get("concurrent_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                e.get("sequential_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                e.get("reprogram_speedup")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                if e.get("matches_sequential").and_then(Json::as_bool) == Some(true) {
                    ""
                } else {
                    " (MISMATCH vs sequential)"
                },
            ));
        }
    }
    if let Some(entries) = doc.get("matrix_sweep").and_then(Json::as_arr) {
        out.push_str("suite matrix sweep (warm median s/iter):\n");
        for e in entries {
            out.push_str(&format!(
                "  {:<16} n={:<6} exact {:.4e}  fast {:.4e}\n",
                e.get("matrix").and_then(Json::as_str).unwrap_or("?"),
                e.get("rows").and_then(Json::as_u64).unwrap_or(0),
                e.get("exact_median_s_per_iter")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
                e.get("fast_median_s_per_iter")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN),
            ));
        }
    }
    if let Some(speedup) = doc.get("speedup") {
        out.push_str(&format!(
            "speedup vs {} baseline: exact {:.2}x, fast {:.2}x\n",
            doc.get("baseline")
                .and_then(|b| b.get("commit"))
                .and_then(Json::as_str)
                .unwrap_or("?"),
            speedup
                .get("exact_vs_baseline")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
            speedup
                .get("fast_vs_baseline")
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN),
        ));
    }
    if let Some(solves) = doc.get("solves").and_then(Json::as_arr) {
        out.push_str(&format!("end-to-end solves: {}\n", solves.len()));
    }
    out
}

fn fail(msg: impl Into<String>) -> ManifestError {
    ManifestError(msg.into())
}

/// Parses and validates a bench document: schema identity, a baseline
/// with the recorded commit, non-empty `spmv` and `solves` arrays with
/// well-formed entries, and finite positive speedups. Documents at
/// schema version 2 must additionally carry a non-empty `spmv_batch`
/// section whose entries all passed the bitwise batch-vs-sequential
/// check; version 3 a well-formed `concurrent` section; version 4 a
/// non-empty `matrix_sweep` section. Older documents remain valid at
/// their own version's requirements.
///
/// # Errors
///
/// Returns [`ManifestError`] describing the first violation.
pub fn validate_bench(text: &str) -> Result<Json, ManifestError> {
    let doc = parse(text).map_err(|e| fail(e.to_string()))?;
    if doc.get("schema").and_then(Json::as_str) != Some(BENCH_SCHEMA_NAME) {
        return Err(fail(format!("`schema` must be \"{BENCH_SCHEMA_NAME}\"")));
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("missing `schema_version`"))?;
    if !(BENCH_SCHEMA_MIN_VERSION..=BENCH_SCHEMA_VERSION).contains(&version) {
        return Err(fail(format!(
            "`schema_version` must be between {BENCH_SCHEMA_MIN_VERSION} and {BENCH_SCHEMA_VERSION}, got {version}"
        )));
    }
    let baseline = doc
        .get("baseline")
        .ok_or_else(|| fail("missing `baseline`"))?;
    if baseline.get("commit").and_then(Json::as_str).is_none()
        || baseline
            .get("exact_spmv_s")
            .and_then(Json::as_f64)
            .is_none()
    {
        return Err(fail("`baseline` needs `commit` and `exact_spmv_s`"));
    }
    let spmv = doc
        .get("spmv")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`spmv` must be an array"))?;
    if spmv.is_empty() {
        return Err(fail("`spmv` must not be empty"));
    }
    for (i, e) in spmv.iter().enumerate() {
        let median = e.get("median_s_per_iter").and_then(Json::as_f64);
        if e.get("engine").and_then(Json::as_str).is_none()
            || e.get("mode").and_then(Json::as_str).is_none()
            || e.get("iters").and_then(Json::as_u64).is_none()
            || !median.is_some_and(|m| m.is_finite() && m > 0.0)
        {
            return Err(fail(format!("spmv[{i}] is malformed")));
        }
    }
    if version >= 2 {
        let batch = doc
            .get("spmv_batch")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("schema v2 requires a `spmv_batch` array"))?;
        if batch.is_empty() {
            return Err(fail("`spmv_batch` must not be empty"));
        }
        for (i, e) in batch.iter().enumerate() {
            let amortized = e.get("amortized_s_per_rhs").and_then(Json::as_f64);
            if e.get("engine").and_then(Json::as_str).is_none()
                || e.get("rhs").and_then(Json::as_u64).is_none_or(|k| k == 0)
                || !amortized.is_some_and(|m| m.is_finite() && m > 0.0)
            {
                return Err(fail(format!("spmv_batch[{i}] is malformed")));
            }
            if e.get("matches_sequential").and_then(Json::as_bool) != Some(true) {
                return Err(fail(format!(
                    "spmv_batch[{i}] did not reproduce sequential spmv bitwise"
                )));
            }
        }
    }
    if version >= 3 {
        let concurrent = doc
            .get("concurrent")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("schema v3 requires a `concurrent` array"))?;
        if concurrent.is_empty() {
            return Err(fail("`concurrent` must not be empty"));
        }
        for (i, e) in concurrent.iter().enumerate() {
            let k = e.get("k").and_then(Json::as_u64);
            let seq = e.get("sequential_s").and_then(Json::as_f64);
            let conc = e.get("concurrent_s").and_then(Json::as_f64);
            if e.get("engine").and_then(Json::as_str).is_none()
                || k.is_none_or(|k| k == 0)
                || !seq.is_some_and(|s| s.is_finite() && s > 0.0)
                || !conc.is_some_and(|s| s.is_finite() && s > 0.0)
            {
                return Err(fail(format!("concurrent[{i}] is malformed")));
            }
            if e.get("matches_sequential").and_then(Json::as_bool) != Some(true) {
                return Err(fail(format!(
                    "concurrent[{i}] did not reproduce sequential solves bitwise"
                )));
            }
            let programs = e.get("operator_programs").and_then(Json::as_u64);
            let hits = e.get("cache_hits").and_then(Json::as_u64);
            if programs != Some(1) || hits != k.map(|k| k - 1) {
                return Err(fail(format!(
                    "concurrent[{i}] must program once and hit k-1 times"
                )));
            }
        }
    }
    if version >= 4 {
        let sweep = doc
            .get("matrix_sweep")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("schema v4 requires a `matrix_sweep` array"))?;
        if sweep.is_empty() {
            return Err(fail("`matrix_sweep` must not be empty"));
        }
        for (i, e) in sweep.iter().enumerate() {
            let exact = e.get("exact_median_s_per_iter").and_then(Json::as_f64);
            let fast = e.get("fast_median_s_per_iter").and_then(Json::as_f64);
            if e.get("matrix").and_then(Json::as_str).is_none()
                || e.get("rows").and_then(Json::as_u64).is_none_or(|n| n == 0)
                || e.get("iters").and_then(Json::as_u64).is_none_or(|n| n == 0)
                || !exact.is_some_and(|m| m.is_finite() && m > 0.0)
                || !fast.is_some_and(|m| m.is_finite() && m > 0.0)
            {
                return Err(fail(format!("matrix_sweep[{i}] is malformed")));
            }
        }
    }
    let solves = doc
        .get("solves")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("`solves` must be an array"))?;
    if solves.is_empty() {
        return Err(fail("`solves` must not be empty"));
    }
    for (i, s) in solves.iter().enumerate() {
        if s.get("solver").and_then(Json::as_str).is_none()
            || s.get("engine").and_then(Json::as_str).is_none()
            || s.get("iterations").and_then(Json::as_u64).is_none()
            || s.get("wall_s").and_then(Json::as_f64).is_none()
        {
            return Err(fail(format!("solves[{i}] is malformed")));
        }
    }
    let speedup = doc
        .get("speedup")
        .and_then(|s| s.get("exact_vs_baseline"))
        .and_then(Json::as_f64)
        .ok_or_else(|| fail("missing `speedup.exact_vs_baseline`"))?;
    if !(speedup.is_finite() && speedup > 0.0) {
        return Err(fail(format!("speedup {speedup} is not a positive number")));
    }
    Ok(doc)
}

/// One matched benchmark entry in a baseline-vs-new comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Human-readable entry key (e.g. `spmv exact/warm`).
    pub key: String,
    /// Baseline seconds (per iter or per RHS).
    pub base_s: f64,
    /// New seconds.
    pub new_s: f64,
    /// Slowdown ratio `new / base` (1.0 = unchanged, 2.0 = twice as
    /// slow).
    pub ratio: f64,
    /// True when the ratio exceeds `1 + tolerance`.
    pub regressed: bool,
}

/// Result of [`compare_bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Matched entries, in baseline order.
    pub rows: Vec<CompareRow>,
    /// Relative slowdown tolerance the rows were judged against.
    pub tolerance: f64,
    /// Entries present in only one of the two documents (skipped).
    pub unmatched: usize,
}

impl CompareReport {
    /// Matched entries that regressed beyond tolerance.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// True when no matched entry regressed.
    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Renders the comparison as a one-screen table.
    pub fn render(&self) -> String {
        let width = self.rows.iter().map(|r| r.key.len()).max().unwrap_or(5);
        let mut out = format!(
            "bench compare (tolerance: fail above {:.2}x slowdown)\n",
            1.0 + self.tolerance
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:width$}  base {:>10.4e}  new {:>10.4e}  ratio {:>6.3}x  {}\n",
                r.key,
                r.base_s,
                r.new_s,
                r.ratio,
                if r.regressed { "REGRESSED" } else { "ok" },
            ));
        }
        if self.unmatched > 0 {
            out.push_str(&format!(
                "  ({} entries present in only one document, skipped)\n",
                self.unmatched
            ));
        }
        out.push_str(&format!(
            "{} matched entries, {} regressed\n",
            self.rows.len(),
            self.regressions()
        ));
        out
    }
}

/// Collects `(key, seconds)` comparison points from a bench document:
/// every `spmv[]` entry keyed by engine/mode on `median_s_per_iter`,
/// every `spmv_batch[]` entry keyed by engine/rhs on
/// `amortized_s_per_rhs` (absent in v1 documents), and every
/// `concurrent[]` entry keyed by engine/k on `amortized_s_per_solve`
/// (absent before v3), and every `matrix_sweep[]` entry keyed by matrix
/// name on each engine's warm median (absent before v4).
fn compare_points(doc: &Json) -> Vec<(String, f64)> {
    let mut points = Vec::new();
    if let Some(entries) = doc.get("spmv").and_then(Json::as_arr) {
        for e in entries {
            let engine = e.get("engine").and_then(Json::as_str).unwrap_or("?");
            let mode = e.get("mode").and_then(Json::as_str).unwrap_or("?");
            if let Some(s) = e.get("median_s_per_iter").and_then(Json::as_f64) {
                points.push((format!("spmv {engine}/{mode}"), s));
            }
        }
    }
    if let Some(entries) = doc.get("spmv_batch").and_then(Json::as_arr) {
        for e in entries {
            let engine = e.get("engine").and_then(Json::as_str).unwrap_or("?");
            let rhs = e.get("rhs").and_then(Json::as_u64).unwrap_or(0);
            if let Some(s) = e.get("amortized_s_per_rhs").and_then(Json::as_f64) {
                points.push((format!("spmv_batch {engine}/rhs{rhs}"), s));
            }
        }
    }
    if let Some(entries) = doc.get("concurrent").and_then(Json::as_arr) {
        for e in entries {
            let engine = e.get("engine").and_then(Json::as_str).unwrap_or("?");
            let k = e.get("k").and_then(Json::as_u64).unwrap_or(0);
            if let Some(s) = e.get("amortized_s_per_solve").and_then(Json::as_f64) {
                points.push((format!("concurrent {engine}/k{k}"), s));
            }
        }
    }
    if let Some(entries) = doc.get("matrix_sweep").and_then(Json::as_arr) {
        for e in entries {
            let name = e.get("matrix").and_then(Json::as_str).unwrap_or("?");
            if let Some(s) = e.get("exact_median_s_per_iter").and_then(Json::as_f64) {
                points.push((format!("matrix {name}/exact"), s));
            }
            if let Some(s) = e.get("fast_median_s_per_iter").and_then(Json::as_f64) {
                points.push((format!("matrix {name}/fast"), s));
            }
        }
    }
    points
}

/// Compares two bench documents for host-performance regressions: both
/// texts must validate ([`validate_bench`]), matched entries (same
/// `spmv` engine/mode, same `spmv_batch` engine/rhs) are judged by the
/// slowdown ratio `new / base`, and any ratio above `1 + tolerance`
/// marks a regression. Entries present in only one document are
/// counted but not judged, so a baseline at an older schema (or a
/// smoke run against a full run) still gates its intersection.
///
/// # Errors
///
/// Returns [`ManifestError`] when either document fails validation,
/// when the tolerance is not a finite non-negative number, or when the
/// two documents share no comparable entries.
pub fn compare_bench(
    base_text: &str,
    new_text: &str,
    tolerance: f64,
) -> Result<CompareReport, ManifestError> {
    if !(tolerance.is_finite() && tolerance >= 0.0) {
        return Err(fail(format!(
            "tolerance must be a finite non-negative number, got {tolerance}"
        )));
    }
    let base = validate_bench(base_text).map_err(|e| fail(format!("baseline: {}", e.0)))?;
    let new = validate_bench(new_text).map_err(|e| fail(format!("new: {}", e.0)))?;
    let base_points = compare_points(&base);
    let new_points = compare_points(&new);
    let mut rows = Vec::new();
    let mut matched_keys = 0usize;
    for (key, base_s) in &base_points {
        let Some((_, new_s)) = new_points.iter().find(|(k, _)| k == key) else {
            continue;
        };
        matched_keys += 1;
        let ratio = new_s / base_s;
        rows.push(CompareRow {
            key: key.clone(),
            base_s: *base_s,
            new_s: *new_s,
            ratio,
            regressed: ratio > 1.0 + tolerance,
        });
    }
    if rows.is_empty() {
        return Err(fail(
            "the two bench documents share no comparable entries".to_string(),
        ));
    }
    let unmatched = (base_points.len() - matched_keys) + (new_points.len() - matched_keys);
    Ok(CompareReport {
        rows,
        tolerance,
        unmatched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs_and_validates() {
        // The smallest meaningful shape: enough to prove the plumbing
        // without paying the full 64-iteration run in unit tests.
        let opts = BenchOptions {
            iters: 2,
            solver_max_iters: 2,
            thread_counts: vec![1],
            overlaps: vec![false],
            rhs_counts: vec![1, 3],
            sweep_iters: 2,
            sweep_target_n: 192,
            sweep_matrices: Some(vec!["Pres_Poisson".into(), "crystm03".into()]),
            smoke: true,
        };
        let doc = run_bench(&opts);
        let text = doc.to_string_pretty();
        let parsed = validate_bench(&text).unwrap();
        assert_eq!(
            parsed.get("spmv").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        // 2 engines × 2 batch widths, every one bit-identical to
        // sequential (validate_bench already enforces the flag).
        assert_eq!(
            parsed
                .get("spmv_batch")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(4)
        );
        // 2 engines × 2 k-widths, each programming once and hitting
        // k-1 times (validate_bench already enforces both).
        assert_eq!(
            parsed
                .get("concurrent")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(4)
        );
        // The two matrices the sweep was restricted to, both engines
        // timed (validate_bench already enforces the shape).
        assert_eq!(
            parsed
                .get("matrix_sweep")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        // 1 thread × 1 overlap × 2 engines × 2 solvers.
        assert_eq!(
            parsed
                .get("solves")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(4)
        );
        // The warm exact runs must actually hit the scratch arenas.
        assert!(
            parsed
                .get("counters")
                .and_then(|c| c.get("scratch_reuse"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0
        );
        let summary = summarize(&parsed);
        assert!(summary.contains("speedup"), "{summary}");
    }

    /// Multiplies one numeric field of `doc[section][idx]` in place.
    fn scale_entry(doc: &mut Json, section: &str, idx: usize, field: &str, factor: f64) {
        let Json::Obj(fields) = doc else {
            panic!("doc is an object")
        };
        let (_, section) = fields
            .iter_mut()
            .find(|(k, _)| k == section)
            .expect("section present");
        let Json::Arr(entries) = section else {
            panic!("section is an array")
        };
        let Json::Obj(entry) = &mut entries[idx] else {
            panic!("entry is an object")
        };
        let (_, slot) = entry
            .iter_mut()
            .find(|(k, _)| k == field)
            .expect("field present");
        let Json::Num(v) = slot else {
            panic!("field is a number")
        };
        *v *= factor;
    }

    #[test]
    fn compare_detects_injected_regressions() {
        let opts = BenchOptions {
            iters: 2,
            solver_max_iters: 2,
            thread_counts: vec![1],
            overlaps: vec![false],
            rhs_counts: vec![1],
            sweep_iters: 2,
            sweep_target_n: 192,
            sweep_matrices: Some(vec!["Pres_Poisson".into()]),
            smoke: true,
        };
        let base = run_bench(&opts);
        let base_text = base.to_string_pretty();

        // A document compared against itself passes at zero tolerance:
        // 4 spmv entries + 2 engines × 1 batch width + 2 engines × 1
        // concurrency width + 1 sweep matrix × 2 engines.
        let same = compare_bench(&base_text, &base_text, 0.0).unwrap();
        assert!(same.passed());
        assert_eq!(same.rows.len(), 10);
        assert_eq!(same.unmatched, 0);

        // Inject a 10x slowdown into one spmv entry and one batch
        // entry: both must trip a 50% tolerance.
        let mut slow = base.clone();
        scale_entry(&mut slow, "spmv", 0, "median_s_per_iter", 10.0);
        scale_entry(&mut slow, "spmv_batch", 1, "amortized_s_per_rhs", 10.0);
        let slow_text = slow.to_string_pretty();
        let report = compare_bench(&base_text, &slow_text, 0.5).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions(), 2);
        assert!(report.render().contains("REGRESSED"), "{}", report.render());

        // A generous tolerance absorbs the same slowdown, and a
        // *speedup* never regresses.
        assert!(compare_bench(&base_text, &slow_text, 20.0)
            .unwrap()
            .passed());
        assert!(compare_bench(&slow_text, &base_text, 0.5).unwrap().passed());

        // Broken tolerances and broken documents are errors.
        assert!(compare_bench(&base_text, &base_text, f64::NAN).is_err());
        assert!(compare_bench(&base_text, &base_text, -0.5).is_err());
        assert!(compare_bench(&base_text, "not json", 0.5).is_err());
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        assert!(validate_bench("not json").is_err());
        assert!(validate_bench("{\"schema\": \"other\"}").is_err());
        let minimal = format!(
            "{{\"schema\": \"{BENCH_SCHEMA_NAME}\", \"schema_version\": {BENCH_SCHEMA_VERSION}}}"
        );
        assert!(validate_bench(&minimal).unwrap_err().0.contains("baseline"));
    }
}
