//! End-to-end solver runs over the 20-matrix suite (Figures 8–10).

use memsci_core::dispatch::{choose_target, Target};
use memsci_core::engine::AcceleratorPlatform;
use memsci_core::overhead::{preprocessing_time, SetupCost};
use memsci_core::{AcceleratorConfig, ExecStats};
use memsci_gpu::GpuPlatform;
use memsci_solvers::{bicgstab::bicgstab, cg::cg, SolveOptions, SolveReport};
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::{suite, SuiteEntry};
use memsci_sparse::MatrixStats;

/// Cost of one solve on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveCost {
    /// Iterations to convergence.
    pub iterations: usize,
    /// Whether the solve converged.
    pub converged: bool,
    /// Modelled time, seconds.
    pub time: f64,
    /// Modelled energy, joules.
    pub energy: f64,
}

impl From<&SolveReport> for SolveCost {
    fn from(r: &SolveReport) -> Self {
        SolveCost {
            iterations: r.iterations,
            converged: r.converged,
            time: r.time_seconds,
            energy: r.energy_joules,
        }
    }
}

/// Complete outcome for one suite matrix.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// SuiteSparse name.
    pub name: &'static str,
    /// Whether CG (SPD) or BiCG-STAB was used.
    pub spd: bool,
    /// Statistics of the generated replica.
    pub stats: MatrixStats,
    /// Blocking efficiency achieved by the preprocessor.
    pub efficiency: f64,
    /// Table II blocking efficiency for comparison.
    pub paper_blocked: f64,
    /// Where the solve ran (§VIII-A dispatch).
    pub target: Target,
    /// Cost on the accelerator path (for GPU-fallback matrices this is
    /// the GPU solve plus the preprocessing attempt).
    pub accel: SolveCost,
    /// Cost on the GPU baseline.
    pub gpu: SolveCost,
    /// Setup overheads (preprocessing + programming).
    pub setup: SetupCost,
    /// Average vector slices per cluster in the last MVM.
    pub avg_slices: f64,
    /// Host execution stats of this matrix's end-to-end run (filled by
    /// [`run_suite`]; wall-clock measurement, not modelled time).
    pub exec: ExecStats,
}

impl MatrixOutcome {
    /// Fig. 8 metric: GPU time / accelerator time.
    pub fn speedup(&self) -> f64 {
        self.gpu.time / self.accel.time
    }

    /// Fig. 9 metric: accelerator energy normalized to the GPU.
    pub fn energy_ratio(&self) -> f64 {
        self.accel.energy / self.gpu.energy
    }

    /// Fig. 10 metric: setup overhead fraction of the accelerator solve.
    pub fn overhead_fraction(&self) -> f64 {
        self.setup.overhead_fraction(self.accel.time)
    }
}

/// Records one platform's solve into the telemetry outcome log.
fn record_outcome(entry: &SuiteEntry, platform: &str, report: &SolveReport) {
    if !memsci_telemetry::enabled() {
        return; // keep the disabled path allocation-free
    }
    memsci_telemetry::record_outcome(memsci_telemetry::SolveOutcome {
        label: format!("{}/{platform}", entry.name),
        solver: if entry.spd { "cg" } else { "bicgstab" }.to_string(),
        iterations: report.iterations,
        converged: report.converged,
        relative_residual: report.relative_residual,
        time_seconds: report.time_seconds,
        energy_joules: report.energy_joules,
    });
}

/// Runs one suite matrix on both platforms.
pub fn run_matrix(entry: &SuiteEntry, scale: f64, tol: f64) -> MatrixOutcome {
    let a = entry.generate_scaled(scale);
    let stats = MatrixStats::compute(&a);
    let n = a.rows();
    let b = vec![1.0; n];
    // Per-iteration costs are what Figures 8-9 compare; capping the
    // count keeps ill-conditioned replicas affordable while both
    // platforms execute identical iteration sequences.
    let opts = SolveOptions::with_tol(tol).max_iters(2_000);

    // GPU baseline solve.
    let mut gpu = GpuPlatform::new(a.clone());
    let mut xg = vec![0.0; n];
    let gpu_report = if entry.spd {
        cg(&mut gpu, &b, &mut xg, &opts)
    } else {
        bicgstab(&mut gpu, &b, &mut xg, &opts)
    };
    let gpu_cost = SolveCost::from(&gpu_report);
    record_outcome(entry, "gpu", &gpu_report);

    // Accelerator path: preprocess, dispatch, solve.
    let config = AcceleratorConfig::default();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let efficiency = blocked.stats.efficiency();
    let target = choose_target(&blocked, &config);
    let preproc = preprocessing_time(&blocked.stats, n, |rows, nnz| {
        gpu.spec().spmv_time(rows, nnz)
    });

    let (accel_cost, setup, avg_slices) = match target {
        Target::Accelerator => {
            let mut acc = AcceleratorPlatform::new(&blocked, config);
            let setup = SetupCost {
                preprocessing_time: preproc,
                write_time: acc.write_time(),
                write_energy: acc.write_energy(),
            };
            let mut x = vec![0.0; n];
            let report = if entry.spd {
                cg(&mut acc, &b, &mut x, &opts)
            } else {
                bicgstab(&mut acc, &b, &mut x, &opts)
            };
            record_outcome(entry, "accel", &report);
            (SolveCost::from(&report), setup, acc.last_spmv().avg_slices)
        }
        Target::Gpu => {
            // §VIII-A: fall back to the GPU, paying only the bounded
            // preprocessing attempt.
            let mut gpu2 = GpuPlatform::new(a.clone());
            let mut x = vec![0.0; n];
            let report = if entry.spd {
                cg(&mut gpu2, &b, &mut x, &opts)
            } else {
                bicgstab(&mut gpu2, &b, &mut x, &opts)
            };
            record_outcome(entry, "gpu_fallback", &report);
            let cost = SolveCost {
                iterations: report.iterations,
                converged: report.converged,
                time: report.time_seconds + preproc,
                energy: report.energy_joules + gpu.spec().energy(preproc),
            };
            let setup = SetupCost {
                preprocessing_time: preproc,
                write_time: 0.0,
                write_energy: 0.0,
            };
            (cost, setup, 0.0)
        }
    };

    MatrixOutcome {
        name: entry.name,
        spd: entry.spd,
        stats,
        efficiency,
        paper_blocked: entry.paper_blocked,
        target,
        accel: accel_cost,
        gpu: gpu_cost,
        setup,
        avg_slices,
        exec: ExecStats::default(),
    }
}

/// Runs a set of suite matrices, fanning them out across host workers.
///
/// Matrices are independent; outcomes come back in entry order, so the
/// result is bit-identical at any thread count (`None` = machine
/// parallelism; `MEMSCI_THREADS` overrides). Each outcome's
/// [`exec`](MatrixOutcome::exec) records that matrix's own wall-clock.
pub fn run_entries(
    entries: &[SuiteEntry],
    scale: f64,
    tol: f64,
    threads: Option<usize>,
) -> Vec<MatrixOutcome> {
    let threads = memsci_core::exec::worker_count(threads);
    memsci_core::exec::parallel_map(threads, entries, |_, e| {
        let (mut outcome, exec) =
            memsci_core::exec::timed(threads, 1, || run_matrix(e, scale, tol));
        memsci_telemetry::record_exec(
            "bench/run_matrix",
            exec.threads,
            exec.tasks,
            exec.wall_seconds,
        );
        outcome.exec = exec;
        outcome
    })
}

/// Runs the whole suite.
pub fn run_suite(scale: f64, tol: f64) -> Vec<MatrixOutcome> {
    run_entries(&suite(), scale, tol, None)
}

/// Geometric mean of a positive series.
///
/// Non-positive and non-finite values have no logarithm and would
/// silently poison the whole mean with `-inf`/`NaN`; they are skipped
/// with a warning on stderr instead. Returns `NaN` when no valid value
/// remains (including for an empty input).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    let mut skipped = 0usize;
    for v in values {
        if v > 0.0 && v.is_finite() {
            log_sum += v.ln();
            count += 1;
        } else {
            skipped += 1;
        }
    }
    if skipped > 0 {
        let message =
            format!("geometric_mean skipped {skipped} non-positive or non-finite value(s)");
        // Counted even while the telemetry sink is disabled, so suite
        // runs can assert zero skipped values after the fact.
        memsci_telemetry::warn("geometric_mean", &message);
        eprintln!("warning: {message}");
    }
    if count == 0 {
        return f64::NAN;
    }
    (log_sum / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::suite::by_name;

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geometric_mean(std::iter::empty()).is_nan());
    }

    #[test]
    fn geometric_mean_skips_invalid_values() {
        // Zeros, negatives, and non-finite values must not poison the
        // mean of the remaining series.
        assert!((geometric_mean([2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, -3.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, f64::NAN, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean([2.0, f64::INFINITY, 8.0]) - 4.0).abs() < 1e-12);
        // Nothing valid left: NaN, not a panic and not -inf.
        assert!(geometric_mean([0.0, -1.0]).is_nan());
        assert!(geometric_mean([f64::NEG_INFINITY]).is_nan());
    }

    #[test]
    fn geometric_mean_warning_reaches_telemetry() {
        let _guard = memsci_telemetry::exclusive_for_tests();
        let before = memsci_telemetry::warning_count();
        assert!((geometric_mean([4.0, f64::NAN]) - 4.0).abs() < 1e-12);
        assert_eq!(memsci_telemetry::warning_count(), before + 1);
    }

    #[test]
    fn well_blocking_matrix_beats_the_gpu() {
        let e = by_name("Pres_Poisson").unwrap();
        let o = run_matrix(&e, 0.25, 1e-8);
        assert_eq!(o.target, Target::Accelerator);
        assert!(o.accel.converged && o.gpu.converged);
        // Same precision class; block-wise summation may shift the count
        // by a hair.
        assert!(o.accel.iterations.abs_diff(o.gpu.iterations) <= 2);
        assert!(o.speedup() > 1.0, "speedup {}", o.speedup());
        assert!(o.energy_ratio() < 1.0, "energy ratio {}", o.energy_ratio());
        assert!(o.overhead_fraction() < 0.9);
    }

    #[test]
    fn parallel_entries_match_serial() {
        let entries = vec![by_name("Pres_Poisson").unwrap(), by_name("ns3Da").unwrap()];
        let serial = run_entries(&entries, 0.12, 1e-6, Some(1));
        let parallel = run_entries(&entries, 0.12, 1e-6, Some(2));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.target, p.target);
            assert_eq!(s.accel, p.accel);
            assert_eq!(s.gpu, p.gpu);
            assert_eq!(s.efficiency.to_bits(), p.efficiency.to_bits());
            assert_eq!(s.avg_slices.to_bits(), p.avg_slices.to_bits());
            assert!(p.exec.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn difficult_matrix_falls_back_with_small_loss() {
        let e = by_name("ns3Da").unwrap();
        let o = run_matrix(&e, 0.25, 1e-8);
        assert_eq!(o.target, Target::Gpu);
        // The fallback pays only preprocessing: a few percent.
        let loss = 1.0 - o.speedup();
        assert!(loss > 0.0 && loss < 0.25, "loss {loss}");
    }
}
