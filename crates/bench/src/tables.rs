//! Text renderings of the paper's tables.

use memsci_core::AcceleratorConfig;
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::suite::suite;
use memsci_sparse::MatrixStats;
use memsci_xbar::CostModel;

/// Table I: the accelerator configuration.
pub fn table1() -> String {
    let c = AcceleratorConfig::default();
    let mut out = String::new();
    out.push_str("Table I — Accelerator configuration\n");
    out.push_str(&format!(
        "System   | ({}) banks, double-precision floating point, fclk = {:.1} GHz, 15nm process\n",
        c.banks,
        c.local.f_clk / 1e9
    ));
    let mix: Vec<String> = c
        .clusters_per_bank
        .iter()
        .map(|&(s, n)| format!("({n}) x {s}x{s} clusters"))
        .collect();
    out.push_str(&format!("Bank     | {}, 1 LEON core\n", mix.join(", ")));
    out.push_str("Cluster  | 127 bit slice crossbars\n");
    out.push_str("Crossbar | N x N cells, (log2[N] - 1)-bit pipelined SAR ADC (CIC), 2N drivers\n");
    out.push_str(&format!(
        "Cell     | TaOx, Ron = {:.0} kOhm, Roff = {:.0} MOhm, Vread = {} V, Ewrite = {:.2} nJ, Twrite = {:.2} ns\n",
        c.cell.r_on / 1e3,
        c.cell.r_off / 1e6,
        c.cell.v_read,
        c.cell.e_write * 1e9,
        c.cell.t_write * 1e9,
    ));
    out
}

/// One row of the Table II regeneration.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Matrix name.
    pub name: &'static str,
    /// Whether the matrix is SPD.
    pub spd: bool,
    /// Generated non-zeros.
    pub nnz: usize,
    /// Generated rows.
    pub rows: usize,
    /// Generated non-zeros per row.
    pub nnz_per_row: f64,
    /// Measured blocking efficiency.
    pub blocked: f64,
    /// Paper's Table II values for comparison.
    pub paper: (usize, usize, f64, f64),
}

/// Regenerates Table II at the given scale.
pub fn table2_rows(scale: f64) -> Vec<Table2Row> {
    let cfg = BlockingConfig::default();
    suite()
        .iter()
        .map(|e| {
            let a = e.generate_scaled(scale);
            let stats = MatrixStats::compute(&a);
            let blocked = BlockedMatrix::block(&a, &cfg);
            Table2Row {
                name: e.name,
                spd: e.spd,
                nnz: stats.nnz,
                rows: stats.rows,
                nnz_per_row: stats.nnz_per_row,
                blocked: blocked.stats.efficiency(),
                paper: (e.paper_nnz, e.rows, e.paper_nnz_per_row, e.paper_blocked),
            }
        })
        .collect()
}

/// Renders Table II.
pub fn table2(scale: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table II — Evaluated matrices (replicas at scale {scale}), SPD on top\n"
    ));
    out.push_str(
        "Matrix            |      NNZs |    Rows | NNZ/Row | Blocked | (paper: NNZ/Row, Blocked)\n",
    );
    out.push_str(&"-".repeat(95));
    out.push('\n');
    for r in table2_rows(scale) {
        out.push_str(&format!(
            "{:<17} | {:>9} | {:>7} | {:>7.1} | {:>6.1}% | (paper: {:>5.1}, {:>4.1}%)\n",
            r.name,
            r.nnz,
            r.rows,
            r.nnz_per_row,
            r.blocked * 100.0,
            r.paper.2,
            r.paper.3 * 100.0,
        ));
    }
    out
}

/// Table III: area, energy, and latency of the four crossbar sizes.
pub fn table3() -> String {
    let m = CostModel::default();
    let mut out = String::new();
    out.push_str("Table III — Area, energy, and latency of crossbar sizes (includes the ADC)\n");
    out.push_str("Size | Area [mm2] | Energy [pJ] | Latency [nsec] | (paper: energy, latency)\n");
    out.push_str(&"-".repeat(78));
    out.push('\n');
    let paper = [
        (64usize, 28.0, 53.3),
        (128, 65.2, 107.0),
        (256, 150.0, 213.0),
        (512, 342.0, 427.0),
    ];
    for (size, e_paper, l_paper) in paper {
        out.push_str(&format!(
            "{:>4} | {:>10.5} | {:>11.1} | {:>14.1} | (paper: {:>6.1} pJ, {:>5.1} ns)\n",
            size,
            m.crossbar_area_mm2(size),
            m.crossbar_op_energy(size, 1) * 1e12,
            m.crossbar_op_latency(size) * 1e9,
            e_paper,
            l_paper,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_the_key_parameters() {
        let t = table1();
        assert!(t.contains("128"));
        assert!(t.contains("512x512"));
        assert!(t.contains("LEON"));
        assert!(t.contains("TaOx"));
    }

    #[test]
    fn table3_matches_paper_values() {
        let t = table3();
        assert!(t.contains("342.0"));
        assert!(t.contains("53.3"));
        assert!(t.contains("0.00352"));
    }

    #[test]
    fn table2_has_twenty_rows() {
        let rows = table2_rows(0.02);
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|r| r.rows >= 192));
    }
}
