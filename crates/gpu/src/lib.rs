//! Analytic GPU baseline: a Tesla P100 roofline model.
//!
//! The paper compares against an nVidia Tesla P100 modelled with
//! GPGPU-Sim and GPUWattch (§VII-B). Neither tool is available here, so
//! this crate substitutes a calibrated analytic model resting on the
//! observation that double-precision Krylov solvers on GPUs are
//! memory-bandwidth-bound (Anzt et al., the paper's reference 53).
//! Sustained efficiencies are calibrated to the GPGPU-Sim-class
//! behaviour the paper measures — irregular CSR SpMV sustains roughly a
//! tenth of peak bandwidth, and kernel launch/synchronization costs
//! dominate the BLAS-1 tail — rather than to hand-tuned modern
//! libraries:
//!
//! * CSR SpMV moves `12·nnz` bytes of matrix data plus partially-cached
//!   gathers of `x`, at an irregular-access bandwidth efficiency well
//!   below peak;
//! * BLAS-1 kernels (dot, AXPY) stream at near-peak efficiency but pay
//!   a launch/synchronization latency per kernel, which dominates for
//!   the smaller matrices of Table II;
//! * energy is average kernel power times busy time.
//!
//! Numerically the platform executes kernels in plain `f64` — the same
//! arithmetic a real GPU performs — so iteration counts are faithful.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use memsci_solvers::platform::{axpby_f64, dot_f64, Platform};
use memsci_sparse::Csr;

/// Performance/energy parameters of the modelled GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak memory bandwidth in bytes/s (P100 HBM2: 732 GB/s).
    pub mem_bw: f64,
    /// Sustained fraction of peak bandwidth for irregular CSR SpMV.
    pub eff_bw_spmv: f64,
    /// Sustained fraction of peak bandwidth for streaming BLAS-1.
    pub eff_bw_dense: f64,
    /// Peak double-precision throughput in FLOP/s (P100: 4.7 TFLOP/s).
    pub peak_dp_flops: f64,
    /// Launch + dependency-synchronization latency per kernel, seconds.
    pub kernel_launch: f64,
    /// Average power while kernels execute, watts.
    pub power_avg: f64,
    /// Bytes of `x` gather traffic per non-zero after caching.
    pub x_gather_bytes_per_nnz: f64,
}

impl Default for GpuSpec {
    /// Tesla P100 (PCIe, 16 GB) with sustained efficiencies calibrated
    /// against published DP sparse-solver measurements.
    fn default() -> Self {
        GpuSpec {
            mem_bw: 732.0e9,
            eff_bw_spmv: 0.085,
            eff_bw_dense: 0.35,
            peak_dp_flops: 4.7e12,
            kernel_launch: 15.0e-6,
            power_avg: 120.0,
            x_gather_bytes_per_nnz: 8.0,
        }
    }
}

impl GpuSpec {
    /// Model time for one CSR SpMV (`nnz` non-zeros, `rows` rows).
    pub fn spmv_time(&self, rows: usize, nnz: usize) -> f64 {
        // Matrix: 8 B value + 4 B column per nnz, 4 B row pointer and
        // 8 B result per row; vector gathers partially cached.
        let bytes = nnz as f64 * (12.0 + self.x_gather_bytes_per_nnz) + rows as f64 * 12.0;
        let bw_time = bytes / (self.eff_bw_spmv * self.mem_bw);
        let flop_time = 2.0 * nnz as f64 / self.peak_dp_flops;
        bw_time.max(flop_time) + self.kernel_launch
    }

    /// Model time for a dense dot product of length `n` (two kernels:
    /// multiply-reduce and final reduction, plus a result readback).
    pub fn dot_time(&self, n: usize) -> f64 {
        let bytes = 16.0 * n as f64;
        bytes / (self.eff_bw_dense * self.mem_bw) + 2.0 * self.kernel_launch
    }

    /// Model time for `y = α·x + β·y` of length `n`.
    pub fn axpby_time(&self, n: usize) -> f64 {
        let bytes = 24.0 * n as f64;
        bytes / (self.eff_bw_dense * self.mem_bw) + self.kernel_launch
    }

    /// Energy for a period of busy time.
    pub fn energy(&self, time: f64) -> f64 {
        self.power_avg * time
    }
}

/// A [`Platform`] executing kernels in `f64` while accumulating the
/// analytic P100 cost model.
///
/// # Examples
///
/// ```
/// use memsci_gpu::GpuPlatform;
/// use memsci_solvers::cg::cg;
/// use memsci_solvers::report::SolveOptions;
/// use memsci_sparse::generate::poisson2d;
///
/// let mut gpu = GpuPlatform::new(poisson2d(16, 16));
/// let b = vec![1.0; 256];
/// let mut x = vec![0.0; 256];
/// let report = cg(&mut gpu, &b, &mut x, &SolveOptions::default());
/// assert!(report.converged);
/// assert!(report.time_seconds > 0.0);
/// assert!(report.energy_joules > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GpuPlatform {
    spec: GpuSpec,
    a: Csr,
    a_t: Csr,
    diag: std::sync::Arc<[f64]>,
    time: f64,
    energy: f64,
}

impl GpuPlatform {
    /// Wraps a square CSR matrix with the default P100 model.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: Csr) -> Self {
        Self::with_spec(a, GpuSpec::default())
    }

    /// Wraps a matrix with an explicit GPU spec.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn with_spec(a: Csr, spec: GpuSpec) -> Self {
        assert_eq!(a.rows(), a.cols(), "platform matrices must be square");
        let a_t = a.transpose();
        let diag = a.diagonal().into();
        GpuPlatform {
            spec,
            a,
            a_t,
            diag,
            time: 0.0,
            energy: 0.0,
        }
    }

    /// The GPU parameters in use.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Csr {
        &self.a
    }

    fn charge(&mut self, t: f64) {
        self.time += t;
        self.energy += self.spec.energy(t);
    }
}

impl Platform for GpuPlatform {
    fn n(&self) -> usize {
        self.a.rows()
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        self.a.spmv(x, y);
        let t = self.spec.spmv_time(self.a.rows(), self.a.nnz());
        self.charge(t);
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        self.a_t.spmv(x, y);
        let t = self.spec.spmv_time(self.a.rows(), self.a.nnz());
        self.charge(t);
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        let t = self.spec.dot_time(x.len());
        self.charge(t);
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        let t = self.spec.axpby_time(x.len());
        self.charge(t);
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> std::sync::Arc<[f64]> {
        std::sync::Arc::clone(&self.diag)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.time
    }

    fn energy_joules(&self) -> f64 {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::poisson2d;
    use memsci_sparse::Coo;

    #[test]
    fn spmv_time_is_bandwidth_dominated() {
        let s = GpuSpec::default();
        // 1.6M nnz, 100k rows: tens of microseconds, not milliseconds.
        let t = s.spmv_time(100_000, 1_600_000);
        assert!(t > 1.0e-5 && t < 1.0e-3, "{t}");
        // Doubling nnz roughly doubles the time (launch constant aside).
        let t2 = s.spmv_time(100_000, 3_200_000);
        assert!(t2 > 1.7 * (t - s.kernel_launch));
    }

    #[test]
    fn small_kernels_are_launch_bound() {
        let s = GpuSpec::default();
        let t = s.dot_time(1000);
        assert!(t < 2.5 * s.kernel_launch + 1e-6);
        assert!(t >= 2.0 * s.kernel_launch);
    }

    #[test]
    fn numerics_match_reference_platform() {
        let a = poisson2d(8, 8);
        let mut gpu = GpuPlatform::new(a.clone());
        let mut reference = memsci_solvers::CsrPlatform::new(a);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin()).collect();
        let mut y1 = vec![0.0; 64];
        let mut y2 = vec![0.0; 64];
        gpu.spmv(&x, &mut y1);
        reference.spmv(&x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(gpu.dot(&x, &y1), reference.dot(&x, &y2));
    }

    #[test]
    fn transpose_spmv_uses_transposed_matrix() {
        let a = Coo::from_triplets(2, 2, [(0, 1, 3.0)]).unwrap().to_csr();
        let mut gpu = GpuPlatform::new(a);
        let mut y = vec![0.0; 2];
        gpu.spmv_transpose(&[2.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0, 6.0]);
    }

    #[test]
    fn cost_accumulates_per_kernel() {
        let a = poisson2d(4, 4);
        let mut gpu = GpuPlatform::new(a);
        assert_eq!(gpu.elapsed_seconds(), 0.0);
        let x = vec![1.0; 16];
        let mut y = vec![0.0; 16];
        gpu.spmv(&x, &mut y);
        let t1 = gpu.elapsed_seconds();
        assert!(t1 > 0.0);
        gpu.spmv(&x, &mut y);
        assert!((gpu.elapsed_seconds() - 2.0 * t1).abs() < 1e-12);
        assert!((gpu.energy_joules() - gpu.spec().power_avg * gpu.elapsed_seconds()).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_with_power() {
        let spec = GpuSpec {
            power_avg: 100.0,
            ..Default::default()
        };
        assert_eq!(spec.energy(2.0), 200.0);
    }
}
