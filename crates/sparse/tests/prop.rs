//! Property-based tests for the sparse substrate.

use memsci_sparse::blocking::{exponent_window_partition, BlockedMatrix, BlockingConfig};
use memsci_sparse::dense::DenseMatrix;
use memsci_sparse::matrix_market::{read_coo, write_csr};
use memsci_sparse::Coo;
use proptest::prelude::*;

/// Strategy: a random sparse square matrix as unique-position triplets.
fn matrix_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -100.0f64..100.0);
        (Just(n), prop::collection::vec(entry, 0..(n * 4)))
    })
}

proptest! {
    /// COO→CSR compresses duplicates exactly like a dense accumulation.
    #[test]
    fn coo_to_csr_matches_dense_accumulation((n, entries) in matrix_strategy(24)) {
        let coo = Coo::from_triplets(n, n, entries.iter().copied()).unwrap();
        let csr = coo.to_csr();
        // Accumulate in the same (stable, position-sorted) order the
        // compression uses, so float sums match bit for bit.
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut dense = vec![0.0f64; n * n];
        for &(r, c, v) in &sorted {
            dense[r * n + c] += v;
        }
        for r in 0..n {
            for c in 0..n {
                // Bitwise: also distinguishes -0.0 from +0.0, which
                // `==` would conflate.
                prop_assert_eq!(
                    csr.get(r, c).to_bits(),
                    dense[r * n + c].to_bits(),
                    "({}, {}): {} vs {}",
                    r,
                    c,
                    csr.get(r, c),
                    dense[r * n + c]
                );
            }
        }
    }

    /// SpMV distributes over the transpose: (Aᵀ)ᵀ x == A x, and
    /// y = Aᵀ x matches the explicit transpose.
    #[test]
    fn transpose_is_involutive((n, entries) in matrix_strategy(20)) {
        let a = Coo::from_triplets(n, n, entries).unwrap().to_csr();
        let att = a.transpose().transpose();
        prop_assert_eq!(&a, &att);
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.7 - 1.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv_transpose(&x, &mut y1);
        a.transpose().spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// Matrix Market round trips are exact.
    #[test]
    fn matrix_market_roundtrip((n, entries) in matrix_strategy(16)) {
        let a = Coo::from_triplets(n, n, entries).unwrap().to_csr();
        let mut buf = Vec::new();
        write_csr(&a, &mut buf).unwrap();
        let back = read_coo(buf.as_slice()).unwrap().to_csr();
        prop_assert_eq!(a, back);
    }

    /// Blocking partitions: blocked + residual non-zeros equal the input,
    /// and the blocked SpMV matches CSR.
    #[test]
    fn blocking_partitions_and_preserves_spmv((n, entries) in matrix_strategy(24)) {
        let a = Coo::from_triplets(n, n, entries).unwrap().to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        prop_assert_eq!(blocked.nnz(), a.nnz());
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        blocked.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u - v).abs() <= 1e-9 * u.abs().max(1.0));
        }
    }

    /// The exponent window keeps a maximal subset within the spread and
    /// never loses elements.
    #[test]
    fn exponent_window_is_a_partition(values in prop::collection::vec(-1e30f64..1e30, 1..64)) {
        let (kept, evicted) = exponent_window_partition(&values, 64);
        prop_assert_eq!(kept.len() + evicted.len(), values.len());
        // Kept values must be alignable within the operand width.
        let kept_vals: Vec<f64> = kept.iter().map(|&i| values[i]).collect();
        prop_assert!(memsci_numeric::AlignedSlice::align(
            &kept_vals,
            memsci_numeric::align::MAX_MAGNITUDE_BITS
        )
        .is_ok());
        // No duplicated indices.
        let mut all: Vec<usize> = kept.iter().chain(&evicted).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), values.len());
    }

    /// Dense LU solves random well-conditioned systems to tight residual.
    #[test]
    fn dense_lu_solves_dominant_systems(
        n in 2usize..12,
        seed_vals in prop::collection::vec(-1.0f64..1.0, 144),
    ) {
        let mut m = DenseMatrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = seed_vals[(r * n + c) % seed_vals.len()];
                    *m.get_mut(r, c) = v;
                    row_sum += v.abs();
                }
            }
            *m.get_mut(r, r) = row_sum + 1.0;
        }
        let want: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
        let mut b = vec![0.0; n];
        m.matvec(&want, &mut b);
        let x = m.solve(&b).unwrap();
        for (xi, wi) in x.iter().zip(&want) {
            prop_assert!((xi - wi).abs() < 1e-8);
        }
    }
}

/// Explicit mirrors of cases recorded in `prop.proptest-regressions`,
/// so they run on every `cargo test` regardless of the property-testing
/// backend in use.
mod regressions {
    use memsci_sparse::Coo;

    /// The shrunk case from
    /// `cc 26e2b3553f27d0de57daa9981fc0fc34648d2d41d1a43221e6fa236c76e9a51c`:
    /// duplicate runs dominated by explicit zeros, with one cell whose
    /// duplicates are all zero.
    #[test]
    fn compression_matches_dense_on_zero_heavy_duplicates() {
        let n = 10;
        let entries: Vec<(usize, usize, f64)> = vec![
            (4, 6, -26.771286392229957),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (5, 0, 0.0),
            (5, 0, 0.0),
            (5, 0, 0.0),
            (0, 0, 0.0),
            (4, 6, 0.0),
            (5, 0, 0.0),
            (5, 0, 0.0),
            (0, 0, 0.0),
            (4, 6, 0.0),
            (5, 0, 0.0),
            (4, 6, -49.970188054677955),
            (0, 0, 0.0),
            (5, 0, 0.0),
            (4, 6, -11.88362804010155),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (4, 6, 0.0),
            (5, 0, 0.0),
            (0, 0, 0.0),
            (4, 6, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 1, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
            (0, 0, 0.0),
        ];
        assert_csr_matches_dense(n, &entries);
    }

    /// Signed zeros: a lone `-0.0`, a run of `-0.0`s, and a nonzero run
    /// cancelling to exact zero must all compress to what a dense
    /// accumulator (initialised to `+0.0`) reports — bit for bit.
    #[test]
    fn compression_normalises_signed_zeros() {
        let cases: &[&[(usize, usize, f64)]] = &[
            &[(0, 0, -0.0)],
            &[(0, 0, -0.0), (0, 0, -0.0)],
            &[(1, 1, 1.0), (1, 1, -1.0)],
            &[(2, 0, -0.0), (2, 0, 0.0), (2, 0, -0.0)],
            &[(1, 2, 5.5), (1, 2, -5.5), (1, 2, -0.0)],
        ];
        for entries in cases {
            assert_csr_matches_dense(3, entries);
        }
        // All-cancelling cells are dropped from the structure entirely.
        let coo = Coo::from_triplets(3, 3, [(0, 0, -0.0), (1, 1, 2.0), (1, 1, -2.0)]).unwrap();
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    fn assert_csr_matches_dense(n: usize, entries: &[(usize, usize, f64)]) {
        let csr = Coo::from_triplets(n, n, entries.iter().copied())
            .unwrap()
            .to_csr();
        let mut sorted = entries.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut dense = vec![0.0f64; n * n];
        for &(r, c, v) in &sorted {
            dense[r * n + c] += v;
        }
        for r in 0..n {
            for c in 0..n {
                assert_eq!(
                    csr.get(r, c).to_bits(),
                    dense[r * n + c].to_bits(),
                    "({r}, {c}): {} vs {}",
                    csr.get(r, c),
                    dense[r * n + c]
                );
            }
        }
    }
}
