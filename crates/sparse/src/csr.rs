//! Compressed sparse row matrices and reference kernels.
//!
//! CSR is the compute format: the GPU baseline model, the local
//! processors, and all reference SpMV kernels operate on it (paper §VI-A1
//! stores unblocked elements in CSR for the bank processor).

use crate::coo::Coo;

/// A sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use memsci_sparse::{Coo, Csr};
///
/// let coo = Coo::from_triplets(2, 2, [(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]).unwrap();
/// let a: Csr = coo.to_csr();
/// let mut y = vec![0.0; 2];
/// a.spmv(&[1.0, 2.0], &mut y);
/// assert_eq!(y, vec![4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts are inconsistent: `row_ptr` must have
    /// `rows + 1` monotonically non-decreasing entries ending at the
    /// common length of `col_idx` and `values`, with all column indices
    /// in range and sorted within each row.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/value length mismatch");
        assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len(), "row_ptr end");
        for r in 0..rows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr monotonicity");
            let cols_r = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols_r.windows(2) {
                assert!(w[0] < w[1], "columns sorted and unique within a row");
            }
            if let Some(&c) = cols_r.last() {
                assert!((c as usize) < cols, "column index in range");
            }
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An empty matrix with the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Matrix dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that are non-zero.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The `(column indices, values)` of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Value at `(r, c)`, or `0.0` when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// `y += A·x` (accumulating variant used for residual elements).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr += acc;
        }
    }

    /// `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn spmv_transpose(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "x length");
        assert_eq!(y.len(), self.cols, "y length");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += v * xr;
            }
        }
    }

    /// The main diagonal (zeros where unstored).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr {
        self.to_coo().transpose().to_csr()
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> Coo {
        Coo::from_triplets(self.rows, self.cols, self.iter()).expect("indices in range")
    }

    /// Checks numeric symmetry within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
    }

    /// Structural bandwidth: the maximum of `|r - c|` over stored
    /// entries.
    pub fn bandwidth(&self) -> usize {
        self.iter()
            .map(|(r, c, _)| r.abs_diff(c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [ 2 1 0 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Coo::from_triplets(
            3,
            3,
            [
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let mut y = vec![0.0; 3];
        a.spmv(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![4.0, 6.0, 19.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let a = sample();
        let mut y = vec![1.0; 3];
        a.spmv_add(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 20.0]);
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let a = sample();
        let x = [1.0, -2.0, 0.5];
        let mut y1 = vec![0.0; 3];
        a.spmv_transpose(&x, &mut y1);
        let mut y2 = vec![0.0; 3];
        a.transpose().spmv(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let a = sample();
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn identity_behaves() {
        let i = Csr::identity(4);
        let mut y = vec![0.0; 4];
        i.spmv(&[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(i.is_symmetric(0.0));
        assert_eq!(i.bandwidth(), 0);
    }

    #[test]
    fn symmetry_check() {
        let a = sample();
        assert!(!a.is_symmetric(1e-12));
        let mut coo = a.to_coo();
        coo.symmetrize();
        // Doubling off-diagonals both ways yields a symmetric matrix.
        assert!(coo.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn bandwidth_and_density() {
        let a = sample();
        assert_eq!(a.bandwidth(), 2);
        assert!((a.density() - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "columns sorted")]
    fn from_raw_parts_validates() {
        Csr::from_raw_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    fn empty_matrix() {
        let e = Csr::empty(2, 2);
        assert_eq!(e.nnz(), 0);
        let mut y = vec![9.0; 2];
        e.spmv(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
