//! Matrix statistics used throughout the evaluation.
//!
//! Table II reports rows, non-zeros, and non-zeros per matrix row for
//! each evaluated matrix; §IV-B depends on the exponent range of the
//! values, and §II-A on the density of the iterated vectors.

use memsci_numeric::FloatParts;

use crate::csr::Csr;

/// Summary statistics for a sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored non-zeros.
    pub nnz: usize,
    /// Average non-zeros per matrix row.
    pub nnz_per_row: f64,
    /// Fraction of cells that are non-zero.
    pub density: f64,
    /// Maximum `|row - col|` over stored entries.
    pub bandwidth: usize,
    /// Spread between the largest and smallest binary exponent of the
    /// non-zero values (`floor(log2 |v|)` range).
    pub exponent_range: i32,
    /// Whether the matrix is numerically symmetric (tolerance 0).
    pub symmetric: bool,
}

impl MatrixStats {
    /// Computes statistics for a matrix.
    ///
    /// Non-finite values are ignored for the exponent range (the
    /// accelerator rejects them earlier in the pipeline).
    ///
    /// # Examples
    ///
    /// ```
    /// use memsci_sparse::{Coo, stats::MatrixStats};
    ///
    /// let m = Coo::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, 4.0)]).unwrap().to_csr();
    /// let s = MatrixStats::compute(&m);
    /// assert_eq!(s.nnz, 2);
    /// assert_eq!(s.exponent_range, 2); // log2 range between 1.0 and 4.0
    /// ```
    pub fn compute(matrix: &Csr) -> Self {
        let (rows, cols) = matrix.shape();
        let nnz = matrix.nnz();
        let mut min_exp = i32::MAX;
        let mut max_exp = i32::MIN;
        for (_, _, v) in matrix.iter() {
            if let Ok(p) = FloatParts::decompose(v) {
                if let Some(top) = p.top_exponent() {
                    min_exp = min_exp.min(top);
                    max_exp = max_exp.max(top);
                }
            }
        }
        let exponent_range = if min_exp == i32::MAX {
            0
        } else {
            max_exp - min_exp
        };
        MatrixStats {
            rows,
            cols,
            nnz,
            nnz_per_row: if rows == 0 {
                0.0
            } else {
                nnz as f64 / rows as f64
            },
            density: matrix.density(),
            bandwidth: matrix.bandwidth(),
            exponent_range,
            symmetric: matrix.is_symmetric(0.0),
        }
    }
}

/// Fraction of non-zero entries in a dense vector.
///
/// The paper observes vector densities of 30–100% in iterative solvers
/// (§II-A), which rules out accelerators that rely on sparse vectors.
///
/// # Examples
///
/// ```
/// use memsci_sparse::stats::vector_density;
///
/// assert_eq!(vector_density(&[1.0, 0.0, 2.0, 0.0]), 0.5);
/// ```
pub fn vector_density(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().filter(|&&v| v != 0.0).count() as f64 / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    #[test]
    fn stats_of_simple_matrix() {
        let m = Coo::from_triplets(
            4,
            4,
            [
                (0, 0, 1.0),
                (1, 1, -2.0),
                (2, 2, 0.5),
                (3, 3, 8.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap()
        .to_csr();
        let s = MatrixStats::compute(&m);
        assert_eq!(s.rows, 4);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.bandwidth, 3);
        assert!((s.nnz_per_row - 1.25).abs() < 1e-12);
        // Exponents: 0, 1, -1, 3 -> range 4.
        assert_eq!(s.exponent_range, 4);
        assert!(!s.symmetric);
    }

    #[test]
    fn empty_matrix_stats() {
        let s = MatrixStats::compute(&Csr::empty(3, 3));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.exponent_range, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn vector_density_bounds() {
        assert_eq!(vector_density(&[]), 0.0);
        assert_eq!(vector_density(&[0.0; 4]), 0.0);
        assert_eq!(vector_density(&[1.0; 4]), 1.0);
    }

    #[test]
    fn symmetric_detection() {
        let m = Coo::from_triplets(2, 2, [(0, 1, 3.0), (1, 0, 3.0), (0, 0, 1.0)])
            .unwrap()
            .to_csr();
        assert!(MatrixStats::compute(&m).symmetric);
    }
}
