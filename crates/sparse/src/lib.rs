//! Sparse-matrix substrate for the memristive accelerator reproduction.
//!
//! This crate provides everything the accelerator and its evaluation
//! need on the matrix side of *Enabling Scientific Computing on
//! Memristive Accelerators* (ISCA 2018):
//!
//! * [`Coo`]/[`Csr`] — assembly and compute formats with reference
//!   kernels (SpMV, transpose SpMV);
//! * [`matrix_market`] — Matrix Market I/O for real SuiteSparse files;
//! * [`generate`] — synthetic structure generators (stencils, bands,
//!   clustered blocks, power-law circuits, uniform scatter);
//! * [`suite`] — deterministic replicas of the paper's 20 evaluated
//!   matrices (Table II);
//! * [`blocking`] — the heterogeneous blocking preprocessor (§V-B1)
//!   that maps dense sub-blocks onto 512/256/128/64 crossbars;
//! * [`stats`] — the matrix statistics the evaluation reports.
//!
//! # Examples
//!
//! ```
//! use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
//! use memsci_sparse::generate::poisson2d;
//!
//! let a = poisson2d(32, 32);
//! let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
//! // Blocking partitions the matrix: nothing is lost or duplicated.
//! assert_eq!(blocked.nnz(), a.nnz());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocking;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod generate;
pub mod matrix_market;
pub mod stats;
pub mod suite;

pub use blocking::{Block, BlockedMatrix, BlockingConfig, BlockingStats};
pub use coo::Coo;
pub use csr::Csr;
pub use dense::DenseMatrix;
pub use stats::MatrixStats;
pub use suite::SuiteEntry;
