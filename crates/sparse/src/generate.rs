//! Synthetic sparse-matrix generators.
//!
//! The paper's evaluation uses 20 SuiteSparse matrices whose relevant
//! properties are their dimensions, non-zero counts, sparsity
//! *structure* (which determines blocking efficiency, §V-B) and value
//! dynamic range (which determines padding and vector slice counts,
//! §IV-B). These generators produce matrices spanning the same structure
//! classes: stencil meshes, dense bands, clustered FEM blocks, power-law
//! circuit graphs, and structureless uniform scatter.

use rand::Rng;

use crate::coo::Coo;
use crate::csr::Csr;

/// Log-uniform value distribution with a bounded binary-exponent spread,
/// modelling the exponent range locality of physical systems (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueModel {
    /// Center of the exponent distribution (`floor(log2 |v|)` average).
    pub center_exponent: i32,
    /// Total spread of binary exponents around the center.
    pub exponent_spread: i32,
    /// Probability that a sampled value is negative.
    pub negative_fraction: f64,
}

impl Default for ValueModel {
    fn default() -> Self {
        ValueModel {
            center_exponent: 0,
            exponent_spread: 12,
            negative_fraction: 0.5,
        }
    }
}

impl ValueModel {
    /// A model with the given exponent spread and default sign balance.
    pub fn with_spread(exponent_spread: i32) -> Self {
        ValueModel {
            exponent_spread,
            ..Default::default()
        }
    }

    /// Samples one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let half = self.exponent_spread / 2;
        let e = if self.exponent_spread > 0 {
            rng.gen_range(-half..=self.exponent_spread - half)
        } else {
            0
        };
        let mantissa = 1.0 + rng.gen::<f64>(); // in [1, 2)
        let sign = if rng.gen::<f64>() < self.negative_fraction {
            -1.0
        } else {
            1.0
        };
        sign * mantissa * (2.0f64).powi(self.center_exponent + e)
    }
}

/// Five-point 2-D Poisson stencil on an `nx × ny` grid (symmetric
/// positive definite; the canonical PDE discretization of §II-B).
///
/// # Examples
///
/// ```
/// use memsci_sparse::generate::poisson2d;
///
/// let a = poisson2d(4, 4);
/// assert_eq!(a.rows(), 16);
/// assert!(a.is_symmetric(0.0));
/// ```
pub fn poisson2d(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let idx = |i: usize, j: usize| i * ny + j;
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            coo.push(r, r, 4.0).unwrap();
            if i > 0 {
                coo.push(r, idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < nx {
                coo.push(r, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                coo.push(r, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < ny {
                coo.push(r, idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    coo.to_csr()
}

/// Seven-point 3-D Poisson stencil on an `nx × ny × nz` grid (SPD).
pub fn poisson3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                coo.push(r, r, 6.0).unwrap();
                let mut nb = |rr: usize| coo_push(&mut coo, r, rr);
                if i > 0 {
                    nb(idx(i - 1, j, k));
                }
                if i + 1 < nx {
                    nb(idx(i + 1, j, k));
                }
                if j > 0 {
                    nb(idx(i, j - 1, k));
                }
                if j + 1 < ny {
                    nb(idx(i, j + 1, k));
                }
                if k > 0 {
                    nb(idx(i, j, k - 1));
                }
                if k + 1 < nz {
                    nb(idx(i, j, k + 1));
                }
            }
        }
    }
    coo.to_csr()
}

fn coo_push(coo: &mut Coo, r: usize, c: usize) {
    coo.push(r, c, -1.0).unwrap();
}

/// Random entries confined to a diagonal band of half-width `half_bw`,
/// filled with probability `fill` (structural model for FEM matrices
/// such as nasasrb, Pres_Poisson, torso2).
pub fn banded<R: Rng + ?Sized>(
    n: usize,
    half_bw: usize,
    fill: f64,
    values: ValueModel,
    rng: &mut R,
) -> Coo {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(half_bw);
        let hi = (r + half_bw + 1).min(n);
        for c in lo..hi {
            if rng.gen::<f64>() < fill {
                coo.push(r, c, values.sample(rng)).unwrap();
            }
        }
    }
    coo
}

/// Dense square clusters along the diagonal plus uniform background
/// scatter; `cluster` is the cluster edge, `cluster_fill` the in-cluster
/// density, `scatter_per_row` the expected random entries per row
/// (structural model for partially blockable matrices such as
/// 2cubes_sphere or finan512).
pub fn block_clustered<R: Rng + ?Sized>(
    n: usize,
    cluster: usize,
    cluster_fill: f64,
    scatter_per_row: f64,
    values: ValueModel,
    rng: &mut R,
) -> Coo {
    let mut coo = Coo::new(n, n);
    let clusters = n.div_ceil(cluster);
    for b in 0..clusters {
        let r0 = b * cluster;
        let size = cluster.min(n - r0);
        for dr in 0..size {
            for dc in 0..size {
                if rng.gen::<f64>() < cluster_fill {
                    coo.push(r0 + dr, r0 + dc, values.sample(rng)).unwrap();
                }
            }
        }
    }
    let scatter_total = (scatter_per_row * n as f64) as usize;
    for _ in 0..scatter_total {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        coo.push(r, c, values.sample(rng)).unwrap();
    }
    coo
}

/// Like [`block_clustered`], but also sprinkles dense off-diagonal
/// clusters coupling random block pairs (structural model for quantum
/// chemistry matrices such as GaAsH6 and Si34H36).
#[allow(clippy::too_many_arguments)]
pub fn block_coupled<R: Rng + ?Sized>(
    n: usize,
    cluster: usize,
    cluster_fill: f64,
    couplings: usize,
    coupling_fill: f64,
    scatter_per_row: f64,
    values: ValueModel,
    rng: &mut R,
) -> Coo {
    let mut coo = block_clustered(n, cluster, cluster_fill, scatter_per_row, values, rng);
    let clusters = n / cluster.max(1);
    if clusters >= 2 {
        for _ in 0..couplings {
            let bi = rng.gen_range(0..clusters);
            let bj = rng.gen_range(0..clusters);
            if bi == bj {
                continue;
            }
            let (r0, c0) = (bi * cluster, bj * cluster);
            for dr in 0..cluster.min(n - r0) {
                for dc in 0..cluster.min(n - c0) {
                    if rng.gen::<f64>() < coupling_fill {
                        coo.push(r0 + dr, c0 + dc, values.sample(rng)).unwrap();
                    }
                }
            }
        }
    }
    coo
}

/// Structureless uniform scatter: `nnz` entries at uniformly random
/// positions (structural model for the difficult matrices ns3Da and
/// thermomech_TC, §VIII-F).
pub fn uniform_random<R: Rng + ?Sized>(
    n: usize,
    nnz: usize,
    values: ValueModel,
    rng: &mut R,
) -> Coo {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        // Guarantee a diagonal so solvers remain well-posed.
        coo.push(r, r, values.sample(rng).abs() + 1.0).unwrap();
    }
    for _ in 0..nnz.saturating_sub(n) {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        coo.push(r, c, values.sample(rng)).unwrap();
    }
    coo
}

/// Power-law degree graph: most rows have `base_deg` neighbours near the
/// diagonal, a `hub_fraction` of columns attract long-range connections
/// (structural model for circuit matrices such as ASIC_100K, bcircuit,
/// G2_circuit).
pub fn power_law<R: Rng + ?Sized>(
    n: usize,
    base_deg: usize,
    hub_fraction: f64,
    values: ValueModel,
    rng: &mut R,
) -> Coo {
    let mut coo = Coo::new(n, n);
    let hubs = ((n as f64 * hub_fraction) as usize).max(1);
    for r in 0..n {
        coo.push(r, r, values.sample(rng)).unwrap();
        for _ in 0..base_deg {
            // Mostly local connections (narrow geometric spread), with a
            // minority attaching to global hub columns.
            if rng.gen::<f64>() < 0.85 {
                let off = rng.gen_range(1..=32.min(n - 1));
                let c = if rng.gen() {
                    (r + off) % n
                } else {
                    (r + n - off) % n
                };
                coo.push(r, c, values.sample(rng)).unwrap();
            } else {
                let c = rng.gen_range(0..hubs);
                coo.push(r, c, values.sample(rng)).unwrap();
            }
        }
    }
    coo
}

/// The Trefethen structure: primes on the diagonal and ones at offsets
/// `±2^k` (the real Trefethen_20000 matrix from the collection).
pub fn trefethen(n: usize) -> Csr {
    let mut coo = Coo::new(n, n);
    let primes = primes_first(n);
    for (r, &prime) in primes.iter().enumerate() {
        coo.push(r, r, prime as f64).unwrap();
        let mut k = 1usize;
        while k < n {
            if r >= k {
                coo.push(r, r - k, 1.0).unwrap();
            }
            if r + k < n {
                coo.push(r, r + k, 1.0).unwrap();
            }
            k *= 2;
        }
    }
    coo.to_csr()
}

fn primes_first(count: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(count);
    let mut candidate = 2u64;
    while primes.len() < count {
        if primes
            .iter()
            .take_while(|&&p| p * p <= candidate)
            .all(|&p| !candidate.is_multiple_of(p))
        {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// Makes a matrix symmetric by averaging with its transpose.
pub fn symmetrize(coo: &Coo) -> Coo {
    let mut out = Coo::new(coo.shape().0, coo.shape().1);
    for (r, c, v) in coo.iter() {
        out.push(r, c, v / 2.0).unwrap();
        out.push(c, r, v / 2.0).unwrap();
    }
    out
}

/// Rescales the diagonal so each row is strictly diagonally dominant:
/// `|a_rr| = boost × Σ_{c≠r} |a_rc|` (plus one). For a symmetric matrix
/// with positive diagonal this guarantees positive definiteness
/// (Gershgorin), keeping the synthetic solves well-conditioned.
pub fn make_diagonally_dominant(coo: &Coo, boost: f64) -> Csr {
    let n = coo.shape().0;
    let mut row_abs = vec![0.0f64; n];
    for (r, c, v) in coo.iter() {
        if r != c {
            row_abs[r] += v.abs();
        }
    }
    let mut out = Coo::new(n, coo.shape().1);
    for (r, c, v) in coo.iter() {
        if r != c {
            out.push(r, c, v).unwrap();
        }
    }
    for (r, &abs_sum) in row_abs.iter().enumerate() {
        out.push(r, r, boost * abs_sum + 1.0).unwrap();
    }
    out.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson2d_structure() {
        let a = poisson2d(3, 3);
        assert_eq!(a.rows(), 9);
        assert_eq!(a.get(0, 0), 4.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 3), -1.0);
        assert_eq!(a.get(0, 8), 0.0);
        assert!(a.is_symmetric(0.0));
        // Interior point has 4 neighbours.
        assert_eq!(a.row(4).0.len(), 5);
    }

    #[test]
    fn poisson3d_structure() {
        let a = poisson3d(3, 3, 3);
        assert_eq!(a.rows(), 27);
        assert!(a.is_symmetric(0.0));
        // Center point (1,1,1) has 6 neighbours.
        let center = (3 + 1) * 3 + 1;
        assert_eq!(a.row(center).0.len(), 7);
    }

    #[test]
    fn value_model_respects_spread() {
        let vm = ValueModel {
            center_exponent: 0,
            exponent_spread: 8,
            negative_fraction: 0.5,
        };
        let mut r = rng();
        let mut saw_negative = false;
        for _ in 0..500 {
            let v = vm.sample(&mut r);
            let e = v.abs().log2();
            assert!((-5.0..=6.0).contains(&e), "exponent {e} out of range");
            saw_negative |= v < 0.0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded(100, 5, 0.8, ValueModel::default(), &mut rng());
        for (r, c, _) in m.iter() {
            assert!(r.abs_diff(c) <= 5);
        }
        assert!(m.nnz() > 100);
    }

    #[test]
    fn block_clustered_density() {
        let m = block_clustered(128, 32, 0.5, 1.0, ValueModel::default(), &mut rng());
        let csr = m.to_csr();
        // Expect roughly 128/32 × 32² × 0.5 + 128 entries.
        assert!(csr.nnz() > 2000);
    }

    #[test]
    fn uniform_random_has_diagonal() {
        let m = uniform_random(64, 500, ValueModel::default(), &mut rng()).to_csr();
        for r in 0..64 {
            assert!(m.get(r, r) != 0.0);
        }
    }

    #[test]
    fn trefethen_structure() {
        let a = trefethen(16);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(4, 4), 11.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(0, 4), 1.0);
        assert_eq!(a.get(0, 8), 1.0);
        assert_eq!(a.get(0, 3), 0.0);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn diagonally_dominant_is_spd_ready() {
        let base = banded(50, 3, 0.6, ValueModel::default(), &mut rng());
        let sym = symmetrize(&base);
        let a = make_diagonally_dominant(&sym, 1.5);
        assert!(a.is_symmetric(1e-9));
        for r in 0..50 {
            let (cols, vals) = a.row(r);
            let mut off = 0.0;
            let mut diag = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {r} not dominant: {diag} vs {off}");
        }
    }

    #[test]
    fn power_law_has_hubs() {
        let m = power_law(1000, 5, 0.01, ValueModel::default(), &mut rng()).to_csr();
        // Hub columns (first 10) should have far more entries than
        // average columns.
        let t = m.transpose();
        let hub_deg: usize = (0..10).map(|c| t.row(c).0.len()).sum();
        let mid_deg: usize = (500..510).map(|c| t.row(c).0.len()).sum();
        assert!(hub_deg > 3 * mid_deg, "hubs {hub_deg} vs mid {mid_deg}");
    }
}

/// Generates a spatially smooth per-index binary-exponent field: a
/// bounded random walk spanning `spread` binary orders of magnitude
/// overall while changing slowly between neighbouring indices.
///
/// This is the structure behind the paper's *exponent range locality*
/// argument (§IV-B): physical models have large global dynamic ranges,
/// but neighbouring mesh points — and therefore the values inside one
/// matrix block — stay within a narrow window.
pub fn smooth_exponent_field<R: Rng + ?Sized>(
    n: usize,
    spread: i32,
    correlation_length: usize,
    rng: &mut R,
) -> Vec<i32> {
    let half = spread / 2;
    // A random walk traverses ~step·sqrt(m) levels over m indices, so
    // covering `spread` within one correlation length needs
    // step = spread / sqrt(correlation_length).
    let step = f64::from(spread) / (correlation_length.max(1) as f64).sqrt();
    let mut field = Vec::with_capacity(n);
    let mut level = 0.0f64;
    for _ in 0..n {
        level += (rng.gen::<f64>() - 0.5) * 2.0 * step;
        level = level.clamp(f64::from(-half), f64::from(half));
        field.push(level.round() as i32);
    }
    field
}

/// Rescales a matrix's entries by a per-index exponent field:
/// `a_rc ← a_rc · 2^((field[r] + field[c]) / 2)`, preserving symmetry.
///
/// # Panics
///
/// Panics if the field length differs from the matrix dimension.
pub fn apply_exponent_field(coo: &Coo, field: &[i32]) -> Coo {
    let (rows, cols) = coo.shape();
    assert_eq!(field.len(), rows.max(cols), "field length");
    let mut out = Coo::new(rows, cols);
    for (r, c, v) in coo.iter() {
        let e = (field[r] + field[c]) / 2;
        out.push(r, c, v * (2.0f64).powi(e)).unwrap();
    }
    out
}

#[cfg(test)]
mod locality_tests {
    use super::*;
    use crate::blocking::{BlockedMatrix, BlockingConfig};
    use crate::stats::MatrixStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The §IV-B claim made concrete: a matrix whose global dynamic
    /// range far exceeds the 64-bit pad window still blocks without
    /// evictions when the exponents vary smoothly, while the same
    /// pattern with i.i.d. exponents of the same range loses many
    /// entries.
    #[test]
    fn exponent_locality_enables_blocking() {
        let n = 1024;
        // Seed chosen so the bounded walk actually spans more than the
        // 64-bit pad window for this generator's stream.
        let mut rng = StdRng::seed_from_u64(24);
        let pattern = banded(n, 12, 0.9, ValueModel::with_spread(0), &mut rng);

        // Smooth field: global range beyond the 64-bit pad window,
        // neighbours within a few bits.
        let field = smooth_exponent_field(n, 120, 2048, &mut rng);
        let smooth = apply_exponent_field(&pattern, &field).to_csr();
        let s = MatrixStats::compute(&smooth);
        assert!(s.exponent_range > 64, "global range {}", s.exponent_range);
        let blocked = BlockedMatrix::block(&smooth, &BlockingConfig::default());
        assert!(
            blocked.stats.efficiency() > 0.8,
            "smooth efficiency {}",
            blocked.stats.efficiency()
        );
        let evict_smooth = blocked.stats.nnz_evicted_range;

        // Same pattern, i.i.d. exponents of the same range.
        let iid_vm = ValueModel::with_spread(120);
        let iid = banded(n, 12, 0.9, iid_vm, &mut rng).to_csr();
        let blocked_iid = BlockedMatrix::block(&iid, &BlockingConfig::default());
        assert!(
            blocked_iid.stats.nnz_evicted_range > 10 * evict_smooth.max(1),
            "iid evictions {} vs smooth {}",
            blocked_iid.stats.nnz_evicted_range,
            evict_smooth
        );
    }

    #[test]
    fn smooth_field_is_bounded_and_slow() {
        let mut rng = StdRng::seed_from_u64(3);
        let field = smooth_exponent_field(5000, 80, 1000, &mut rng);
        assert!(field.iter().all(|&e| (-40..=40).contains(&e)));
        // Neighbouring indices move by at most a few bits.
        for w in field.windows(2) {
            assert!((w[0] - w[1]).abs() <= 4, "step {:?}", w);
        }
        // The walk actually explores a wide range.
        let min = field.iter().min().unwrap();
        let max = field.iter().max().unwrap();
        assert!(max - min > 30, "range {}", max - min);
    }
}
