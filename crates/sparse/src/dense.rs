//! Dense matrices and direct solvers (LU, Cholesky).
//!
//! §II-B contrasts direct methods — factorizations such as LU or
//! Cholesky, which suffer fill-in on sparse systems — with the iterative
//! Krylov methods the accelerator targets. This module provides both
//! factorizations on dense storage: they serve as ground-truth solvers
//! for validating the iterative stack, and let the benches quantify the
//! fill-in argument (a sparse matrix densifies under factorization).

use core::fmt;

use crate::csr::Csr;

/// Error from a failed factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// A pivot vanished: the matrix is singular (to working precision).
    Singular {
        /// Pivot index where elimination broke down.
        pivot: usize,
    },
    /// Cholesky encountered a non-positive diagonal: the matrix is not
    /// positive definite.
    NotPositiveDefinite {
        /// Offending diagonal index.
        index: usize,
    },
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            FactorError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at diagonal {index}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use memsci_sparse::dense::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 4.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = DenseMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "inconsistent row lengths");
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    /// Densifies a sparse matrix.
    pub fn from_csr(a: &Csr) -> Self {
        let (rows, cols) = a.shape();
        let mut m = DenseMatrix::zeros(rows, cols);
        for (r, c, v) in a.iter() {
            m.data[r * cols + c] = v;
        }
        m
    }

    /// Dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Number of entries with magnitude above `tol` (for fill-in
    /// measurements).
    pub fn nnz_above(&self, tol: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > tol).count()
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.data[r * self.cols..(r + 1) * self.cols]
                .iter()
                .zip(x)
                .map(|(a, b)| a * b)
                .sum();
        }
    }

    /// LU factorization with partial pivoting, in place; returns the
    /// pivot permutation.
    ///
    /// # Errors
    ///
    /// [`FactorError::Singular`] when a pivot column vanishes.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn lu_factor(mut self) -> Result<LuFactors, FactorError> {
        assert_eq!(self.rows, self.cols, "LU needs a square matrix");
        let n = self.rows;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting.
            let (p, max) = (k..n)
                .map(|r| (r, self.get(r, k).abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            if max == 0.0 {
                return Err(FactorError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                for c in 0..n {
                    let (i, j) = (p * n + c, k * n + c);
                    self.data.swap(i, j);
                }
            }
            let pivot = self.get(k, k);
            for r in k + 1..n {
                let factor = self.get(r, k) / pivot;
                *self.get_mut(r, k) = factor;
                for c in k + 1..n {
                    let upper = self.get(k, c);
                    *self.get_mut(r, c) -= factor * upper;
                }
            }
        }
        Ok(LuFactors { lu: self, perm })
    }

    /// Cholesky factorization `A = L·Lᵀ` for symmetric positive definite
    /// matrices; returns the lower factor.
    ///
    /// # Errors
    ///
    /// [`FactorError::NotPositiveDefinite`] when a diagonal pivot is not
    /// strictly positive.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn cholesky(&self) -> Result<DenseMatrix, FactorError> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                d -= l.get(j, k) * l.get(j, k);
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(FactorError::NotPositiveDefinite { index: j });
            }
            let dj = d.sqrt();
            *l.get_mut(j, j) = dj;
            for i in j + 1..n {
                let mut v = self.get(i, j);
                for k in 0..j {
                    v -= l.get(i, k) * l.get(j, k);
                }
                *l.get_mut(i, j) = v / dj;
            }
        }
        Ok(l)
    }

    /// Solves `A·x = b` by LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates [`FactorError::Singular`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, FactorError> {
        self.clone().lu_factor().map(|f| f.solve(b))
    }
}

/// An LU factorization with its pivot permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Solves `A·x = b` by forward/backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.perm.len();
        assert_eq!(b.len(), n, "b length");
        // Forward: L·y = P·b (unit lower triangle).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            for c in 0..r {
                x[r] -= self.lu.get(r, c) * x[c];
            }
        }
        // Backward: U·x = y.
        for r in (0..n).rev() {
            for c in r + 1..n {
                x[r] -= self.lu.get(r, c) * x[c];
            }
            x[r] /= self.lu.get(r, r);
        }
        x
    }

    /// Fill-in of the combined factors: non-zeros above `tol` relative
    /// to the original non-zero count (§II-B's argument against direct
    /// methods on sparse systems).
    pub fn fill_in_ratio(&self, original_nnz: usize, tol: f64) -> f64 {
        self.lu.nnz_above(tol) as f64 / original_nnz.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::poisson2d;

    #[test]
    fn lu_solves_random_system() {
        let a = DenseMatrix::from_rows(&[&[4.0, -2.0, 1.0], &[3.0, 6.0, -4.0], &[2.0, 1.0, 8.0]]);
        let want = [1.0, -2.0, 3.0];
        let mut b = vec![0.0; 3];
        a.matvec(&want, &mut b);
        let x = a.solve(&b).unwrap();
        for (xi, wi) in x.iter().zip(want) {
            assert!((xi - wi).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_pivots_through_zero_diagonal() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(FactorError::Singular { .. })
        ));
    }

    #[test]
    fn cholesky_matches_lu_on_spd() {
        let a = poisson2d(4, 4);
        let dense = DenseMatrix::from_csr(&a);
        let l = dense.cholesky().unwrap();
        // Reconstruct A = L·Lᵀ.
        let n = a.rows();
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += l.get(i, k) * l.get(j, k);
                }
                assert!((v - dense.get(i, j)).abs() < 1e-10, "({i}, {j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(FactorError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn direct_solution_matches_cg() {
        let a = poisson2d(6, 6);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let dense = DenseMatrix::from_csr(&a);
        let x_direct = dense.solve(&b).unwrap();
        let mut p = crate::csr::Csr::identity(0); // placeholder unused
        let _ = &mut p;
        // CG via the solvers crate is tested against this oracle in the
        // workspace integration tests; here verify the residual.
        let mut r = vec![0.0; n];
        a.spmv(&x_direct, &mut r);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn factorization_fill_in_demonstrates_section2b() {
        // The Poisson matrix has ~5 nnz/row; its LU factors densify.
        let a = poisson2d(12, 12);
        let dense = DenseMatrix::from_csr(&a);
        let f = dense.lu_factor().unwrap();
        let ratio = f.fill_in_ratio(a.nnz(), 1e-14);
        assert!(ratio > 3.0, "fill-in ratio {ratio}");
        // A larger mesh fills in even more (fill-in grows with the
        // bandwidth of the elimination front).
        let a = poisson2d(16, 16);
        let ratio16 = DenseMatrix::from_csr(&a)
            .lu_factor()
            .unwrap()
            .fill_in_ratio(a.nnz(), 1e-14);
        assert!(ratio16 > ratio, "{ratio16} vs {ratio}");
    }

    #[test]
    fn matvec_matches_sparse() {
        let a = poisson2d(5, 5);
        let dense = DenseMatrix::from_csr(&a);
        let x: Vec<f64> = (0..25).map(|i| i as f64 * 0.3).collect();
        let mut y1 = vec![0.0; 25];
        let mut y2 = vec![0.0; 25];
        dense.matvec(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
