//! Synthetic replicas of the paper's 20 SuiteSparse matrices (Table II).
//!
//! The real matrices cannot be bundled, so each entry reproduces the
//! properties the evaluation depends on: dimensions, non-zero count,
//! non-zeros per row, SPD-ness, value dynamic range, and — through the
//! structural recipe — the approximate blocking efficiency of Table II.
//! Replicas are deterministic (seeded per name) and can be generated at
//! reduced scale for tests.
//!
//! A real SuiteSparse download in Matrix Market format can be swapped in
//! through [`crate::matrix_market::read_coo`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::generate::{self, ValueModel};

/// Structural recipe behind a replica.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Recipe {
    /// Alternating dense-banded row segments and scattered row segments.
    Mixed {
        /// Fraction of rows belonging to dense-banded segments.
        dense_fraction: f64,
        /// Non-zeros per row inside dense segments.
        dense_deg: f64,
        /// Non-zeros per row inside scattered segments.
        sparse_deg: f64,
        /// Fraction of scattered entries attached to hub columns.
        hub_fraction: f64,
    },
    /// Pure uniform scatter (the difficult matrices of §VIII-F).
    Uniform,
    /// The published Trefethen structure (primes + powers-of-two
    /// off-diagonals).
    Trefethen,
}

/// One matrix of the evaluation suite with its published Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteEntry {
    /// SuiteSparse name.
    pub name: &'static str,
    /// Problem domain reported by the collection.
    pub domain: &'static str,
    /// Rows (= columns; all evaluated matrices are square).
    pub rows: usize,
    /// Non-zeros reported in Table II.
    pub paper_nnz: usize,
    /// Non-zeros per row reported in Table II.
    pub paper_nnz_per_row: f64,
    /// Blocking efficiency reported in Table II (fraction).
    pub paper_blocked: f64,
    /// Whether the matrix is symmetric positive definite (solved with CG;
    /// the rest use BiCG-STAB).
    pub spd: bool,
    /// Binary-exponent spread of the values.
    pub exponent_spread: i32,
    /// Fraction of values with far-outlying exponents (drives the
    /// exponent-range evictions discussed for nasasrb in §VIII-B).
    pub outlier_fraction: f64,
    recipe: Recipe,
}

impl SuiteEntry {
    /// Generates the replica at full (paper) scale.
    pub fn generate(&self) -> Csr {
        self.generate_scaled(1.0)
    }

    /// Expected non-zeros per row at a given scale (uniform-scatter
    /// replicas shrink their degree with the matrix so per-tile counts
    /// stay scale-invariant).
    pub fn expected_nnz_per_row(&self, scale: f64) -> f64 {
        match self.recipe {
            Recipe::Uniform => (self.paper_nnz_per_row * scale.min(1.0)).max(3.0) + 1.0,
            _ => self.paper_nnz_per_row,
        }
    }

    /// Generates the replica with dimensions scaled by `scale`
    /// (clamped to at least 192 rows), preserving per-row densities.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn generate_scaled(&self, scale: f64) -> Csr {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let n = ((self.rows as f64 * scale) as usize).max(192);
        let mut rng = StdRng::seed_from_u64(seed_from_name(self.name));
        let vm = ValueModel::with_spread(self.exponent_spread);
        let coo = match self.recipe {
            Recipe::Trefethen => return generate::trefethen(n),
            Recipe::Uniform => {
                // Keep per-tile counts (which drive blocking decisions)
                // scale-invariant: a uniform matrix has s²·deg/n entries
                // per s×s tile, so the degree shrinks with the matrix.
                let deg = (self.paper_nnz_per_row * scale.min(1.0)).max(3.0);
                let nnz = (deg * n as f64) as usize;
                generate::uniform_random(n, nnz, vm, &mut rng)
            }
            Recipe::Mixed {
                dense_fraction,
                dense_deg,
                sparse_deg,
                hub_fraction,
            } => self.generate_mixed(
                n,
                dense_fraction,
                dense_deg,
                sparse_deg,
                hub_fraction,
                vm,
                &mut rng,
            ),
        };
        let coo = self.apply_outliers(coo, &mut rng);
        if self.spd {
            let sym = generate::symmetrize(&coo);
            generate::make_diagonally_dominant(&sym, 1.25)
        } else {
            generate::make_diagonally_dominant(&coo, 1.25)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_mixed(
        &self,
        n: usize,
        dense_fraction: f64,
        dense_deg: f64,
        sparse_deg: f64,
        hub_fraction: f64,
        vm: ValueModel,
        rng: &mut StdRng,
    ) -> Coo {
        // SPD replicas are symmetrized afterwards, which roughly grows
        // off-diagonal counts by the non-overlap fraction; compensate.
        let deg_scale = if self.spd { 0.62 } else { 1.0 };
        let dense_deg = dense_deg * deg_scale;
        let sparse_deg = sparse_deg * deg_scale;
        let mut coo = Coo::new(n, n);
        // Alternate segments of dense and sparse rows; fine-grained
        // interleaving mirrors how real matrices mix well-structured and
        // scattered rows across the whole index range.
        let segment = 256usize.min(n.max(1));
        let hubs = ((n as f64 * 0.002) as usize).max(1);
        // Dense rows draw their entries from a tile-aligned window
        // around the diagonal (FEM meshes couple element blocks, so the
        // coupled columns cluster in whole blocks rather than smearing
        // across tile edges).
        let window_tiles = ((dense_deg / (0.75 * 64.0)).ceil() as usize).max(1);
        let window = 64 * window_tiles;
        let mut dense_budget = 0.0f64;
        for seg_start in (0..n).step_by(segment) {
            let seg_end = (seg_start + segment).min(n);
            dense_budget += dense_fraction * (seg_end - seg_start) as f64;
            // Emit dense rows in 64-aligned runs so the block candidates
            // of §V-B1 see whole tiles (real FEM matrices have dense
            // runs far longer than one tile).
            let dense_rows = ((dense_budget as usize) / 64 * 64).min(seg_end - seg_start);
            dense_budget -= dense_rows as f64;
            let dense_until = (seg_start + dense_rows).min(seg_end);
            for r in seg_start..dense_until {
                // Dense row: entries confined to a tile-aligned window.
                let tile = r / 64;
                let start = (tile.saturating_sub((window_tiles - 1) / 2)) * 64;
                let lo = start.min(n.saturating_sub(window));
                let hi = (lo + window).min(n);
                for c in lo..hi {
                    if rng.gen::<f64>() < dense_deg / (hi - lo) as f64 {
                        coo.push(r, c, vm.sample(rng)).unwrap();
                    }
                }
            }
            for r in dense_until..seg_end {
                // Scattered row. Real FEM/circuit matrices keep even
                // their unblockable entries near the diagonal (mesh
                // locality), so most scattered columns are drawn from a
                // +-1024 neighbourhood; hubs and a small uniform tail
                // provide the long-range coupling.
                let deg = sparse_deg.floor() as usize
                    + usize::from(rng.gen::<f64>() < sparse_deg.fract());
                for _ in 0..deg {
                    let draw = rng.gen::<f64>();
                    let c = if draw < hub_fraction {
                        rng.gen_range(0..hubs)
                    } else if draw < hub_fraction + 0.95 * (1.0 - hub_fraction) {
                        let off = rng.gen_range(1..=1024.min(n.max(2) - 1));
                        if rng.gen() {
                            (r + off) % n
                        } else {
                            (r + n - off) % n
                        }
                    } else {
                        rng.gen_range(0..n)
                    };
                    coo.push(r, c, vm.sample(rng)).unwrap();
                }
            }
        }
        coo
    }

    fn apply_outliers(&self, coo: Coo, rng: &mut StdRng) -> Coo {
        if self.outlier_fraction <= 0.0 {
            return coo;
        }
        let (rows, cols) = coo.shape();
        let mut out = Coo::new(rows, cols);
        for (r, c, v) in coo.iter() {
            let v = if rng.gen::<f64>() < self.outlier_fraction {
                // Push the exponent far below the 64-bit pad window.
                // Down-scaling (rather than up) exercises the range
                // evictions of §V-B1 without wrecking the conditioning
                // of the synthetic system.
                v * (2.0f64).powi(-rng.gen_range(90i32..140))
            } else {
                v
            };
            out.push(r, c, v).unwrap();
        }
        out
    }
}

fn seed_from_name(name: &str) -> u64 {
    // FNV-1a, deterministic across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds a `Mixed` recipe from a Table II row: given the published
/// non-zeros per row and blocked fraction, dense segments carry
/// `dense_deg` per row and the scattered remainder is spread so the
/// totals match.
fn mixed(nnz_per_row: f64, blocked: f64, dense_deg: f64, hub_fraction: f64) -> Recipe {
    // Small overshoot: in-tile scatter and segment edges cost the
    // preprocessor a few percent of the dense rows' non-zeros.
    let dense_fraction = (1.05 * blocked * nnz_per_row / dense_deg).min(0.98);
    let sparse_deg = if dense_fraction < 1.0 {
        ((1.0 - blocked) * nnz_per_row / (1.0 - dense_fraction)).max(0.0)
    } else {
        0.0
    };
    Recipe::Mixed {
        dense_fraction,
        dense_deg,
        sparse_deg,
        hub_fraction,
    }
}

/// The 20 evaluated matrices (Table II; SPD matrices first).
pub fn suite() -> Vec<SuiteEntry> {
    let e = |name,
             domain,
             rows,
             nnz: usize,
             per_row: f64,
             blocked: f64,
             spd,
             spread,
             outliers,
             recipe| SuiteEntry {
        name,
        domain,
        rows,
        paper_nnz: nnz,
        paper_nnz_per_row: per_row,
        paper_blocked: blocked,
        spd,
        exponent_spread: spread,
        outlier_fraction: outliers,
        recipe,
    };
    vec![
        // --- SPD (solved with CG) ---
        e(
            "2cubes_sphere",
            "electromagnetics",
            101_492,
            1_647_264,
            16.2,
            0.497,
            true,
            24,
            0.0,
            mixed(16.2, 0.497, 17.0, 0.0),
        ),
        e(
            "crystm03",
            "materials",
            24_696,
            583_770,
            23.6,
            0.947,
            true,
            18,
            0.0,
            mixed(23.6, 0.947, 26.0, 0.0),
        ),
        e(
            "finan512",
            "economics",
            74_752,
            596_992,
            7.9,
            0.467,
            true,
            30,
            0.0,
            mixed(7.9, 0.467, 9.0, 0.0),
        ),
        e(
            "G2_circuit",
            "circuit simulation",
            150_102,
            726_674,
            4.5,
            0.609,
            true,
            28,
            0.0,
            mixed(4.5, 0.609, 6.4, 0.02),
        ),
        e(
            "nasasrb",
            "structural",
            54_870,
            2_677_324,
            49.8,
            0.991,
            true,
            58,
            0.004,
            mixed(49.8, 0.991, 52.0, 0.0),
        ),
        e(
            "Pres_Poisson",
            "computational fluid dynamics",
            14_822,
            715_804,
            48.3,
            0.964,
            true,
            9,
            0.0,
            mixed(48.3, 0.964, 52.0, 0.0),
        ),
        e(
            "qa8fm",
            "acoustics",
            66_127,
            1_660_579,
            25.1,
            0.928,
            true,
            14,
            0.0,
            mixed(25.1, 0.928, 28.0, 0.0),
        ),
        e(
            "ship_001",
            "structural",
            34_920,
            3_896_496,
            111.6,
            0.664,
            true,
            34,
            0.0,
            mixed(111.6, 0.664, 142.0, 0.0),
        ),
        e(
            "thermomech_TC",
            "thermal",
            102_158,
            711_558,
            6.8,
            0.008,
            true,
            12,
            0.0,
            Recipe::Uniform,
        ),
        e(
            "Trefethen_20000",
            "combinatorial",
            20_000,
            554_466,
            27.7,
            0.633,
            true,
            16,
            0.0,
            Recipe::Trefethen,
        ),
        // --- non-SPD (solved with BiCG-STAB) ---
        e(
            "ASIC_100K",
            "circuit simulation",
            99_340,
            940_621,
            9.5,
            0.609,
            false,
            36,
            0.01,
            mixed(9.5, 0.609, 14.0, 0.04),
        ),
        e(
            "bcircuit",
            "circuit simulation",
            68_902,
            375_558,
            5.4,
            0.649,
            false,
            32,
            0.0,
            mixed(5.4, 0.649, 9.0, 0.03),
        ),
        e(
            "epb3",
            "thermal",
            84_617,
            463_625,
            5.5,
            0.722,
            false,
            20,
            0.0,
            mixed(5.5, 0.722, 8.0, 0.0),
        ),
        e(
            "GaAsH6",
            "quantum chemistry",
            61_349,
            3_381_809,
            55.1,
            0.692,
            false,
            40,
            0.0,
            mixed(55.1, 0.692, 71.0, 0.0),
        ),
        e(
            "ns3Da",
            "computational fluid dynamics",
            20_414,
            1_679_599,
            82.0,
            0.032,
            false,
            22,
            0.0,
            Recipe::Uniform,
        ),
        e(
            "Si34H36",
            "quantum chemistry",
            97_569,
            5_156_379,
            52.8,
            0.537,
            false,
            38,
            0.0,
            mixed(52.8, 0.537, 76.0, 0.0),
        ),
        e(
            "torso2",
            "bioengineering",
            115_697,
            1_033_473,
            8.9,
            0.981,
            false,
            16,
            0.0,
            mixed(8.9, 0.981, 9.5, 0.0),
        ),
        e(
            "venkat25",
            "computational fluid dynamics",
            62_424,
            1_717_792,
            27.5,
            0.798,
            false,
            26,
            0.0,
            mixed(27.5, 0.798, 32.0, 0.0),
        ),
        e(
            "wang3",
            "semiconductor devices",
            26_064,
            177_168,
            6.8,
            0.646,
            false,
            18,
            0.0,
            mixed(6.8, 0.646, 10.0, 0.0),
        ),
        e(
            "xenon1",
            "materials",
            48_600,
            1_181_120,
            24.3,
            0.810,
            false,
            24,
            0.0,
            mixed(24.3, 0.810, 28.0, 0.0),
        ),
    ]
}

/// Looks up a suite entry by its SuiteSparse name (case-insensitive).
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    suite()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::{BlockedMatrix, BlockingConfig};
    use crate::stats::MatrixStats;

    #[test]
    fn suite_has_twenty_entries_spd_first() {
        let s = suite();
        assert_eq!(s.len(), 20);
        assert!(s[..10].iter().all(|e| e.spd));
        assert!(s[10..].iter().all(|e| !e.spd));
    }

    #[test]
    fn by_name_finds_entries() {
        assert!(by_name("pres_poisson").is_some());
        assert!(by_name("Xenon1").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let e = by_name("wang3").unwrap();
        let a = e.generate_scaled(0.05);
        let b = e.generate_scaled(0.05);
        assert_eq!(a, b);
    }

    #[test]
    fn spd_replicas_are_symmetric_and_dominant() {
        for e in suite().iter().filter(|e| e.spd).take(3) {
            let a = e.generate_scaled(0.03);
            assert!(a.is_symmetric(1e-9), "{} not symmetric", e.name);
            for r in 0..a.rows() {
                let (cols, vals) = a.row(r);
                let mut diag = 0.0;
                let mut off = 0.0;
                for (&c, &v) in cols.iter().zip(vals) {
                    if c as usize == r {
                        diag = v;
                    } else {
                        off += v.abs();
                    }
                }
                assert!(diag > off, "{} row {r} not dominant", e.name);
            }
        }
    }

    #[test]
    fn nnz_per_row_is_in_the_right_ballpark() {
        for e in suite() {
            let a = e.generate_scaled(0.04);
            let s = MatrixStats::compute(&a);
            let expected = e.expected_nnz_per_row(0.04);
            let ratio = s.nnz_per_row / expected;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{}: generated {:.1} nnz/row vs expected {:.1}",
                e.name,
                s.nnz_per_row,
                expected
            );
        }
    }

    #[test]
    fn blocking_efficiency_tracks_table2_classes() {
        // At reduced scale the exact percentages move, but the classes
        // must hold: well-blocking matrices block well, the two
        // difficult matrices do not.
        let cfg = BlockingConfig::default();
        for name in ["Pres_Poisson", "torso2"] {
            let e = by_name(name).unwrap();
            let a = e.generate_scaled(0.2);
            let blocked = BlockedMatrix::block(&a, &cfg);
            assert!(
                blocked.stats.efficiency() > 0.7,
                "{name}: efficiency {:.3}",
                blocked.stats.efficiency()
            );
        }
        for name in ["ns3Da", "thermomech_TC"] {
            let e = by_name(name).unwrap();
            let a = e.generate_scaled(0.2);
            let blocked = BlockedMatrix::block(&a, &cfg);
            assert!(
                blocked.stats.efficiency() < 0.15,
                "{name}: efficiency {:.3}",
                blocked.stats.efficiency()
            );
        }
    }

    #[test]
    fn outlier_values_trigger_range_evictions() {
        let e = by_name("nasasrb").unwrap();
        let a = e.generate_scaled(0.05);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert!(
            blocked.stats.nnz_evicted_range > 0,
            "expected exponent-range evictions for nasasrb"
        );
    }
}
