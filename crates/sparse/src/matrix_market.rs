//! Matrix Market (`.mtx`) coordinate-format I/O.
//!
//! The paper evaluates on 20 SuiteSparse matrices distributed in this
//! format; the reader lets real downloads drop into the harness, while
//! the writer round-trips the synthetic replica suite.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::coo::Coo;
use crate::csr::Csr;

/// Errors produced while parsing a Matrix Market stream.
#[derive(Debug)]
pub enum MatrixMarketError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The banner line is missing or malformed.
    BadBanner(String),
    /// The format is valid Matrix Market but not supported here
    /// (only `matrix coordinate real/integer general|symmetric`).
    Unsupported(String),
    /// A data line could not be parsed.
    BadEntry {
        /// 1-based line number.
        line: usize,
        /// Line content.
        content: String,
    },
    /// Entry count or indices disagree with the header.
    Inconsistent(String),
}

impl fmt::Display for MatrixMarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixMarketError::Io(e) => write!(f, "i/o error: {e}"),
            MatrixMarketError::BadBanner(s) => write!(f, "bad MatrixMarket banner: {s}"),
            MatrixMarketError::Unsupported(s) => write!(f, "unsupported MatrixMarket variant: {s}"),
            MatrixMarketError::BadEntry { line, content } => {
                write!(f, "unparsable entry at line {line}: {content}")
            }
            MatrixMarketError::Inconsistent(s) => write!(f, "inconsistent data: {s}"),
        }
    }
}

impl std::error::Error for MatrixMarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatrixMarketError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MatrixMarketError {
    fn from(e: std::io::Error) -> Self {
        MatrixMarketError::Io(e)
    }
}

/// Reads a `matrix coordinate real general|symmetric` stream into COO
/// form (symmetric storage is expanded).
///
/// A `&mut` reference can be passed for any `R: Read`.
///
/// # Errors
///
/// See [`MatrixMarketError`].
///
/// # Examples
///
/// ```
/// use memsci_sparse::matrix_market::read_coo;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -2.0\n";
/// let m = read_coo(text.as_bytes())?;
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.nnz(), 2);
/// # Ok::<(), memsci_sparse::matrix_market::MatrixMarketError>(())
/// ```
pub fn read_coo<R: Read>(reader: R) -> Result<Coo, MatrixMarketError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let banner = loop {
        match lines.next() {
            Some((_, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => return Err(MatrixMarketError::BadBanner("empty stream".into())),
        }
    };
    let tokens: Vec<String> = banner
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MatrixMarketError::BadBanner(banner));
    }
    if tokens[2] != "coordinate" {
        return Err(MatrixMarketError::Unsupported(banner));
    }
    if tokens[3] != "real" && tokens[3] != "integer" {
        return Err(MatrixMarketError::Unsupported(banner));
    }
    let symmetric = match tokens[4].as_str() {
        "general" => false,
        "symmetric" => true,
        _ => return Err(MatrixMarketError::Unsupported(banner)),
    };
    // Size line: first non-comment, non-empty line.
    let (mut rows, mut cols, mut nnz) = (0usize, 0usize, 0usize);
    let mut have_size = false;
    let mut coo = Coo::new(0, 0);
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if !have_size {
            if fields.len() != 3 {
                return Err(MatrixMarketError::BadEntry {
                    line: idx + 1,
                    content: line,
                });
            }
            rows = fields[0].parse().map_err(|_| MatrixMarketError::BadEntry {
                line: idx + 1,
                content: line.clone(),
            })?;
            cols = fields[1].parse().map_err(|_| MatrixMarketError::BadEntry {
                line: idx + 1,
                content: line.clone(),
            })?;
            nnz = fields[2].parse().map_err(|_| MatrixMarketError::BadEntry {
                line: idx + 1,
                content: line.clone(),
            })?;
            coo = Coo::new(rows, cols);
            have_size = true;
            continue;
        }
        if fields.len() < 3 {
            return Err(MatrixMarketError::BadEntry {
                line: idx + 1,
                content: line,
            });
        }
        let r: usize = fields[0].parse().map_err(|_| MatrixMarketError::BadEntry {
            line: idx + 1,
            content: line.clone(),
        })?;
        let c: usize = fields[1].parse().map_err(|_| MatrixMarketError::BadEntry {
            line: idx + 1,
            content: line.clone(),
        })?;
        let v: f64 = fields[2].parse().map_err(|_| MatrixMarketError::BadEntry {
            line: idx + 1,
            content: line.clone(),
        })?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MatrixMarketError::Inconsistent(format!(
                "entry ({r}, {c}) outside {rows}x{cols} matrix"
            )));
        }
        coo.push(r - 1, c - 1, v).expect("checked bounds");
        seen += 1;
    }
    if !have_size {
        return Err(MatrixMarketError::Inconsistent("missing size line".into()));
    }
    if seen != nnz {
        return Err(MatrixMarketError::Inconsistent(format!(
            "header promised {nnz} entries, found {seen}"
        )));
    }
    if symmetric {
        coo.symmetrize();
    }
    Ok(coo)
}

/// Writes a CSR matrix as `matrix coordinate real general`.
///
/// A `&mut` reference can be passed for any `W: Write`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csr<W: Write>(matrix: &Csr, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% generated by memsci-sparse")?;
    let (rows, cols) = matrix.shape();
    writeln!(writer, "{rows} {cols} {}", matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let m = Coo::from_triplets(3, 2, [(0, 0, 1.5), (2, 1, -2.25), (1, 0, 1e-10)])
            .unwrap()
            .to_csr();
        let mut buf = Vec::new();
        write_csr(&m, &mut buf).unwrap();
        let back = read_coo(buf.as_slice()).unwrap().to_csr();
        assert_eq!(m, back);
    }

    #[test]
    fn symmetric_storage_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 3\n1 1 2.0\n2 1 -1.0\n3 3 4.0\n";
        let m = read_coo(text.as_bytes()).unwrap().to_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "\n%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\n2 2 1\n% another\n2 2 7.0\n";
        let m = read_coo(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn integer_values_parse() {
        let text = "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 3\n";
        let m = read_coo(text.as_bytes()).unwrap();
        assert_eq!(m.iter().next(), Some((0, 0, 3.0)));
    }

    #[test]
    fn bad_banner_is_rejected() {
        assert!(matches!(
            read_coo("hello world\n".as_bytes()),
            Err(MatrixMarketError::BadBanner(_))
        ));
    }

    #[test]
    fn unsupported_field_is_rejected() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(matches!(
            read_coo(text.as_bytes()),
            Err(MatrixMarketError::Unsupported(_))
        ));
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(matches!(
            read_coo(text.as_bytes()),
            Err(MatrixMarketError::Inconsistent(_))
        ));
    }

    #[test]
    fn out_of_range_detected() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_coo(text.as_bytes()),
            Err(MatrixMarketError::Inconsistent(_))
        ));
    }

    #[test]
    fn one_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 9.0\n";
        let m = read_coo(text.as_bytes()).unwrap();
        assert_eq!(m.iter().next(), Some((0, 1, 9.0)));
    }
}
