//! The heterogeneous blocking preprocessor (paper §V-B1).
//!
//! The accelerator's banks contain clusters of four different crossbar
//! sizes. This preprocessing step maps the dense sub-blocks of a sparse
//! matrix onto those sizes: candidate tiles are scanned from the largest
//! block size to the smallest, each candidate's non-zero count and
//! exponent range are computed, out-of-range elements are selectively
//! evicted, and the candidate is accepted when enough non-zeros remain.
//! Elements that never block efficiently fall through to a residual CSR
//! matrix handled by the bank's local processor.
//!
//! The scan touches each non-zero at most once per block size (worst
//! case `4 × NNZ` for the default four sizes); early acceptance of good
//! blocks brings the average down (the paper reports `1.8 × NNZ`), which
//! the [`BlockingStats::touches`] counter makes observable.

use std::collections::BTreeMap;

use memsci_exec::ExecStats;
use memsci_numeric::FloatParts;

use crate::coo::Coo;
use crate::csr::Csr;

/// Configuration for the blocking preprocessor.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingConfig {
    /// Candidate block sizes, scanned in the given (descending) order.
    pub block_sizes: Vec<u32>,
    /// Per-non-zero acceptance floor: a candidate must keep at least
    /// `fill_factor × size` non-zeros.
    pub fill_factor: f64,
    /// Per-size density thresholds `(size, min_density)`, encoding the
    /// §V-A trade-off: a large crossbar's higher per-operation latency
    /// and ADC resolution are only worth paying when the tile is dense
    /// enough; otherwise the scan falls through to smaller sizes whose
    /// clusters are faster and cheaper per captured non-zero.
    pub min_densities: Vec<(u32, f64)>,
    /// Maximum aligned-operand magnitude width (the paper's 117 bits:
    /// a 53-bit mantissa plus 64 pad bits).
    pub max_magnitude_bits: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        BlockingConfig {
            block_sizes: vec![512, 256, 128, 64],
            fill_factor: 4.0,
            min_densities: vec![(512, 0.10), (256, 0.08), (128, 0.07), (64, 0.06)],
            max_magnitude_bits: memsci_numeric::align::MAX_MAGNITUDE_BITS,
        }
    }
}

impl BlockingConfig {
    /// Minimum kept non-zeros for a candidate of edge `size`: the
    /// per-non-zero floor or the per-size density threshold, whichever
    /// is larger.
    pub fn min_nnz(&self, size: u32) -> usize {
        let density = self
            .min_densities
            .iter()
            .find(|&&(s, _)| s == size)
            .map_or(0.0, |&(_, d)| d);
        let by_fill = self.fill_factor * f64::from(size);
        let by_density = density * f64::from(size) * f64::from(size);
        by_fill.max(by_density).ceil() as usize
    }

    /// Maximum allowed spread of top binary exponents within one block
    /// (conservatively guarantees the aligned magnitude width fits).
    pub fn max_exponent_spread(&self) -> i32 {
        (self.max_magnitude_bits as i32 - memsci_numeric::align::MANTISSA_BITS as i32).max(0)
    }
}

/// A dense sub-block mapped to one cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Global row of the block's top-left corner.
    pub row0: u32,
    /// Global column of the block's top-left corner.
    pub col0: u32,
    /// Block edge (crossbar size it maps to).
    pub size: u32,
    /// Entries in block-local coordinates.
    pub entries: Vec<(u16, u16, f64)>,
}

impl Block {
    /// Number of captured non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of the block's cells that are non-zero.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (f64::from(self.size) * f64::from(self.size))
    }

    /// Iterates entries in global coordinates.
    pub fn global_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().map(move |&(r, c, v)| {
            (
                self.row0 as usize + r as usize,
                self.col0 as usize + c as usize,
                v,
            )
        })
    }

    /// The values captured by the block.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.entries.iter().map(|&(_, _, v)| v)
    }
}

/// Counters describing a blocking run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockingStats {
    /// Total non-zeros in the input matrix.
    pub nnz_total: usize,
    /// Non-zeros captured by accepted blocks.
    pub nnz_blocked: usize,
    /// Non-zeros evicted from otherwise-accepted blocks because of
    /// exponent range violations (they join the residual).
    pub nnz_evicted_range: usize,
    /// Non-zeros the scan visited, across all block sizes.
    pub touches: usize,
    /// Accepted blocks per size.
    pub blocks_by_size: BTreeMap<u32, usize>,
}

impl BlockingStats {
    /// Blocking efficiency: the fraction of non-zeros captured by blocks
    /// (the paper's "Blocked" column in Table II).
    pub fn efficiency(&self) -> f64 {
        if self.nnz_total == 0 {
            0.0
        } else {
            self.nnz_blocked as f64 / self.nnz_total as f64
        }
    }

    /// Average number of times each non-zero was touched.
    pub fn touches_per_nnz(&self) -> f64 {
        if self.nnz_total == 0 {
            0.0
        } else {
            self.touches as f64 / self.nnz_total as f64
        }
    }
}

/// A sparse matrix partitioned into crossbar blocks plus a residual for
/// the local processor.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedMatrix {
    rows: usize,
    cols: usize,
    /// Accepted blocks, largest sizes first.
    pub blocks: Vec<Block>,
    /// Elements left to the bank's local processor (CSR, §VI-A1).
    pub residual: Csr,
    /// Run counters.
    pub stats: BlockingStats,
}

impl BlockedMatrix {
    /// Runs the preprocessing step on a matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
    /// use memsci_sparse::generate::poisson2d;
    ///
    /// let a = poisson2d(64, 64);
    /// let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    /// let captured: usize = blocked.blocks.iter().map(|b| b.nnz()).sum();
    /// assert_eq!(captured + blocked.residual.nnz(), a.nnz());
    /// ```
    pub fn block(matrix: &Csr, config: &BlockingConfig) -> Self {
        Self::block_with_exec(matrix, config, None).0
    }

    /// [`block`](Self::block) with an explicit host worker-thread count
    /// and the wall-clock stats of the candidate scan.
    ///
    /// `threads = None` resolves to the `MEMSCI_THREADS` environment
    /// variable or the machine's parallelism. The result is
    /// bit-identical at any thread count: tile-row runs are scanned
    /// independently and their blocks, survivors, and counters are
    /// merged serially in tile-row order — exactly where a serial scan
    /// puts them.
    pub fn block_with_exec(
        matrix: &Csr,
        config: &BlockingConfig,
        threads: Option<usize>,
    ) -> (Self, ExecStats) {
        let threads = memsci_exec::worker_count(threads);
        let (rows, cols) = matrix.shape();
        let mut remaining: Vec<(u32, u32, f64)> = matrix
            .iter()
            .map(|(r, c, v)| (r as u32, c as u32, v))
            .collect();
        let mut stats = BlockingStats {
            nnz_total: remaining.len(),
            ..Default::default()
        };
        let mut blocks = Vec::new();
        let max_spread = config.max_exponent_spread();
        let mut tasks = 0usize;

        let ((), mut exec) = memsci_exec::timed(threads, 0, || {
            for &size in &config.block_sizes {
                let min_nnz = config.min_nnz(size);
                // Tile-row runs are contiguous in the (row, col)-sorted
                // remainder and independent of one another, so the scan
                // fans them out across workers.
                let mut runs: Vec<(usize, usize)> = Vec::new();
                let mut i = 0;
                while i < remaining.len() {
                    let tile_row = remaining[i].0 / size;
                    let mut j = i;
                    while j < remaining.len() && remaining[j].0 / size == tile_row {
                        j += 1;
                    }
                    runs.push((i, j));
                    i = j;
                }
                tasks += runs.len();
                let rem = &remaining;
                let results = memsci_exec::parallel_map(threads, &runs, |_, &(i, j)| {
                    scan_tile_row(rem, i, j, size, min_nnz, max_spread)
                });
                let mut survivors: Vec<(u32, u32, f64)> = Vec::with_capacity(remaining.len());
                for run in results {
                    stats.touches += run.touches;
                    stats.nnz_blocked += run.nnz_blocked;
                    stats.nnz_evicted_range += run.nnz_evicted;
                    if run.accepted > 0 {
                        *stats.blocks_by_size.entry(size).or_default() += run.accepted;
                    }
                    blocks.extend(run.blocks);
                    survivors.extend(run.survivors);
                }
                survivors.sort_unstable_by_key(|&(r, c, _)| (r, c));
                remaining = survivors;
            }
        });
        exec.tasks = tasks;

        let residual = Coo::from_triplets(
            rows,
            cols,
            remaining
                .iter()
                .map(|&(r, c, v)| (r as usize, c as usize, v)),
        )
        .expect("residual indices in range")
        .to_csr();
        (
            BlockedMatrix {
                rows,
                cols,
                blocks,
                residual,
                stats,
            },
            exec,
        )
    }

    /// Matrix dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total non-zeros (blocked plus residual).
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Block::nnz).sum::<usize>() + self.residual.nnz()
    }

    /// Reference `y = A·x` over blocks plus residual (plain f64; used to
    /// validate that blocking partitions — not alters — the matrix).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length");
        assert_eq!(y.len(), self.rows, "y length");
        y.fill(0.0);
        for block in &self.blocks {
            for (r, c, v) in block.global_entries() {
                y[r] += v * x[c];
            }
        }
        self.residual.spmv_add(x, y);
    }

    /// Histogram of accepted block sizes, descending by size.
    pub fn block_size_histogram(&self) -> Vec<(u32, usize)> {
        let mut hist: BTreeMap<u32, usize> = BTreeMap::new();
        for b in &self.blocks {
            *hist.entry(b.size).or_default() += 1;
        }
        hist.into_iter().rev().collect()
    }
}

/// Outcome of scanning one tile-row run at one block size.
struct TileRowScan {
    blocks: Vec<Block>,
    survivors: Vec<(u32, u32, f64)>,
    touches: usize,
    nnz_blocked: usize,
    nnz_evicted: usize,
    accepted: usize,
}

/// Scans `remaining[i..j]` (one tile-row at edge `size`): buckets by
/// tile column, accepts candidates that keep `min_nnz` non-zeros within
/// the exponent window, and routes the rest to the survivors.
fn scan_tile_row(
    remaining: &[(u32, u32, f64)],
    i: usize,
    j: usize,
    size: u32,
    min_nnz: usize,
    max_spread: i32,
) -> TileRowScan {
    let tile_row = remaining[i].0 / size;
    let mut out = TileRowScan {
        blocks: Vec::new(),
        survivors: Vec::new(),
        touches: 0,
        nnz_blocked: 0,
        nnz_evicted: 0,
        accepted: 0,
    };
    // Bucket this tile-row's entries by tile column.
    let mut tiles: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (k, entry) in remaining.iter().enumerate().take(j).skip(i) {
        tiles.entry(entry.1 / size).or_default().push(k);
    }
    for (tile_col, idxs) in tiles {
        out.touches += idxs.len();
        if idxs.len() < min_nnz {
            out.survivors.extend(idxs.iter().map(|&k| remaining[k]));
            continue;
        }
        let (kept, evicted) = exponent_window_filter(remaining, &idxs, max_spread);
        if kept.len() < min_nnz {
            out.survivors.extend(idxs.iter().map(|&k| remaining[k]));
            continue;
        }
        out.nnz_blocked += kept.len();
        out.nnz_evicted += evicted.len();
        out.accepted += 1;
        let row0 = tile_row * size;
        let col0 = tile_col * size;
        let entries = kept
            .iter()
            .map(|&k| {
                let (r, c, v) = remaining[k];
                ((r - row0) as u16, (c - col0) as u16, v)
            })
            .collect();
        out.blocks.push(Block {
            row0,
            col0,
            size,
            entries,
        });
        out.survivors.extend(evicted.iter().map(|&k| remaining[k]));
    }
    out
}

/// Selects the largest subset of entries whose top binary exponents fit
/// within `max_spread`; returns `(kept, evicted)` index lists.
fn exponent_window_filter(
    entries: &[(u32, u32, f64)],
    idxs: &[usize],
    max_spread: i32,
) -> (Vec<usize>, Vec<usize>) {
    let values: Vec<f64> = idxs.iter().map(|&k| entries[k].2).collect();
    let (kept, evicted) = exponent_window_partition(&values, max_spread);
    (
        kept.into_iter().map(|i| idxs[i]).collect(),
        evicted.into_iter().map(|i| idxs[i]).collect(),
    )
}

/// Partitions values into the largest subset whose top binary exponents
/// span at most `max_spread` (keeping the block alignable within the
/// operand width) and the evicted remainder; returns index lists into
/// `values`. Zeros and non-finite values are treated as exponent 0.
///
/// # Examples
///
/// ```
/// use memsci_sparse::blocking::exponent_window_partition;
///
/// let (kept, evicted) = exponent_window_partition(&[1.0, 2.0, 1e300], 64);
/// assert_eq!(kept.len(), 2);
/// assert_eq!(evicted, vec![2]);
/// ```
pub fn exponent_window_partition(values: &[f64], max_spread: i32) -> (Vec<usize>, Vec<usize>) {
    let mut exps: Vec<(i32, usize)> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let top = FloatParts::decompose(v)
                .ok()
                .and_then(|p| p.top_exponent())
                .unwrap_or(0);
            (top, i)
        })
        .collect();
    exps.sort_unstable();
    if exps.is_empty() {
        return (Vec::new(), Vec::new());
    }
    // Two-pointer max window with exponent spread <= max_spread.
    let (mut best_lo, mut best_hi) = (0usize, 0usize);
    let mut lo = 0usize;
    for hi in 0..exps.len() {
        while exps[hi].0 - exps[lo].0 > max_spread {
            lo += 1;
        }
        if hi - lo > best_hi - best_lo {
            best_lo = lo;
            best_hi = hi;
        }
    }
    let kept: Vec<usize> = exps[best_lo..=best_hi].iter().map(|&(_, i)| i).collect();
    let evicted: Vec<usize> = exps[..best_lo]
        .iter()
        .chain(&exps[best_hi + 1..])
        .map(|&(_, i)| i)
        .collect();
    (kept, evicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{banded, poisson2d, uniform_random, ValueModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn blocking_partitions_the_matrix() {
        let a = poisson2d(48, 48);
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(blocked.nnz(), a.nnz());
        assert_eq!(blocked.stats.nnz_total, a.nnz());
        assert_eq!(
            blocked.stats.nnz_blocked,
            blocked.blocks.iter().map(Block::nnz).sum::<usize>()
        );
    }

    #[test]
    fn blocked_spmv_matches_csr() {
        let a = banded(300, 8, 0.7, ValueModel::with_spread(6), &mut rng()).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; 300];
        let mut y2 = vec![0.0; 300];
        a.spmv(&x, &mut y1);
        blocked.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-9 * u.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn dense_band_blocks_well() {
        // A dense narrow band should block almost completely.
        let a = banded(512, 16, 0.9, ValueModel::with_spread(8), &mut rng()).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert!(
            blocked.stats.efficiency() > 0.8,
            "band efficiency {}",
            blocked.stats.efficiency()
        );
    }

    #[test]
    fn uniform_scatter_does_not_block() {
        // ns3Da-like structureless scatter: nothing reaches the density
        // thresholds.
        let a = uniform_random(2048, 16384, ValueModel::with_spread(8), &mut rng()).to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert!(
            blocked.stats.efficiency() < 0.1,
            "scatter efficiency {}",
            blocked.stats.efficiency()
        );
    }

    #[test]
    fn touches_bounded_by_passes() {
        let a = poisson2d(40, 40);
        let cfg = BlockingConfig::default();
        let blocked = BlockedMatrix::block(&a, &cfg);
        let per_nnz = blocked.stats.touches_per_nnz();
        assert!(
            per_nnz <= cfg.block_sizes.len() as f64,
            "touches/nnz {per_nnz}"
        );
        assert!(per_nnz >= 1.0);
    }

    #[test]
    fn exponent_outliers_are_evicted() {
        // A dense 64x64 block with a handful of enormous values: the
        // outliers must be evicted to the residual, the bulk blocked.
        let n = 64;
        let mut coo = Coo::new(n, n);
        for r in 0..n {
            for c in 0..n {
                let v = if r == 0 && c < 4 {
                    1e300
                } else {
                    1.0 + (r * n + c) as f64 * 1e-3
                };
                coo.push(r, c, v).unwrap();
            }
        }
        let a = coo.to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        assert_eq!(blocked.stats.nnz_evicted_range, 4);
        assert_eq!(blocked.residual.nnz(), 4);
        assert!(blocked.stats.efficiency() > 0.99);
        // Every blocked value must be alignable within the operand width.
        for b in &blocked.blocks {
            let vals: Vec<f64> = b.values().collect();
            assert!(memsci_numeric::AlignedSlice::align(
                &vals,
                memsci_numeric::align::MAX_MAGNITUDE_BITS
            )
            .is_ok());
        }
    }

    #[test]
    fn heterogeneous_sizes_are_used() {
        // A matrix with one large dense region and small dense pockets:
        // expect both large and small block sizes in the outcome.
        let n = 700;
        let mut coo = Coo::new(n, n);
        let mut r = rng();
        use rand::Rng;
        // 512-region
        for _ in 0..60_000 {
            let i = r.gen_range(0..512);
            let j = r.gen_range(0..512);
            coo.push(i, j, 1.0 + r.gen::<f64>()).unwrap();
        }
        // small dense pocket at (640, 640): 1600 entries is below the
        // 512-size threshold (2048) but above the 256-size one (1024).
        for i in 640..680 {
            for j in 640..680 {
                coo.push(i, j, 2.0).unwrap();
            }
        }
        let a = coo.to_csr();
        let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
        let hist = blocked.block_size_histogram();
        let sizes: Vec<u32> = hist.iter().map(|&(s, _)| s).collect();
        assert!(sizes.contains(&512), "sizes used: {sizes:?}");
        assert!(sizes.iter().any(|&s| s < 512), "sizes used: {sizes:?}");
    }

    #[test]
    fn parallel_scan_is_identical_to_serial() {
        let a = banded(900, 20, 0.8, ValueModel::with_spread(10), &mut rng()).to_csr();
        let cfg = BlockingConfig::default();
        let (serial, serial_exec) = BlockedMatrix::block_with_exec(&a, &cfg, Some(1));
        assert_eq!(serial_exec.threads, 1);
        assert!(serial_exec.tasks > 0);
        for threads in [2, 3, 8] {
            let (parallel, exec) = BlockedMatrix::block_with_exec(&a, &cfg, Some(threads));
            // BlockedMatrix derives PartialEq: blocks (order, local
            // coordinates, bit patterns), residual, and counters must
            // all match the serial scan exactly.
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(exec.threads, threads);
            assert_eq!(exec.tasks, serial_exec.tasks);
        }
    }

    #[test]
    fn empty_matrix_blocks_trivially() {
        let blocked = BlockedMatrix::block(&Csr::empty(10, 10), &BlockingConfig::default());
        assert!(blocked.blocks.is_empty());
        assert_eq!(blocked.stats.efficiency(), 0.0);
        assert_eq!(blocked.nnz(), 0);
    }
}
