//! Coordinate-format (triplet) sparse matrices.
//!
//! COO is the assembly format: generators and the Matrix Market reader
//! produce triplets, which are then compressed to [`Csr`] for kernels.
//!
//! [`Csr`]: crate::Csr

use core::fmt;

use crate::csr::Csr;

/// Error for entries outside the matrix dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOutOfBounds {
    /// Offending row index.
    pub row: usize,
    /// Offending column index.
    pub col: usize,
    /// Matrix dimensions.
    pub shape: (usize, usize),
}

impl fmt::Display for IndexOutOfBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entry ({}, {}) outside {}x{} matrix",
            self.row, self.col, self.shape.0, self.shape.1
        )
    }
}

impl std::error::Error for IndexOutOfBounds {}

/// A sparse matrix in coordinate (triplet) format.
///
/// Duplicate entries are permitted until [`Coo::compress`] or
/// [`Coo::to_csr`] sums them.
///
/// # Examples
///
/// ```
/// use memsci_sparse::Coo;
///
/// let mut m = Coo::new(2, 2);
/// m.push(0, 0, 2.0)?;
/// m.push(1, 1, 3.0)?;
/// m.push(0, 0, 1.0)?; // duplicate, summed on compression
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.get(0, 0), 3.0);
/// # Ok::<(), memsci_sparse::coo::IndexOutOfBounds>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Creates an empty matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension exceeds `u32::MAX`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates a matrix from raw triplets.
    ///
    /// # Errors
    ///
    /// Returns [`IndexOutOfBounds`] if any triplet lies outside the
    /// matrix.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Result<Self, IndexOutOfBounds> {
        let mut m = Coo::new(rows, cols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`IndexOutOfBounds`] if the entry lies outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), IndexOutOfBounds> {
        if row >= self.rows || col >= self.cols {
            return Err(IndexOutOfBounds {
                row,
                col,
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of stored triplets (including duplicates and explicit
    /// zeros until compression).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Matrix dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Iterates over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Sorts entries row-major and sums duplicates, dropping entries that
    /// cancel to exact zero.
    ///
    /// Each duplicate run accumulates from `+0.0` in insertion order —
    /// the same reduction a dense accumulator performs — so compressed
    /// values match a dense stable-order accumulation bit for bit. In
    /// particular a lone `-0.0` (or a run summing to a signed zero)
    /// normalises to `+0.0` and is dropped, exactly as a dense array
    /// initialised to `+0.0` would report it.
    pub fn compress(&mut self) {
        // Stable sort: duplicate entries sum in insertion order, keeping
        // compression deterministic down to floating-point rounding.
        self.entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                // `0.0 + v` seeds the run the way a dense accumulator
                // would; it only differs from `v` for `-0.0`.
                _ => out.push((r, c, 0.0 + v)),
            }
        }
        // Bitwise check: after the `+0.0` seeding no run can sum to
        // `-0.0`, so this drops exactly the cells a dense accumulation
        // reports as `+0.0`.
        out.retain(|&(_, _, v)| v.to_bits() != 0);
        self.entries = out;
    }

    /// Converts to CSR, summing duplicates.
    pub fn to_csr(&self) -> Csr {
        let mut m = self.clone();
        m.compress();
        let mut row_ptr = vec![0usize; m.rows + 1];
        for &(r, _, _) in &m.entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..m.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = m.entries.iter().map(|&(_, c, _)| c).collect();
        let values = m.entries.iter().map(|&(_, _, v)| v).collect();
        Csr::from_raw_parts(m.rows, m.cols, row_ptr, col_idx, values)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Coo {
        Coo {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|&(r, c, v)| (c, r, v)).collect(),
        }
    }

    /// Appends all entries of another matrix (dimensions must match).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn append(&mut self, other: &Coo) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.entries.extend_from_slice(&other.entries);
    }

    /// Mirrors the strictly-lower or strictly-upper triangle so the
    /// matrix becomes structurally and numerically symmetric (used when
    /// expanding Matrix Market `symmetric` storage).
    pub fn symmetrize(&mut self) {
        let mirrored: Vec<(u32, u32, f64)> = self
            .entries
            .iter()
            .filter(|&&(r, c, _)| r != c)
            .map(|&(r, c, v)| (c, r, v))
            .collect();
        self.entries.extend(mirrored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut m = Coo::new(2, 3);
        assert!(m.push(0, 2, 1.0).is_ok());
        let err = m.push(2, 0, 1.0).unwrap_err();
        assert_eq!(err.shape, (2, 3));
        assert!(err.to_string().contains("(2, 0)"));
    }

    #[test]
    fn compress_sums_duplicates_and_drops_zeros() {
        let mut m = Coo::from_triplets(
            2,
            2,
            [
                (0, 0, 1.0),
                (0, 0, 2.0),
                (1, 1, 5.0),
                (1, 0, 3.0),
                (1, 0, -3.0),
            ],
        )
        .unwrap();
        m.compress();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 3.0), (1, 1, 5.0)]);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Coo::from_triplets(2, 3, [(0, 2, 1.0), (1, 0, 2.0)]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        let entries: Vec<_> = t.iter().collect();
        assert!(entries.contains(&(2, 0, 1.0)));
        assert!(entries.contains(&(0, 1, 2.0)));
    }

    #[test]
    fn symmetrize_mirrors_off_diagonals() {
        let mut m = Coo::from_triplets(3, 3, [(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        m.symmetrize();
        let csr = m.to_csr();
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.get(1, 2), 3.0);
        assert_eq!(csr.get(0, 0), 1.0); // diagonal not duplicated
        assert_eq!(csr.nnz(), 5);
    }

    #[test]
    fn iter_reports_usize_indices() {
        let m = Coo::from_triplets(1, 1, [(0, 0, 4.5)]).unwrap();
        assert_eq!(m.iter().next(), Some((0, 0, 4.5)));
    }
}
