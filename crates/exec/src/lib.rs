//! The shared execution layer: dependency-free data parallelism over
//! [`std::thread::scope`].
//!
//! Solver-scale experiments spend their wall-clock in a handful of
//! embarrassingly parallel loops — per-cluster dot products in the fast
//! engine, per-device stripes in the multi-accelerator platform, the
//! blocking preprocessor's candidate scan, and the Monte-Carlo /
//! suite-run trial loops. This crate gives them one chunked
//! parallel-map built on scoped threads (no external thread-pool crate,
//! so the offline build keeps working) with three guarantees:
//!
//! 1. **Determinism.** Tasks are pure functions of their index and
//!    input; results are merged serially in task order. A parallel run
//!    is therefore bit-identical to a serial run of the same loop —
//!    floating-point reduction order never depends on thread count or
//!    scheduling. Seeded tasks derive their stream as
//!    `seed = base ⊕ task index` ([`task_seed`]), never from a shared
//!    generator.
//! 2. **One knob.** The worker count resolves, in order, from the
//!    `MEMSCI_THREADS` environment variable, an explicit configuration
//!    value (e.g. `AcceleratorConfig::threads`), and the machine's
//!    available parallelism ([`worker_count`]).
//! 3. **Observability.** Callers time their parallel section with
//!    [`timed`] and surface the resulting [`ExecStats`] in their own
//!    statistics structs.
//!
//! Threads are spawned per call. The wired loops run milliseconds to
//! seconds per call, so ~10 µs of spawn overhead is noise; a persistent
//! pool would buy nothing but shared-state complexity.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Environment variable overriding the worker count for every wired
/// loop. Must parse as an integer ≥ 1; invalid values are ignored with
/// a warning.
pub const THREADS_ENV: &str = "MEMSCI_THREADS";

/// Environment variable overriding lane overlap for every staged
/// kernel pipeline (`1`/`on`/`true`/`yes` or `0`/`off`/`false`/`no`).
/// Invalid values are ignored with a warning.
pub const OVERLAP_ENV: &str = "MEMSCI_OVERLAP";

/// Wall-clock statistics of one parallel section.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Worker threads the section was allowed to use.
    pub threads: usize,
    /// Independent tasks the section was split into.
    pub tasks: usize,
    /// Host wall-clock seconds spent in the section (measurement, not
    /// modelled accelerator time).
    pub wall_seconds: f64,
}

/// Why a thread-count string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadParseError {
    /// The string is not a base-10 integer.
    NotANumber(String),
    /// Zero workers cannot make progress.
    Zero,
}

impl fmt::Display for ThreadParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadParseError::NotANumber(s) => write!(f, "`{s}` is not a thread count"),
            ThreadParseError::Zero => write!(f, "thread count must be at least 1"),
        }
    }
}

impl std::error::Error for ThreadParseError {}

/// Parses a worker count: a base-10 integer ≥ 1.
///
/// # Errors
///
/// Returns [`ThreadParseError`] for non-numeric input (including empty
/// strings and negatives) and for `0`.
pub fn parse_threads(s: &str) -> Result<usize, ThreadParseError> {
    match s.trim().parse::<usize>() {
        Ok(0) => Err(ThreadParseError::Zero),
        Ok(n) => Ok(n),
        Err(_) => Err(ThreadParseError::NotANumber(s.to_string())),
    }
}

/// Worker threads the host offers (≥ 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves the worker count for a parallel section: the
/// [`MEMSCI_THREADS`](THREADS_ENV) environment variable if set and
/// valid, else the caller's configured value, else
/// [`available_threads`]. Invalid environment values warn on stderr and
/// fall through rather than abort a long run.
pub fn worker_count(configured: Option<usize>) -> usize {
    let env = std::env::var(THREADS_ENV).ok();
    worker_count_from(env.as_deref(), configured)
}

/// [`worker_count`] with the environment value passed explicitly
/// (testable without mutating process state).
pub fn worker_count_from(env: Option<&str>, configured: Option<usize>) -> usize {
    if let Some(s) = env {
        match parse_threads(s) {
            Ok(n) => return n,
            Err(e) => eprintln!("warning: ignoring {THREADS_ENV}: {e}"),
        }
    }
    configured.unwrap_or_else(available_threads).max(1)
}

/// Why an overlap string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapParseError(pub String);

impl fmt::Display for OverlapParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not an overlap switch (1/on/true or 0/off/false)",
            self.0
        )
    }
}

impl std::error::Error for OverlapParseError {}

/// Parses an overlap switch: `1`/`on`/`true`/`yes` enable,
/// `0`/`off`/`false`/`no` disable (case-insensitive).
///
/// # Errors
///
/// Returns [`OverlapParseError`] for anything else.
pub fn parse_overlap(s: &str) -> Result<bool, OverlapParseError> {
    match s.trim().to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Ok(true),
        "0" | "off" | "false" | "no" => Ok(false),
        _ => Err(OverlapParseError(s.to_string())),
    }
}

/// Resolves whether two-lane overlap is enabled: the
/// [`MEMSCI_OVERLAP`](OVERLAP_ENV) environment variable if set and
/// valid, else the caller's configured value, else off. Overlap never
/// changes results — it only runs the two lanes of a staged kernel on
/// different host threads.
pub fn overlap_enabled(configured: Option<bool>) -> bool {
    let env = std::env::var(OVERLAP_ENV).ok();
    overlap_from(env.as_deref(), configured)
}

/// [`overlap_enabled`] with the environment value passed explicitly
/// (testable without mutating process state).
pub fn overlap_from(env: Option<&str>, configured: Option<bool>) -> bool {
    if let Some(s) = env {
        match parse_overlap(s) {
            Ok(v) => return v,
            Err(e) => eprintln!("warning: ignoring {OVERLAP_ENV}: {e}"),
        }
    }
    configured.unwrap_or(false)
}

/// Runs two independent lanes and returns both results.
///
/// With `overlap` set, the secondary lane runs on a scoped thread while
/// the primary lane runs on the caller's thread; otherwise both run
/// serially (primary first). Either way the caller receives
/// `(primary, secondary)` and performs any merge itself **after** both
/// lanes complete, so the reduction order — and therefore every bit of
/// the result — is independent of the overlap setting.
pub fn overlap2<RA, RB>(
    overlap: bool,
    primary: impl FnOnce() -> RA + Send,
    secondary: impl FnOnce() -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if !overlap {
        return (primary(), secondary());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(secondary);
        let ra = primary();
        let rb = handle.join().expect("overlap lane panicked");
        (ra, rb)
    })
}

/// Deterministic per-task RNG seed: `base ⊕ index`.
///
/// Every task derives its stream from the caller's base seed and its
/// own index, never from a shared generator, so results are independent
/// of how tasks land on threads. Index 0 reproduces the base seed —
/// serial single-task code keeps its historical streams.
pub fn task_seed(base: u64, index: u64) -> u64 {
    base ^ index
}

/// Runs `tasks` independent jobs and collects their results in index
/// order.
///
/// Tasks are split into at most `threads` contiguous chunks executed on
/// scoped threads; with `threads <= 1` or a single task everything runs
/// inline on the caller's thread. Either way the returned vector is
/// ordered by task index, so any serial fold over it reproduces the
/// serial loop bit for bit.
pub fn parallel_tasks<U, F>(threads: usize, tasks: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if threads <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let chunk = tasks.div_ceil(threads);
    let mut chunks: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..tasks)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(tasks);
                let f = &f;
                s.spawn(move || (start..end).map(f).collect::<Vec<U>>())
            })
            .collect();
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(tasks);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Maps `f` over a slice in parallel, preserving input order.
///
/// `f` receives `(index, &item)` and must be pure; the output vector is
/// in item order regardless of thread count.
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_tasks(threads, items.len(), |i| f(i, &items[i]))
}

/// Mutates each slice element in parallel, collecting one result per
/// element in input order.
///
/// The slice is split into contiguous chunks via `split_at_mut`, so
/// each element is owned by exactly one worker. `f` receives
/// `(index, &mut item)`.
pub fn parallel_map_mut<T, U, F>(threads: usize, items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let tasks = items.len();
    if threads <= 1 || tasks <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = tasks.div_ceil(threads);
    let mut chunks: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        let mut rest = items;
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let f = &f;
            let base = start;
            handles.push(s.spawn(move || {
                head.iter_mut()
                    .enumerate()
                    .map(|(i, t)| f(base + i, t))
                    .collect::<Vec<U>>()
            }));
            start += take;
        }
        chunks = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    });
    let mut out = Vec::with_capacity(tasks);
    for c in chunks {
        out.extend(c);
    }
    out
}

pub mod alloc_counter {
    //! A debug-only global allocation counter for regression gates.
    //!
    //! The zero-allocation SpMV work (scratch arenas, precomputed MVM
    //! plans) is easy to regress silently: one stray `clone()` on a hot
    //! path and the steady-state iteration allocates again. A test
    //! binary installs [`CountingAllocator`] as its `#[global_allocator]`
    //! and asserts that warm iterations stay under a recorded
    //! allocations-per-iteration baseline. Counting is compiled in only
    //! with debug assertions ([`counting`] reports which); release
    //! binaries pay a single delegated call and no atomic traffic.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// A [`System`]-delegating allocator that counts allocation events
    /// (alloc, alloc_zeroed, realloc — frees are not counted) in debug
    /// builds. Install with `#[global_allocator]` in a test binary.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            #[cfg(debug_assertions)]
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            #[cfg(debug_assertions)]
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            #[cfg(debug_assertions)]
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Allocation events observed so far by an installed
    /// [`CountingAllocator`] (always 0 when none is installed or in
    /// release builds).
    pub fn allocation_count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// True when this build counts allocations (debug assertions on).
    /// Gates should no-op when this is false instead of asserting
    /// against a counter that never moves.
    pub fn counting() -> bool {
        cfg!(debug_assertions)
    }
}

/// Times a parallel section, pairing its result with [`ExecStats`].
pub fn timed<R>(threads: usize, tasks: usize, f: impl FnOnce() -> R) -> (R, ExecStats) {
    let start = Instant::now();
    let result = f();
    (
        result,
        ExecStats {
            threads,
            tasks,
            wall_seconds: start.elapsed().as_secs_f64(),
        },
    )
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOCATOR: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_counter_counts_in_debug_builds_only() {
        let before = alloc_counter::allocation_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        drop(v);
        let after = alloc_counter::allocation_count();
        if alloc_counter::counting() {
            assert!(after > before, "debug builds must count allocations");
        } else {
            assert_eq!(after, before, "release builds must not count");
        }
    }

    #[test]
    fn parse_rejects_zero_and_garbage() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("0"), Err(ThreadParseError::Zero));
        assert!(matches!(
            parse_threads("-2"),
            Err(ThreadParseError::NotANumber(_))
        ));
        assert!(matches!(
            parse_threads("four"),
            Err(ThreadParseError::NotANumber(_))
        ));
        assert!(matches!(
            parse_threads(""),
            Err(ThreadParseError::NotANumber(_))
        ));
        assert!(matches!(
            parse_threads("3.5"),
            Err(ThreadParseError::NotANumber(_))
        ));
    }

    #[test]
    fn worker_count_resolution_order() {
        // Valid env wins over everything.
        assert_eq!(worker_count_from(Some("3"), Some(7)), 3);
        // Invalid env falls through to the configured value.
        assert_eq!(worker_count_from(Some("0"), Some(7)), 7);
        assert_eq!(worker_count_from(Some("junk"), Some(7)), 7);
        // No env: configured value.
        assert_eq!(worker_count_from(None, Some(2)), 2);
        // Nothing configured: the host's parallelism, at least 1.
        assert!(worker_count_from(None, None) >= 1);
        assert!(worker_count_from(Some("nope"), None) >= 1);
    }

    #[test]
    fn overlap_parse_and_resolution() {
        assert_eq!(parse_overlap("1"), Ok(true));
        assert_eq!(parse_overlap(" ON "), Ok(true));
        assert_eq!(parse_overlap("true"), Ok(true));
        assert_eq!(parse_overlap("0"), Ok(false));
        assert_eq!(parse_overlap("off"), Ok(false));
        assert!(parse_overlap("maybe").is_err());
        // Valid env wins over the configured value.
        assert!(overlap_from(Some("1"), Some(false)));
        assert!(!overlap_from(Some("0"), Some(true)));
        // Invalid env falls through; default is off.
        assert!(overlap_from(Some("junk"), Some(true)));
        assert!(!overlap_from(Some("junk"), None));
        assert!(overlap_from(None, Some(true)));
        assert!(!overlap_from(None, None));
    }

    #[test]
    fn overlap2_returns_both_lanes_in_both_modes() {
        for overlap in [false, true] {
            let items: Vec<f64> = (0..64).map(|i| (i as f64 * 0.13).sin()).collect();
            let (a, b) = overlap2(
                overlap,
                || items.iter().map(|v| v * 2.0).collect::<Vec<f64>>(),
                || items.iter().sum::<f64>(),
            );
            assert_eq!(a.len(), 64, "overlap={overlap}");
            let want: f64 = items.iter().sum();
            assert_eq!(b.to_bits(), want.to_bits(), "overlap={overlap}");
        }
    }

    #[test]
    fn task_seed_is_xor() {
        assert_eq!(task_seed(0, 5), 5);
        assert_eq!(task_seed(42, 0), 42);
        assert_ne!(task_seed(42, 1), task_seed(42, 2));
    }

    #[test]
    fn parallel_tasks_preserve_order() {
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_tasks(threads, 37, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(parallel_tasks(4, 0, |i| i).is_empty());
    }

    #[test]
    fn parallel_map_matches_serial_bitwise() {
        let items: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let f = |i: usize, v: &f64| (v * 1.000001 + i as f64).to_bits();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, v)| f(i, v)).collect();
        for threads in [1, 2, 5, 16] {
            assert_eq!(
                parallel_map(threads, &items, f),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_map_mut_touches_every_element_once() {
        for threads in [1, 2, 7, 32] {
            let mut items = vec![0u32; 100];
            let indices = parallel_map_mut(threads, &mut items, |i, v| {
                *v += 1;
                i
            });
            assert!(items.iter().all(|&v| v == 1), "threads={threads}");
            assert_eq!(indices, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn timed_reports_section_shape() {
        let (sum, stats) = timed(4, 10, || parallel_tasks(4, 10, |i| i).iter().sum::<usize>());
        assert_eq!(sum, 45);
        assert_eq!(stats.threads, 4);
        assert_eq!(stats.tasks, 10);
        assert!(stats.wall_seconds >= 0.0);
    }
}
