//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1)
//! crate.
//!
//! The build environment has no registry access, so the workspace
//! replaces `proptest` with this path crate. It implements the API
//! subset the memsci test suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`any`], [`collection::vec`], `Just`, the
//! `prop_assert*`/`prop_assume!` macros, and [`ProptestConfig`].
//!
//! Differences from upstream:
//!
//! * Cases are generated from a deterministic per-test seed (FNV-1a of
//!   the test name XOR the case index), so every run explores the same
//!   inputs — failures are always reproducible without a regression
//!   file. Set `PROPTEST_CASES` to raise or lower the case count.
//! * There is no shrinking: a failure reports the exact generated
//!   input (the deterministic seeds make re-runs cheap).
//! * `proptest-regressions` files are not replayed; checked-in shrunk
//!   cases should be mirrored as explicit `#[test]` regressions (see
//!   `crates/sparse/tests/prop.rs`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of cases per property when neither `ProptestConfig` nor the
/// `PROPTEST_CASES` environment variable overrides it.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration (subset of upstream's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (upstream-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T: Debug> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The [`any`] strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over every value of `T` (uniform random bits).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // All bit patterns: subnormals, infinities, and NaNs included,
        // like upstream's full-range f64 strategy. Tests that need
        // finite values `prop_assume!` them.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Upstream-style namespace so `prop::collection::vec` and
/// `prop::num::...` paths keep working.
pub mod prop {
    pub use crate::collection;
}

/// What every test imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with the generated input echoed) instead of panicking
/// immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Each parameter is drawn from its strategy;
/// the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unnameable_test_items)]
        fn $name() {
            let __memsci_cfg: $crate::ProptestConfig = $cfg;
            let __memsci_strategy = ($($strat,)+);
            for __memsci_case in 0..u64::from(__memsci_cfg.cases) {
                let mut __memsci_rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), __memsci_case);
                let __memsci_value =
                    $crate::Strategy::generate(&__memsci_strategy, &mut __memsci_rng);
                let __memsci_debug = format!("{:?}", __memsci_value);
                let ($($pat,)+) = __memsci_value;
                // The closure gives `$body`'s `?` operators a Result
                // context, mirroring upstream proptest.
                #[allow(clippy::redundant_closure_call)]
                let __memsci_result: ::core::result::Result<(), String> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __memsci_result {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}\n  input: {}",
                        __memsci_case + 1,
                        __memsci_cfg.cases,
                        stringify!($name),
                        e,
                        __memsci_debug
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = (0usize..100, collection::vec(-1.0f64..1.0, 1..8));
        let mut r1 = TestRng::for_case("t", 3);
        let mut r2 = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for case in 0..2000 {
            let _ = case;
            let v = (2usize..24).generate(&mut rng);
            assert!((2..24).contains(&v));
            let f = (-100.0f64..100.0).generate(&mut rng);
            assert!((-100.0..100.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_case("lens", 1);
        for _ in 0..500 {
            let v = collection::vec(any::<bool>(), 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let exact = collection::vec(any::<bool>(), 5usize).generate(&mut rng);
            assert_eq!(exact.len(), 5);
        }
    }

    proptest! {
        #[test]
        fn macro_single_param(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn macro_tuple_pattern((a, b) in (0u32..5, 5u32..10)) {
            prop_assert!(a < b, "a {} b {}", a, b);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_assume_skips(x in any::<f64>()) {
            prop_assume!(x.is_finite());
            prop_assert!(!x.is_nan());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_override_applies(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    #[allow(unnameable_test_items)]
    fn failures_report_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
