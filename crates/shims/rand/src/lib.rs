//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment has no registry access, so the workspace
//! replaces `rand` with this path crate. It implements exactly the API
//! subset memsci uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — over a xoshiro256++ generator seeded through
//! SplitMix64. Streams are deterministic per seed (a requirement for
//! the reproduction's Monte-Carlo experiments and the parallel
//! execution layer) but are **not** bit-compatible with upstream
//! `rand`'s ChaCha-based `StdRng`.

#![warn(missing_docs)]

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: uniform bits
    /// for integers, uniform `[0, 1)` for floats, a fair coin for
    /// `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from uniform random bits ("standard" distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`]; the `T` parameter is the
/// element type produced, so return-type inference can pin integer
/// literals the way upstream `rand` does.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u: f32 = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64. Fast, 256-bit state, passes
    /// BigCrush; deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-4.0f64..4.0);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
