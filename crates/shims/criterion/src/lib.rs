//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! The build environment has no registry access, so the workspace
//! replaces `criterion` with this path crate. It keeps the `[[bench]]`
//! targets compiling and genuinely useful: each benchmark is warmed up,
//! then timed with `std::time::Instant` over an adaptive iteration
//! count, and the median per-iteration latency is printed. There are no
//! statistical reports, plots, or baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (printed alongside
/// timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&name.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim sizes iteration
    /// counts adaptively instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_named(&full, self.throughput, f);
        self
    }

    /// Finishes the group (no-op; timings print as they run).
    pub fn finish(self) {}
}

/// Times the closure handed to it by [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Warm-up run that also calibrates the iteration count toward a
    // ~200 ms measurement window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed);
    }
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MB/s)", n as f64 / ns_per_iter * 1e3)
        }
        None => String::new(),
    };
    println!("bench {name:<48} {ns_per_iter:>14.1} ns/iter  ({iters} iters){rate}");
}

/// Declares a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.bench_function("shim/smoke", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        g.bench_function("grouped", |b| b.iter(|| black_box(3u64).pow(2)));
        g.finish();
    }
}
