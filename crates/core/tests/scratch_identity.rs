//! Warm-vs-cold bitwise identity for the scratch arenas (PR 5).
//!
//! Every platform keeps reusable working memory (per-cluster MVM
//! scratch, per-bank vector pads, residual-lane row sums, per-device
//! stripe buffers) that persists across solver iterations. These tests
//! pit a platform that reuses its scratch normally against a twin that
//! calls `clear_scratch()` before every kernel: the 2nd..Nth results
//! must be bit-identical in both modes, across host thread counts and
//! lane overlap, with read noise (RTN) enabled on the exact engine.

use memsci_core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
    MultiAcceleratorPlatform,
};
use memsci_solvers::platform::Platform;
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig};

const ROUNDS: usize = 3;

fn vectors(n: usize) -> Vec<Vec<f64>> {
    (0..ROUNDS)
        .map(|round| {
            (0..n)
                .map(|i| (i as f64 * 0.17 + round as f64 * 0.61).sin() + 1.1)
                .collect()
        })
        .collect()
}

/// Runs `rounds` of spmv + spmv_transpose on `warm` (scratch reused)
/// and `cold` (scratch dropped before every kernel), asserting bitwise
/// equality after each kernel.
fn assert_warm_cold_identical<P: Platform>(
    warm: &mut P,
    cold: &mut P,
    clear: impl Fn(&mut P),
    label: &str,
) {
    let n = warm.n();
    let mut yw = vec![0.0; n];
    let mut yc = vec![0.0; n];
    for (round, x) in vectors(n).iter().enumerate() {
        warm.spmv(x, &mut yw);
        clear(cold);
        cold.spmv(x, &mut yc);
        for (u, v) in yw.iter().zip(&yc) {
            assert_eq!(u.to_bits(), v.to_bits(), "spmv {label} round {round}");
        }
        warm.spmv_transpose(x, &mut yw);
        clear(cold);
        cold.spmv_transpose(x, &mut yc);
        for (u, v) in yw.iter().zip(&yc) {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "spmv_transpose {label} round {round}"
            );
        }
    }
    assert_eq!(
        warm.elapsed_seconds().to_bits(),
        cold.elapsed_seconds().to_bits(),
        "cost model {label}"
    );
}

fn config(threads: usize, overlap: bool) -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(threads);
    config.overlap = Some(overlap);
    config
}

#[test]
fn fast_engine_warm_scratch_is_bit_identical() {
    let a = poisson2d(14, 14);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    for threads in [1, 4] {
        for overlap in [false, true] {
            let mut warm = AcceleratorPlatform::new(&blocked, config(threads, overlap));
            let mut cold = AcceleratorPlatform::new(&blocked, config(threads, overlap));
            assert_warm_cold_identical(
                &mut warm,
                &mut cold,
                |p| p.clear_scratch(),
                &format!("fast t{threads} o{overlap}"),
            );
        }
    }
}

#[test]
fn exact_engine_warm_scratch_is_bit_identical() {
    let a = poisson2d(10, 10);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    // RTN on: the per-cluster noise streams must stay in lockstep
    // whether or not the MVM scratch is reused.
    let opts = ExactOptions {
        seed: 7,
        rtn_probability: 0.02,
        ..Default::default()
    };
    for threads in [1, 4] {
        for overlap in [false, true] {
            let mut warm =
                ExactAcceleratorPlatform::new(&blocked, config(threads, overlap), opts).unwrap();
            let mut cold =
                ExactAcceleratorPlatform::new(&blocked, config(threads, overlap), opts).unwrap();
            assert_warm_cold_identical(
                &mut warm,
                &mut cold,
                |p| p.clear_scratch(),
                &format!("exact t{threads} o{overlap}"),
            );
        }
    }
}

#[test]
fn multi_device_warm_scratch_is_bit_identical() {
    let a = poisson2d(14, 14);
    for threads in [1, 4] {
        let mut warm = MultiAcceleratorPlatform::new(&a, 3, config(threads, false), 2e-6);
        let mut cold = MultiAcceleratorPlatform::new(&a, 3, config(threads, false), 2e-6);
        assert_warm_cold_identical(
            &mut warm,
            &mut cold,
            |p| p.clear_scratch(),
            &format!("multi t{threads}"),
        );
    }
}
