//! Debug-only allocation regression gate for the warm SpMV hot path.
//!
//! This binary installs [`memsci_exec::alloc_counter::CountingAllocator`]
//! as its global allocator and measures steady-state (warm) allocations
//! per SpMV on both engines. The scratch-arena work of PR 5 drove these
//! to a small constant — a handful of bookkeeping vectors from the
//! pipeline and result collection, independent of matrix size. If a
//! change reintroduces per-iteration allocation (a stray `clone()`, a
//! fresh buffer in a lane), the counts jump well past the recorded
//! baselines and this gate fails. Release builds don't count and the
//! tests no-op.

use memsci_core::service::{EngineSpec, OperatorCache};
use memsci_core::{AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions};
use memsci_exec::alloc_counter::{allocation_count, counting, CountingAllocator};
use memsci_solvers::platform::Platform;
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig};
use memsci_telemetry::{self as telemetry, Counter};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Measured warm-path ceilings (allocations per kernel, single thread,
/// overlap off), with slack over the observed steady state (fast: 0,
/// exact: 4 — the per-bank outcome collections) so incidental churn
/// doesn't flake the gate. Before the scratch arenas these paths
/// allocated O(clusters + n) buffers per kernel (hundreds), so the gate
/// keeps an order of magnitude of discrimination.
const MAX_WARM_ALLOCS_FAST_SPMV: u64 = 4;
const MAX_WARM_ALLOCS_EXACT_SPMV: u64 = 12;

fn warm_allocs_per_iter<P: Platform>(acc: &mut P, iters: u64) -> u64 {
    let n = acc.n();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 1.1).collect();
    let mut y = vec![0.0; n];
    // Warm up: the first kernels grow every arena to capacity.
    for _ in 0..3 {
        acc.spmv(&x, &mut y);
    }
    let before = allocation_count();
    for _ in 0..iters {
        acc.spmv(&x, &mut y);
    }
    (allocation_count() - before) / iters
}

fn single_thread_config() -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(1);
    config.overlap = Some(false);
    config
}

#[test]
fn fast_engine_warm_spmv_allocations_stay_bounded() {
    if !counting() {
        return;
    }
    let a = poisson2d(14, 14);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc = AcceleratorPlatform::new(&blocked, single_thread_config());
    let per_iter = warm_allocs_per_iter(&mut acc, 64);
    assert!(
        per_iter <= MAX_WARM_ALLOCS_FAST_SPMV,
        "fast engine warm spmv allocates {per_iter}/iter, baseline {MAX_WARM_ALLOCS_FAST_SPMV}"
    );
}

/// Ceiling for a cache *hit*: fingerprint hashing plus LRU bookkeeping.
/// A miss programs the operator — thousands of allocations for even a
/// small Poisson system — so the gate discriminates by two orders of
/// magnitude.
const MAX_ALLOCS_CACHE_HIT: u64 = 64;

#[test]
fn cache_hit_is_zero_programming_work() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::reset();
    telemetry::enable();
    let a = poisson2d(14, 14);
    let cache = OperatorCache::with_capacity(2);
    let config = single_thread_config();
    cache
        .get_or_program(&a, &config, &EngineSpec::Fast)
        .unwrap();
    let base = telemetry::snapshot().counters;
    let before = allocation_count();
    let shared = cache
        .get_or_program(&a, &config, &EngineSpec::Fast)
        .unwrap();
    let hit_allocs = allocation_count() - before;
    let d = telemetry::snapshot().counters.delta_since(&base);
    assert_eq!(shared.n(), a.rows());
    assert_eq!(d.get(Counter::CacheHits), 1);
    assert_eq!(
        d.get(Counter::OperatorPrograms),
        0,
        "a hit must not program"
    );
    assert_eq!(
        d.get(Counter::WearWritesMax),
        0,
        "a hit must not wear cells"
    );
    if counting() {
        assert!(
            hit_allocs <= MAX_ALLOCS_CACHE_HIT,
            "cache hit allocated {hit_allocs} times, ceiling {MAX_ALLOCS_CACHE_HIT}"
        );
    }
    telemetry::disable();
    telemetry::reset();
}

#[test]
fn exact_engine_warm_spmv_allocations_stay_bounded() {
    if !counting() {
        return;
    }
    let a = poisson2d(10, 10);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc =
        ExactAcceleratorPlatform::new(&blocked, single_thread_config(), ExactOptions::default())
            .unwrap();
    let per_iter = warm_allocs_per_iter(&mut acc, 16);
    assert!(
        per_iter <= MAX_WARM_ALLOCS_EXACT_SPMV,
        "exact engine warm spmv allocates {per_iter}/iter, baseline {MAX_WARM_ALLOCS_EXACT_SPMV}"
    );
}
