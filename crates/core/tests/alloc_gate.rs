//! Debug-only allocation regression gate for the warm SpMV hot path.
//!
//! This binary installs [`memsci_exec::alloc_counter::CountingAllocator`]
//! as its global allocator and measures steady-state (warm) allocations
//! per SpMV on both engines. The scratch-arena work of PR 5 drove these
//! to a small constant — a handful of bookkeeping vectors from the
//! pipeline and result collection, independent of matrix size. If a
//! change reintroduces per-iteration allocation (a stray `clone()`, a
//! fresh buffer in a lane), the counts jump well past the recorded
//! baselines and this gate fails. Release builds don't count and the
//! tests no-op.

use memsci_core::{AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions};
use memsci_exec::alloc_counter::{allocation_count, counting, CountingAllocator};
use memsci_solvers::platform::Platform;
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Measured warm-path ceilings (allocations per kernel, single thread,
/// overlap off), with slack over the observed steady state (fast: 0,
/// exact: 4 — the per-bank outcome collections) so incidental churn
/// doesn't flake the gate. Before the scratch arenas these paths
/// allocated O(clusters + n) buffers per kernel (hundreds), so the gate
/// keeps an order of magnitude of discrimination.
const MAX_WARM_ALLOCS_FAST_SPMV: u64 = 4;
const MAX_WARM_ALLOCS_EXACT_SPMV: u64 = 12;

fn warm_allocs_per_iter<P: Platform>(acc: &mut P, iters: u64) -> u64 {
    let n = acc.n();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 1.1).collect();
    let mut y = vec![0.0; n];
    // Warm up: the first kernels grow every arena to capacity.
    for _ in 0..3 {
        acc.spmv(&x, &mut y);
    }
    let before = allocation_count();
    for _ in 0..iters {
        acc.spmv(&x, &mut y);
    }
    (allocation_count() - before) / iters
}

fn single_thread_config() -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(1);
    config.overlap = Some(false);
    config
}

#[test]
fn fast_engine_warm_spmv_allocations_stay_bounded() {
    if !counting() {
        return;
    }
    let a = poisson2d(14, 14);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc = AcceleratorPlatform::new(&blocked, single_thread_config());
    let per_iter = warm_allocs_per_iter(&mut acc, 64);
    assert!(
        per_iter <= MAX_WARM_ALLOCS_FAST_SPMV,
        "fast engine warm spmv allocates {per_iter}/iter, baseline {MAX_WARM_ALLOCS_FAST_SPMV}"
    );
}

#[test]
fn exact_engine_warm_spmv_allocations_stay_bounded() {
    if !counting() {
        return;
    }
    let a = poisson2d(10, 10);
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    let mut acc =
        ExactAcceleratorPlatform::new(&blocked, single_thread_config(), ExactOptions::default())
            .unwrap();
    let per_iter = warm_allocs_per_iter(&mut acc, 16);
    assert!(
        per_iter <= MAX_WARM_ALLOCS_EXACT_SPMV,
        "exact engine warm spmv allocates {per_iter}/iter, baseline {MAX_WARM_ALLOCS_EXACT_SPMV}"
    );
}
