//! Zero-fault identity (PR 7): arming the reliability subsystem with a
//! fault model whose knobs are all inert must cost nothing — every
//! engine's outputs, modelled time, and modelled energy stay bitwise
//! identical to the pre-fault default configuration.
//!
//! "Inert" is stricter than "absent": the model below carries nonzero
//! drift and endurance coefficients, but at write age 0 and reprogram
//! count 0 both factors are exactly 1.0, stuck rates of 0 draw no RNG,
//! and a positive retry budget arms detection without changing the
//! clean-read path.

use memsci_core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
    MultiAcceleratorPlatform,
};
use memsci_solvers::platform::Platform;
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig, Csr};
use memsci_xbar::{CellSpec, FaultModel};

fn matrix() -> Csr {
    poisson2d(14, 14)
}

/// A fault model that is switched on (`is_active` at the spec level)
/// but mathematically inert for a freshly programmed operator.
fn inert_armed_cell() -> CellSpec {
    CellSpec::default().with_fault(
        FaultModel::none()
            .with_stuck_rates(0.0, 0.0)
            .with_drift_coefficient(0.01)
            .with_endurance_sigma_growth(0.05),
    )
}

fn probe(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37).sin() * (2.0f64).powi(-((i % 6) as i32) * 9) + 0.5)
        .collect()
}

fn assert_identical<P: Platform>(base: &mut P, armed: &mut P, label: &str) {
    let n = base.n();
    let x = probe(n);
    let mut yb = vec![0.0; n];
    let mut ya = vec![0.0; n];
    for _ in 0..3 {
        base.spmv(&x, &mut yb);
        armed.spmv(&x, &mut ya);
    }
    for (i, (u, v)) in yb.iter().zip(&ya).enumerate() {
        assert_eq!(u.to_bits(), v.to_bits(), "{label} row {i}");
    }
    assert_eq!(
        base.elapsed_seconds().to_bits(),
        armed.elapsed_seconds().to_bits(),
        "modelled time {label}"
    );
    assert_eq!(
        base.energy_joules().to_bits(),
        armed.energy_joules().to_bits(),
        "modelled energy {label}"
    );
}

#[test]
fn fast_engine_is_bit_identical_with_inert_fault_model() {
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    let mut base = AcceleratorPlatform::new(&blocked, AcceleratorConfig::with_banks(4));
    let mut config = AcceleratorConfig::with_banks(4);
    config.cell = inert_armed_cell();
    let mut armed = AcceleratorPlatform::new(&blocked, config);
    assert_identical(&mut base, &mut armed, "fast");
}

#[test]
fn exact_engine_is_bit_identical_with_inert_fault_model() {
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    // With and without read noise: the inert model must not perturb
    // the per-cluster RNG streams. (The retry budget stays at its
    // default here — with RTN upsets firing AN detections, an armed
    // repair lane would rightly change behaviour; that is its job.)
    for rtn in [0.0, 0.02] {
        let opts = ExactOptions {
            seed: 17,
            rtn_probability: rtn,
            ..Default::default()
        };
        let mut base =
            ExactAcceleratorPlatform::new(&blocked, AcceleratorConfig::with_banks(4), opts)
                .unwrap();
        let mut config = AcceleratorConfig::with_banks(4);
        config.cell = inert_armed_cell();
        let mut armed = ExactAcceleratorPlatform::new(&blocked, config, opts).unwrap();
        assert_identical(&mut base, &mut armed, &format!("exact rtn={rtn}"));
        assert_eq!(armed.stuck_cells(), 0, "no stuck cells drawn at rate 0");
    }
}

#[test]
fn exact_engine_is_bit_identical_with_retry_budget_armed_on_clean_reads() {
    // A positive retry budget arms detection-triggered repair, but on a
    // clean run (no noise, no faults) nothing may fire and the output
    // must stay bitwise identical to the pre-fault default.
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    let mut base = ExactAcceleratorPlatform::new(
        &blocked,
        AcceleratorConfig::with_banks(4),
        ExactOptions {
            seed: 17,
            ..Default::default()
        },
    )
    .unwrap();
    let mut config = AcceleratorConfig::with_banks(4);
    config.cell = inert_armed_cell();
    let mut armed = ExactAcceleratorPlatform::new(
        &blocked,
        config,
        ExactOptions {
            seed: 17,
            retry_limit: 3,
            write_age: 0,
            ..Default::default()
        },
    )
    .unwrap();
    assert_identical(&mut base, &mut armed, "exact retry armed");
    assert_eq!(armed.cluster_reprograms, 0, "no repairs on a clean run");
    assert_eq!(armed.retries_exhausted, 0);
}

#[test]
fn multi_device_engine_is_bit_identical_with_inert_fault_model() {
    let a = matrix();
    let mut base = MultiAcceleratorPlatform::new(&a, 3, AcceleratorConfig::with_banks(2), 2e-6);
    let mut config = AcceleratorConfig::with_banks(2);
    config.cell = inert_armed_cell();
    let mut armed = MultiAcceleratorPlatform::new(&a, 3, config, 2e-6);
    assert_identical(&mut base, &mut armed, "multi");
}
