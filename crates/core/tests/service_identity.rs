//! Concurrent-session identity (PR 9).
//!
//! The operator/session split exists for sharing, not for different
//! answers: k solves fanned out over host threads against one cached
//! operator must reproduce, bit for bit, the solutions and modelled
//! costs of k sequential solves on freshly-programmed platforms — on
//! every engine, across host thread counts and lane overlap, with read
//! noise enabled on the exact engine. Telemetry tests pin down the
//! sharing itself: a k = 8 concurrent run programs the operator exactly
//! once and reports exactly seven cache hits.

use memsci_core::service::{solve_concurrent, EngineSpec, OperatorCache};
use memsci_core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
    MultiAcceleratorPlatform, Target,
};
use memsci_solvers::cg::cg;
use memsci_solvers::platform::Platform;
use memsci_solvers::report::{SolveOptions, SolveReport};
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig, Csr};
use memsci_telemetry::{self as telemetry, Counter};

const K: usize = 4;

fn matrix() -> Csr {
    poisson2d(14, 14)
}

fn config(threads: usize, overlap: bool) -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(threads);
    config.overlap = Some(overlap);
    config
}

fn rhs_set(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (i as f64 * 0.19 + j as f64 * 0.83).sin() + 0.7)
                .collect()
        })
        .collect()
}

fn solve_opts() -> SolveOptions {
    SolveOptions::with_tol(1e-9)
}

/// Solves every RHS sequentially, each on its own freshly-built
/// platform produced by `fresh` — the reference the concurrent fan-out
/// must reproduce bitwise.
fn sequential_reference<P: Platform>(
    fresh: impl Fn() -> P,
    rhs: &[Vec<f64>],
) -> Vec<(Vec<f64>, SolveReport)> {
    rhs.iter()
        .map(|b| {
            let mut platform = fresh();
            let mut x = vec![0.0; b.len()];
            let report = cg(&mut platform, b, &mut x, &solve_opts());
            (x, report)
        })
        .collect()
}

fn assert_bitwise_identical(
    want: &[(Vec<f64>, SolveReport)],
    got: &memsci_core::ConcurrentOutcome,
    label: &str,
) {
    assert_eq!(got.target, Target::Accelerator, "{label}");
    assert_eq!(want.len(), got.solves.len(), "{label}");
    for (j, ((wx, wrep), solve)) in want.iter().zip(&got.solves).enumerate() {
        assert_eq!(
            wrep.converged, solve.report.converged,
            "{label} rhs {j} convergence flag"
        );
        assert_eq!(wx.len(), solve.x.len(), "{label} rhs {j}");
        for (u, v) in wx.iter().zip(&solve.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "{label} rhs {j}");
        }
        assert_eq!(
            wrep.iterations, solve.report.iterations,
            "{label} rhs {j} iterations"
        );
        assert_eq!(
            wrep.time_seconds.to_bits(),
            solve.report.time_seconds.to_bits(),
            "{label} rhs {j} modelled time"
        );
        assert_eq!(
            wrep.energy_joules.to_bits(),
            solve.report.energy_joules.to_bits(),
            "{label} rhs {j} modelled energy"
        );
    }
}

#[test]
fn fast_concurrent_is_bit_identical_to_sequential() {
    let a = matrix();
    let rhs = rhs_set(a.rows(), K);
    for threads in [1, 4] {
        for overlap in [false, true] {
            let cfg = config(threads, overlap);
            let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
            let want =
                sequential_reference(|| AcceleratorPlatform::new(&blocked, cfg.clone()), &rhs);
            let cache = OperatorCache::with_capacity(2);
            let got =
                solve_concurrent(&cache, &a, &cfg, &EngineSpec::Fast, &rhs, &solve_opts()).unwrap();
            assert_bitwise_identical(
                &want,
                &got,
                &format!("fast threads={threads} overlap={overlap}"),
            );
            assert_eq!(cache.stats().misses, 1);
            assert_eq!(cache.stats().hits, (K - 1) as u64);
        }
    }
}

#[test]
fn exact_concurrent_is_bit_identical_to_sequential() {
    // Read noise draws from per-cluster streams that sessions re-seed
    // from the operator's seed and each cluster's build index, so even
    // the noisy path must agree bitwise with fresh sequential builds.
    let a = matrix();
    let rhs = rhs_set(a.rows(), K);
    for rtn in [0.0, 0.02] {
        for threads in [1, 4] {
            for overlap in [false, true] {
                let cfg = config(threads, overlap);
                let opts = ExactOptions {
                    seed: 11,
                    rtn_probability: rtn,
                    ..Default::default()
                };
                let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
                let want = sequential_reference(
                    || ExactAcceleratorPlatform::new(&blocked, cfg.clone(), opts).unwrap(),
                    &rhs,
                );
                let cache = OperatorCache::with_capacity(2);
                let got = solve_concurrent(
                    &cache,
                    &a,
                    &cfg,
                    &EngineSpec::Exact(opts),
                    &rhs,
                    &solve_opts(),
                )
                .unwrap();
                assert_bitwise_identical(
                    &want,
                    &got,
                    &format!("exact rtn={rtn} threads={threads} overlap={overlap}"),
                );
            }
        }
    }
}

#[test]
fn multi_concurrent_is_bit_identical_to_sequential() {
    let a = matrix();
    let rhs = rhs_set(a.rows(), K);
    for threads in [1, 4] {
        let cfg = config(threads, false);
        let want = sequential_reference(
            || MultiAcceleratorPlatform::new(&a, 3, cfg.clone(), 2e-6),
            &rhs,
        );
        let cache = OperatorCache::with_capacity(2);
        let engine = EngineSpec::Multi {
            devices: 3,
            sync_time: 2e-6,
        };
        let got = solve_concurrent(&cache, &a, &cfg, &engine, &rhs, &solve_opts()).unwrap();
        assert_bitwise_identical(&want, &got, &format!("multi threads={threads}"));
    }
}

#[test]
fn eight_concurrent_solves_program_once_and_hit_seven_times() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::reset();
    telemetry::enable();
    let a = matrix();
    let rhs = rhs_set(a.rows(), 8);
    let cache = OperatorCache::with_capacity(2);
    let base = telemetry::snapshot().counters;
    let got = solve_concurrent(
        &cache,
        &a,
        &config(4, false),
        &EngineSpec::Fast,
        &rhs,
        &solve_opts(),
    )
    .unwrap();
    let d = telemetry::snapshot().counters.delta_since(&base);
    assert_eq!(got.solves.len(), 8);
    // One programming serves all eight solves.
    assert_eq!(d.get(Counter::OperatorPrograms), 1, "program exactly once");
    assert_eq!(d.get(Counter::CacheLookups), 8);
    assert_eq!(d.get(Counter::CacheMisses), 1);
    assert_eq!(d.get(Counter::CacheHits), 7, "seven of eight lookups hit");
    assert_eq!(d.get(Counter::CacheEvictions), 0);
    let stats = cache.stats();
    assert_eq!(stats.lookups, 8);
    assert_eq!(stats.hits, 7);
    assert_eq!(stats.misses, 1);
    telemetry::disable();
    telemetry::reset();
}

#[test]
fn evictions_are_counted_and_bounded_by_misses() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::reset();
    telemetry::enable();
    let cache = OperatorCache::with_capacity(1);
    let cfg = config(1, false);
    let a1 = poisson2d(8, 8);
    let a2 = poisson2d(9, 9);
    let base = telemetry::snapshot().counters;
    // Thrash a capacity-1 cache: every alternation reprograms and
    // evicts the resident operator.
    for _ in 0..2 {
        cache.get_or_program(&a1, &cfg, &EngineSpec::Fast).unwrap();
        cache.get_or_program(&a2, &cfg, &EngineSpec::Fast).unwrap();
    }
    let d = telemetry::snapshot().counters.delta_since(&base);
    assert_eq!(d.get(Counter::CacheLookups), 4);
    assert_eq!(d.get(Counter::CacheMisses), 4);
    assert_eq!(d.get(Counter::CacheHits), 0);
    assert_eq!(
        d.get(Counter::CacheEvictions),
        3,
        "each insert after the first evicts"
    );
    assert!(d.get(Counter::CacheEvictions) <= d.get(Counter::CacheMisses));
    assert_eq!(
        d.get(Counter::OperatorPrograms),
        d.get(Counter::CacheMisses),
        "every miss programs exactly one operator"
    );
    telemetry::disable();
    telemetry::reset();
}
