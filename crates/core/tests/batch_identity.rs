//! Batched multi-RHS SpMV identity (PR 6).
//!
//! `spmv_batch` exists for amortization, not for different answers:
//! one batched kernel must reproduce k solo kernels bit for bit —
//! outputs, modelled time, and modelled energy — on every platform,
//! across host thread counts and lane overlap, with read noise (RTN)
//! enabled on the exact engine. A telemetry test pins down the
//! amortization itself: a k = 8 batch programs the operator exactly
//! once and fans its shards out exactly once.

use memsci_core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
    MultiAcceleratorPlatform,
};
use memsci_solvers::platform::Platform;
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig, Csr};
use memsci_telemetry::{self as telemetry, Counter};

const K: usize = 5;

fn batch_vectors(n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|j| {
            (0..n)
                .map(|i| (i as f64 * 0.23 + j as f64 * 0.71).sin() + 0.9)
                .collect()
        })
        .collect()
}

/// Runs the same batch through `solo` (k sequential `spmv` calls) and
/// `batched` (one `spmv_batch` call), asserting bitwise equality of
/// every output vector and of the modelled cost.
fn assert_batch_identical<P: Platform>(solo: &mut P, batched: &mut P, k: usize, label: &str) {
    let n = solo.n();
    let xs = batch_vectors(n, k);
    let mut solo_ys = vec![vec![0.0; n]; k];
    for (x, y) in xs.iter().zip(solo_ys.iter_mut()) {
        solo.spmv(x, y);
    }
    let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
    let mut batch_ys = vec![Vec::new(); k];
    batched.spmv_batch(&x_refs, &mut batch_ys);
    for (j, (want, got)) in solo_ys.iter().zip(&batch_ys).enumerate() {
        assert_eq!(want.len(), got.len(), "{label} rhs {j}");
        for (u, v) in want.iter().zip(got) {
            assert_eq!(u.to_bits(), v.to_bits(), "{label} rhs {j}");
        }
    }
    assert_eq!(
        solo.elapsed_seconds().to_bits(),
        batched.elapsed_seconds().to_bits(),
        "modelled time {label}"
    );
    assert_eq!(
        solo.energy_joules().to_bits(),
        batched.energy_joules().to_bits(),
        "modelled energy {label}"
    );
}

fn config(threads: usize, overlap: bool) -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(threads);
    config.overlap = Some(overlap);
    config
}

fn matrix() -> Csr {
    poisson2d(14, 14)
}

#[test]
fn fast_engine_batch_is_bit_identical_to_solo() {
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    for threads in [1, 4] {
        for overlap in [false, true] {
            let mut solo = AcceleratorPlatform::new(&blocked, config(threads, overlap));
            let mut batched = AcceleratorPlatform::new(&blocked, config(threads, overlap));
            assert_batch_identical(
                &mut solo,
                &mut batched,
                K,
                &format!("fast threads={threads} overlap={overlap}"),
            );
        }
    }
}

#[test]
fn exact_engine_batch_is_bit_identical_to_solo() {
    // Read noise draws from per-cluster streams: a batch walks each
    // cluster's stream in the same order as k solo kernels, so even
    // the noisy path must agree bitwise.
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    for rtn in [0.0, 0.02] {
        for threads in [1, 4] {
            for overlap in [false, true] {
                let opts = ExactOptions {
                    seed: 11,
                    rtn_probability: rtn,
                    ..Default::default()
                };
                let mut solo =
                    ExactAcceleratorPlatform::new(&blocked, config(threads, overlap), opts)
                        .unwrap();
                let mut batched =
                    ExactAcceleratorPlatform::new(&blocked, config(threads, overlap), opts)
                        .unwrap();
                assert_batch_identical(
                    &mut solo,
                    &mut batched,
                    K,
                    &format!("exact rtn={rtn} threads={threads} overlap={overlap}"),
                );
            }
        }
    }
}

#[test]
fn multi_device_batch_is_bit_identical_to_solo() {
    let a = matrix();
    for threads in [1, 4] {
        let mut solo = MultiAcceleratorPlatform::new(&a, 3, config(threads, false), 2e-6);
        let mut batched = MultiAcceleratorPlatform::new(&a, 3, config(threads, false), 2e-6);
        assert_batch_identical(
            &mut solo,
            &mut batched,
            K,
            &format!("multi threads={threads}"),
        );
    }
}

#[test]
fn batch_of_one_matches_spmv_exactly() {
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    let mut solo = AcceleratorPlatform::new(&blocked, config(2, false));
    let mut batched = AcceleratorPlatform::new(&blocked, config(2, false));
    assert_batch_identical(&mut solo, &mut batched, 1, "fast k=1");
    let opts = ExactOptions {
        seed: 3,
        rtn_probability: 0.01,
        ..Default::default()
    };
    let mut solo = ExactAcceleratorPlatform::new(&blocked, config(2, false), opts).unwrap();
    let mut batched = ExactAcceleratorPlatform::new(&blocked, config(2, false), opts).unwrap();
    assert_batch_identical(&mut solo, &mut batched, 1, "exact k=1");
}

#[test]
fn exact_batch_programs_the_operator_once_for_eight_rhs() {
    let _guard = telemetry::exclusive_for_tests();
    telemetry::reset();
    telemetry::enable();
    let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
    let base = telemetry::snapshot().counters;
    let mut acc =
        ExactAcceleratorPlatform::new(&blocked, config(2, false), ExactOptions::default()).unwrap();
    let built = telemetry::snapshot().counters.delta_since(&base);
    assert_eq!(
        built.get(Counter::OperatorPrograms),
        1,
        "one build programs the operator once"
    );

    let n = acc.n();
    let xs = batch_vectors(n, 8);
    let x_refs: Vec<&[f64]> = xs.iter().map(|x| x.as_slice()).collect();
    let mut ys = vec![Vec::new(); 8];
    let before = telemetry::snapshot().counters;
    acc.spmv_batch(&x_refs, &mut ys);
    let d = telemetry::snapshot().counters.delta_since(&before);
    // The batch streams all eight vectors through the already-
    // programmed crossbars: no new programming, one batched kernel,
    // one shard fan-out, eight logical MVMs.
    assert_eq!(d.get(Counter::OperatorPrograms), 0, "no reprogramming");
    assert_eq!(d.get(Counter::BatchMvmOps), 1);
    assert_eq!(d.get(Counter::BatchRhsVectors), 8);
    assert_eq!(d.get(Counter::SpmvOps), 8);

    // The shard fan-out is also amortized: the batch dispatches each
    // populated bank shard once, exactly like a single solo kernel —
    // not eight times.
    let before_solo = telemetry::snapshot().counters;
    let mut y = vec![0.0; n];
    acc.spmv(&xs[0], &mut y);
    let solo = telemetry::snapshot().counters.delta_since(&before_solo);
    assert!(solo.get(Counter::BankShardTasks) > 0);
    assert_eq!(
        d.get(Counter::BankShardTasks),
        solo.get(Counter::BankShardTasks),
        "batch shard fan-out should match one solo kernel"
    );
    telemetry::disable();
    telemetry::reset();
}
