//! Tracing-identity gates (PR 8).
//!
//! Timeline tracing is observability, not physics: turning the trace
//! ring on must not perturb a single output bit of any engine's solve
//! — outputs, modelled time, and modelled energy all stay bitwise
//! identical to an untraced run, with read noise (RTN) enabled on the
//! exact engine. A second gate pins the overlap story the trace
//! exists to show: with the residual lane overlapped, the
//! `cluster_mvm` and `residual_csr` stage spans land on distinct
//! thread ids.

use memsci_core::{
    AcceleratorConfig, AcceleratorPlatform, ExactAcceleratorPlatform, ExactOptions,
    MultiAcceleratorPlatform,
};
use memsci_solvers::platform::Platform;
use memsci_solvers::{cg::cg, SolveOptions};
use memsci_sparse::generate::poisson2d;
use memsci_sparse::{BlockedMatrix, BlockingConfig, Csr};
use memsci_telemetry::{self as telemetry, trace};

fn matrix() -> Csr {
    poisson2d(14, 14)
}

fn config() -> AcceleratorConfig {
    let mut config = AcceleratorConfig::with_banks(4);
    config.threads = Some(2);
    config.overlap = Some(true);
    config
}

/// One CG solve plus one solo SpMV; returns every bit the run
/// produced: solution, SpMV output, iterations, modelled time and
/// energy (as bits, for exact comparison).
fn solve_fingerprint<P: Platform>(p: &mut P) -> (Vec<u64>, Vec<u64>, usize, u64, u64) {
    let n = p.n();
    let b = vec![1.0; n];
    let mut x = vec![0.0; n];
    let report = cg(p, &b, &mut x, &SolveOptions::with_tol(1e-8).max_iters(50));
    let wide: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() + 1.2).collect();
    let mut y = vec![0.0; n];
    p.spmv(&wide, &mut y);
    (
        x.iter().map(|v| v.to_bits()).collect(),
        y.iter().map(|v| v.to_bits()).collect(),
        report.iterations,
        p.elapsed_seconds().to_bits(),
        p.energy_joules().to_bits(),
    )
}

/// Runs `build` twice — traced and untraced — and asserts the
/// fingerprints are identical.
fn assert_trace_invisible<P: Platform>(mut build: impl FnMut() -> P, label: &str) {
    trace::shutdown();
    let untraced = solve_fingerprint(&mut build());
    trace::enable();
    trace::clear();
    let traced = solve_fingerprint(&mut build());
    trace::shutdown();
    assert_eq!(untraced, traced, "{label}: tracing perturbed the solve");
}

#[test]
fn tracing_does_not_perturb_any_engine() {
    let _guard = telemetry::exclusive_for_tests();
    let a = matrix();
    let blocked = BlockedMatrix::block(&a, &BlockingConfig::default());
    assert_trace_invisible(|| AcceleratorPlatform::new(&blocked, config()), "fast");
    assert_trace_invisible(
        || {
            ExactAcceleratorPlatform::new(
                &blocked,
                config(),
                ExactOptions {
                    seed: 11,
                    rtn_probability: 0.02,
                    ..Default::default()
                },
            )
            .unwrap()
        },
        "exact",
    );
    assert_trace_invisible(
        || MultiAcceleratorPlatform::new(&a, 3, config(), 2e-6),
        "multi",
    );
}

#[test]
fn overlapped_stage_lanes_trace_on_distinct_tids() {
    let _guard = telemetry::exclusive_for_tests();
    trace::shutdown();
    trace::enable();
    trace::clear();
    {
        // Overlap is forced on in `config()`, so every kernel's
        // residual lane runs on a fresh scoped thread.
        let blocked = BlockedMatrix::block(&matrix(), &BlockingConfig::default());
        let mut fast = AcceleratorPlatform::new(&blocked, config());
        let n = fast.n();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        for _ in 0..3 {
            fast.spmv(&x, &mut y);
        }
    }
    trace::disable();
    let doc = trace::export_chrome();
    trace::shutdown();
    let summary = telemetry::validate_trace(&doc.to_string_pretty()).expect("trace validates");
    let cluster = summary
        .tids_by_name
        .get(memsci_core::pipeline::STAGE_CLUSTER)
        .expect("cluster lane traced");
    let residual = summary
        .tids_by_name
        .get(memsci_core::pipeline::STAGE_RESIDUAL)
        .expect("residual lane traced");
    assert!(
        cluster.is_disjoint(residual),
        "overlapped lanes should trace on distinct tids: cluster {cluster:?}, residual {residual:?}"
    );
    assert!(summary.tids.len() >= 2, "expected thread fan-out");
}
