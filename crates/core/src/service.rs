//! Shareable programmed operators: a fingerprint-keyed operator cache
//! and concurrent solve sessions.
//!
//! Programming a matrix into the crossbars is the dominant setup cost
//! of the accelerator (§III): every cell write costs time, energy and
//! endurance. The operator/session split lets the expensive programmed
//! state — [`FastOperator`](crate::engine::FastOperator),
//! [`ExactOperator`](crate::exact::ExactOperator),
//! [`MultiOperator`](crate::multi::MultiOperator) — be programmed once
//! and shared read-only across any number of solves, each of which owns
//! only its cheap per-session state (scratch arenas, read-noise
//! streams, cost accumulators).
//!
//! This module adds the system layer on top of that split:
//!
//! * [`OperatorCache`] — an LRU cache keyed by a content fingerprint of
//!   (matrix, configuration, engine), so repeated solves against the
//!   same operator skip programming entirely. Lookups, hits, misses and
//!   evictions are published through the telemetry counters
//!   `cache_lookups` / `cache_hits` / `cache_misses` /
//!   `cache_evictions`.
//! * [`solve_concurrent`] — runs k independent CG solves against one
//!   cached operator on scoped host threads, routed through
//!   [`choose_target`](crate::dispatch::choose_target) like any other
//!   solve (poorly-blocking matrices still fall back to the GPU
//!   model). Every concurrent solution is bitwise identical to the
//!   solve a freshly-programmed sequential platform produces, because
//!   sessions re-derive their read-noise streams from the operator's
//!   seed and cluster build indices — never from shared mutable state.

use std::sync::{Arc, Mutex};

use memsci_gpu::GpuPlatform;
use memsci_numeric::align::AlignError;
use memsci_solvers::cg::cg;
use memsci_solvers::platform::Platform;
use memsci_solvers::report::{SolveOptions, SolveReport};
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::Csr;

use crate::config::AcceleratorConfig;
use crate::dispatch::{choose_target, Target};
use crate::engine::{AcceleratorPlatform, FastOperator};
use crate::exact::{ExactAcceleratorPlatform, ExactOperator, ExactOptions};
use crate::multi::{MultiAcceleratorPlatform, MultiOperator};

/// Which accelerator engine a cached operator is programmed for.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// The fast analytic engine ([`crate::engine::AcceleratorPlatform`]).
    Fast,
    /// The bit-exact simulation engine with its options
    /// ([`crate::exact::ExactAcceleratorPlatform`]).
    Exact(ExactOptions),
    /// The multi-device ensemble ([`crate::multi::MultiAcceleratorPlatform`]).
    Multi {
        /// Number of participating accelerators.
        devices: usize,
        /// Seconds per inter-accelerator exchange.
        sync_time: f64,
    },
}

/// A programmed operator shared behind [`Arc`]s: the cacheable,
/// `Send + Sync` half of a platform.
#[derive(Debug, Clone)]
pub enum SharedOperator {
    /// A fast-engine operator.
    Fast(Arc<FastOperator>),
    /// A bit-exact operator.
    Exact(Arc<ExactOperator>),
    /// A multi-device ensemble operator.
    Multi(Arc<MultiOperator>),
}

impl SharedOperator {
    /// Opens a fresh solve session over this operator. No crossbar
    /// writes happen: sessions only allocate scratch state and re-seed
    /// their deterministic noise streams.
    pub fn open_session(&self) -> SessionPlatform {
        match self {
            SharedOperator::Fast(op) => {
                SessionPlatform::Fast(AcceleratorPlatform::from_operator(Arc::clone(op)))
            }
            SharedOperator::Exact(op) => {
                SessionPlatform::Exact(ExactAcceleratorPlatform::from_operator(Arc::clone(op)))
            }
            SharedOperator::Multi(op) => {
                SessionPlatform::Multi(MultiAcceleratorPlatform::from_operator(Arc::clone(op)))
            }
        }
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        match self {
            SharedOperator::Fast(op) => op.n(),
            SharedOperator::Exact(op) => op.n(),
            SharedOperator::Multi(op) => op.n(),
        }
    }
}

/// One solve session: a [`Platform`] over a shared operator (or the
/// GPU fallback), uniform across engines so callers can hold sessions
/// of any engine behind one type.
#[derive(Debug)]
pub enum SessionPlatform {
    /// Fast-engine session.
    Fast(AcceleratorPlatform),
    /// Bit-exact session.
    Exact(ExactAcceleratorPlatform),
    /// Multi-device session.
    Multi(MultiAcceleratorPlatform),
    /// GPU-fallback session (owns its matrix; nothing is programmed).
    Gpu(GpuPlatform),
}

macro_rules! delegate {
    ($self:ident, $p:ident => $e:expr) => {
        match $self {
            SessionPlatform::Fast($p) => $e,
            SessionPlatform::Exact($p) => $e,
            SessionPlatform::Multi($p) => $e,
            SessionPlatform::Gpu($p) => $e,
        }
    };
}

impl Platform for SessionPlatform {
    fn n(&self) -> usize {
        delegate!(self, p => p.n())
    }
    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        delegate!(self, p => p.spmv(x, y))
    }
    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        delegate!(self, p => p.spmv_transpose(x, y))
    }
    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        delegate!(self, p => p.spmv_batch(xs, ys))
    }
    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        delegate!(self, p => p.dot(x, y))
    }
    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        delegate!(self, p => p.axpby(alpha, x, beta, y))
    }
    fn axpy(&mut self, alpha: f64, x: &[f64], y: &mut [f64]) {
        delegate!(self, p => p.axpy(alpha, x, y))
    }
    fn assign(&mut self, src: &[f64], dst: &mut [f64]) {
        delegate!(self, p => p.assign(src, dst))
    }
    fn norm(&mut self, x: &[f64]) -> f64 {
        delegate!(self, p => p.norm(x))
    }
    fn diagonal(&self) -> Arc<[f64]> {
        delegate!(self, p => p.diagonal())
    }
    fn elapsed_seconds(&self) -> f64 {
        delegate!(self, p => p.elapsed_seconds())
    }
    fn energy_joules(&self) -> f64 {
        delegate!(self, p => p.energy_joules())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

/// Content fingerprint of (matrix, configuration, engine): the cache
/// key. Covers every non-zero's position and value bits plus the full
/// configuration and engine options, except the host execution knobs
/// (`threads`, `overlap`) — those change neither the programmed
/// crossbars nor any result or modelled cost, only host wall-clock.
pub fn operator_fingerprint(a: &Csr, config: &AcceleratorConfig, engine: &EngineSpec) -> u64 {
    let mut h = Fnv::new();
    let (rows, cols) = a.shape();
    h.u64(rows as u64);
    h.u64(cols as u64);
    h.u64(a.nnz() as u64);
    for (r, c, v) in a.iter() {
        h.u64(r as u64);
        h.u64(c as u64);
        h.u64(v.to_bits());
    }
    // The Debug forms cover every field of the nested config and
    // options structs; f64 Debug is shortest-roundtrip, so distinct
    // values render distinctly.
    let mut normalized = config.clone();
    normalized.threads = None;
    normalized.overlap = None;
    h.str(&format!("{normalized:?}"));
    h.str(&format!("{engine:?}"));
    h.0
}

/// Counter snapshot of one [`OperatorCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `get_or_program` calls, hit or miss.
    pub lookups: u64,
    /// Lookups served by an already-programmed resident operator.
    pub hits: u64,
    /// Lookups that had to program the operator.
    pub misses: u64,
    /// Operators evicted by the LRU policy.
    pub evictions: u64,
}

struct CacheInner {
    /// LRU order: least-recently-used first, most-recent last.
    entries: Vec<(u64, SharedOperator)>,
    stats: CacheStats,
}

/// A fingerprint-keyed LRU cache of programmed operators.
///
/// Each `get_or_program` either returns a resident operator (a hit:
/// zero programming work, zero crossbar writes) or programs a new one
/// under the cache lock (a miss) and makes it resident, evicting the
/// least-recently-used operator if the cache is over capacity.
///
/// # Examples
///
/// ```
/// use memsci_core::service::{EngineSpec, OperatorCache};
/// use memsci_core::AcceleratorConfig;
/// use memsci_sparse::generate::poisson2d;
///
/// let a = poisson2d(16, 16);
/// let cache = OperatorCache::with_capacity(2);
/// let config = AcceleratorConfig::default();
/// let op1 = cache.get_or_program(&a, &config, &EngineSpec::Fast).unwrap();
/// let op2 = cache.get_or_program(&a, &config, &EngineSpec::Fast).unwrap();
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(op1.n(), op2.n());
/// ```
pub struct OperatorCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for OperatorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("cache lock");
        f.debug_struct("OperatorCache")
            .field("capacity", &self.capacity)
            .field("resident", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl OperatorCache {
    /// A cache holding at most `capacity` programmed operators.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot hold anything");
        OperatorCache {
            capacity,
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Maximum number of resident operators.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of operators currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when no operator is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup / hit / miss / eviction counts so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Returns the operator programmed for `(a, config, engine)`,
    /// programming it first if it is not resident. Programming happens
    /// under the cache lock, so concurrent callers of the same key
    /// program exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`AlignError`] if the exact engine rejects a non-finite
    /// blocked value.
    pub fn get_or_program(
        &self,
        a: &Csr,
        config: &AcceleratorConfig,
        engine: &EngineSpec,
    ) -> Result<SharedOperator, AlignError> {
        let key = operator_fingerprint(a, config, engine);
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stats.lookups += 1;
        memsci_telemetry::incr(memsci_telemetry::Counter::CacheLookups, 1);
        if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
            inner.stats.hits += 1;
            memsci_telemetry::incr(memsci_telemetry::Counter::CacheHits, 1);
            // Freshen: move to the most-recently-used slot.
            let entry = inner.entries.remove(pos);
            let op = entry.1.clone();
            inner.entries.push(entry);
            return Ok(op);
        }
        inner.stats.misses += 1;
        memsci_telemetry::incr(memsci_telemetry::Counter::CacheMisses, 1);
        let op = match engine {
            EngineSpec::Fast => {
                let blocked = BlockedMatrix::block(a, &BlockingConfig::default());
                SharedOperator::Fast(Arc::new(FastOperator::program(&blocked, config.clone())))
            }
            EngineSpec::Exact(opts) => {
                let blocked = BlockedMatrix::block(a, &BlockingConfig::default());
                SharedOperator::Exact(Arc::new(ExactOperator::program(
                    &blocked,
                    config.clone(),
                    *opts,
                )?))
            }
            EngineSpec::Multi { devices, sync_time } => SharedOperator::Multi(Arc::new(
                MultiOperator::program(a, *devices, config.clone(), *sync_time),
            )),
        };
        inner.entries.push((key, op.clone()));
        if inner.entries.len() > self.capacity {
            inner.entries.remove(0);
            inner.stats.evictions += 1;
            memsci_telemetry::incr(memsci_telemetry::Counter::CacheEvictions, 1);
        }
        Ok(op)
    }
}

/// One solve's outcome within a [`solve_concurrent`] fan-out.
#[derive(Debug, Clone)]
pub struct ConcurrentSolve {
    /// The solution vector.
    pub x: Vec<f64>,
    /// The solver's report (iterations, residual, modelled cost).
    pub report: SolveReport,
}

/// Outcome of a [`solve_concurrent`] call.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Where the solves executed (accelerator operator or GPU model).
    pub target: Target,
    /// Per-right-hand-side results, in input order.
    pub solves: Vec<ConcurrentSolve>,
}

/// Solves `A·x = b` by CG for every right-hand side in `rhs`, sharing
/// one cached programmed operator across all solves and fanning the
/// sessions out over scoped host threads (`config.threads`, `None` =
/// machine parallelism).
///
/// The cache is consulted once per right-hand side *before* any solve
/// spawns, so the counter outcome is deterministic: k solves of an
/// uncached operator are exactly 1 miss (one programming) plus k−1
/// hits. Matrices that block poorly route to the GPU model via
/// [`choose_target`] and never touch the cache — nothing would be
/// programmed for them.
///
/// Every returned solution is bitwise identical to the one a
/// freshly-programmed sequential platform produces for the same
/// right-hand side, regardless of thread count.
///
/// # Errors
///
/// Returns [`AlignError`] if the exact engine rejects a non-finite
/// blocked value.
///
/// # Panics
///
/// Panics if any right-hand side's length differs from the matrix
/// dimension.
pub fn solve_concurrent(
    cache: &OperatorCache,
    a: &Csr,
    config: &AcceleratorConfig,
    engine: &EngineSpec,
    rhs: &[Vec<f64>],
    opts: &SolveOptions,
) -> Result<ConcurrentOutcome, AlignError> {
    let _span = memsci_telemetry::span("service/solve_concurrent");
    let n = a.rows();
    for b in rhs {
        assert_eq!(b.len(), n, "rhs length");
    }
    let blocked = BlockedMatrix::block(a, &BlockingConfig::default());
    let target = choose_target(&blocked, config);
    let threads = memsci_exec::worker_count(config.threads);
    let sessions: Vec<SessionPlatform> = match target {
        Target::Accelerator => {
            // One lookup per solve, serially: deterministic hit/miss
            // accounting no matter how the solves interleave below.
            let mut ops = Vec::with_capacity(rhs.len());
            for _ in rhs {
                ops.push(cache.get_or_program(a, config, engine)?);
            }
            ops.iter().map(SharedOperator::open_session).collect()
        }
        Target::Gpu => rhs
            .iter()
            .map(|_| SessionPlatform::Gpu(GpuPlatform::new(a.clone())))
            .collect(),
    };
    let solves = run_sessions(sessions, rhs, opts, threads);
    Ok(ConcurrentOutcome { target, solves })
}

/// Runs one CG solve per (session, rhs) pair on scoped host threads,
/// returning results in input order.
fn run_sessions(
    sessions: Vec<SessionPlatform>,
    rhs: &[Vec<f64>],
    opts: &SolveOptions,
    threads: usize,
) -> Vec<ConcurrentSolve> {
    // Hand each task exclusive ownership of its session through a
    // mutex: `parallel_tasks` shares its closure immutably, and task
    // indices are distinct, so each lock is uncontended.
    let slots: Vec<Mutex<Option<SessionPlatform>>> =
        sessions.into_iter().map(|s| Mutex::new(Some(s))).collect();
    memsci_exec::parallel_tasks(threads, rhs.len(), |i| {
        let mut session = slots[i]
            .lock()
            .expect("session lock")
            .take()
            .expect("each session is taken once");
        let mut x = vec![0.0; rhs[i].len()];
        let report = cg(&mut session, &rhs[i], &mut x, opts);
        ConcurrentSolve { x, report }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_sparse::generate::poisson2d;

    fn opts() -> SolveOptions {
        SolveOptions::with_tol(1e-9)
    }

    #[test]
    fn cache_hits_after_first_program() {
        let a = poisson2d(12, 12);
        let cache = OperatorCache::with_capacity(2);
        let config = AcceleratorConfig::with_banks(2);
        for _ in 0..3 {
            cache
                .get_or_program(&a, &config, &EngineSpec::Fast)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_are_distinct_operators() {
        let a = poisson2d(12, 12);
        let cache = OperatorCache::with_capacity(4);
        cache
            .get_or_program(&a, &AcceleratorConfig::with_banks(2), &EngineSpec::Fast)
            .unwrap();
        cache
            .get_or_program(&a, &AcceleratorConfig::with_banks(4), &EngineSpec::Fast)
            .unwrap();
        cache
            .get_or_program(
                &a,
                &AcceleratorConfig::with_banks(2),
                &EngineSpec::Exact(ExactOptions::default()),
            )
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn host_knobs_do_not_split_the_cache() {
        let a = poisson2d(12, 12);
        let cache = OperatorCache::with_capacity(2);
        let mut c1 = AcceleratorConfig::with_banks(2);
        c1.threads = Some(1);
        let mut c4 = AcceleratorConfig::with_banks(2);
        c4.threads = Some(4);
        c4.overlap = Some(true);
        cache.get_or_program(&a, &c1, &EngineSpec::Fast).unwrap();
        cache.get_or_program(&a, &c4, &EngineSpec::Fast).unwrap();
        assert_eq!(cache.stats().hits, 1, "threads/overlap are not identity");
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let cache = OperatorCache::with_capacity(2);
        let config = AcceleratorConfig::with_banks(2);
        let a1 = poisson2d(8, 8);
        let a2 = poisson2d(9, 9);
        let a3 = poisson2d(10, 10);
        cache
            .get_or_program(&a1, &config, &EngineSpec::Fast)
            .unwrap();
        cache
            .get_or_program(&a2, &config, &EngineSpec::Fast)
            .unwrap();
        // Freshen a1, then insert a3: a2 is the LRU victim.
        cache
            .get_or_program(&a1, &config, &EngineSpec::Fast)
            .unwrap();
        cache
            .get_or_program(&a3, &config, &EngineSpec::Fast)
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // a1 is still resident; a2 must re-program.
        cache
            .get_or_program(&a1, &config, &EngineSpec::Fast)
            .unwrap();
        assert_eq!(cache.stats().hits, 2);
        cache
            .get_or_program(&a2, &config, &EngineSpec::Fast)
            .unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn concurrent_solves_share_one_operator() {
        let a = poisson2d(14, 14);
        let n = a.rows();
        let cache = OperatorCache::with_capacity(2);
        let config = AcceleratorConfig::with_banks(2);
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|j| (0..n).map(|i| ((i + j) as f64 * 0.13).sin()).collect())
            .collect();
        let out = solve_concurrent(&cache, &a, &config, &EngineSpec::Fast, &rhs, &opts()).unwrap();
        assert_eq!(out.target, Target::Accelerator);
        assert_eq!(out.solves.len(), 4);
        for s in &out.solves {
            assert!(s.report.converged);
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, 4);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn poorly_blocking_matrices_route_to_the_gpu() {
        // An identity never blocks; the dispatcher must refuse the
        // crossbars and the cache must stay untouched.
        let a = Csr::identity(256);
        let cache = OperatorCache::with_capacity(2);
        let config = AcceleratorConfig::with_banks(2);
        let rhs = vec![vec![1.0; 256]; 2];
        let out = solve_concurrent(&cache, &a, &config, &EngineSpec::Fast, &rhs, &opts()).unwrap();
        assert_eq!(out.target, Target::Gpu);
        assert!(out.solves.iter().all(|s| s.report.converged));
        assert_eq!(cache.stats().lookups, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn operators_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedOperator>();
        assert_send_sync::<FastOperator>();
        assert_send_sync::<ExactOperator>();
        assert_send_sync::<MultiOperator>();
        assert_send_sync::<OperatorCache>();
    }

    #[test]
    fn fingerprint_distinguishes_values_and_structure() {
        let config = AcceleratorConfig::default();
        let a = poisson2d(8, 8);
        let fp = operator_fingerprint(&a, &config, &EngineSpec::Fast);
        // Same content fingerprints identically.
        assert_eq!(
            fp,
            operator_fingerprint(&poisson2d(8, 8), &config, &EngineSpec::Fast)
        );
        // A different matrix, engine, or option set does not.
        assert_ne!(
            fp,
            operator_fingerprint(&poisson2d(9, 8), &config, &EngineSpec::Fast)
        );
        assert_ne!(
            fp,
            operator_fingerprint(&a, &config, &EngineSpec::Exact(ExactOptions::default()))
        );
        let seeded = EngineSpec::Exact(ExactOptions {
            seed: 1,
            ..Default::default()
        });
        assert_ne!(
            operator_fingerprint(&a, &config, &EngineSpec::Exact(ExactOptions::default())),
            operator_fingerprint(&a, &config, &seeded)
        );
    }
}
