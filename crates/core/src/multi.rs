//! Multi-accelerator execution (§VI).
//!
//! "On problems that are too large for a single accelerator, the MVM can
//! be split in a manner analogous to the partitioning on GPUs: each
//! accelerator handles a portion of the MVM, and the accelerators
//! synchronize between iterations." This platform partitions the matrix
//! row-wise across several accelerator instances; each device computes
//! its row stripe (reading the full `x`), and a synchronization
//! exchange puts the produced stripes back together before the next
//! kernel.

use std::sync::Arc;

use memsci_exec::ExecStats;
use memsci_solvers::platform::{axpby_f64, dot_f64, Platform};
use memsci_sparse::blocking::{BlockedMatrix, BlockingConfig};
use memsci_sparse::{Coo, Csr};

use crate::config::AcceleratorConfig;
use crate::engine::{AcceleratorPlatform, FastOperator};
use crate::pipeline::{self, PipelineSpec};

/// One device's stripe session plus its reusable output buffer.
#[derive(Debug, Clone)]
struct DeviceSlot {
    /// Session over the stripe operator embedded in an n×n matrix
    /// (column indices, and the incoming x, keep their global meaning).
    dev: AcceleratorPlatform,
    /// Reusable per-device output vector, lent to the device lane each
    /// kernel and restored afterwards so iterations run allocation-free.
    buf: Vec<f64>,
}

/// The immutable programmed state of a multi-accelerator ensemble: one
/// programmed stripe operator per device, shareable across sessions.
#[derive(Debug)]
pub struct MultiOperator {
    n: usize,
    devices: Vec<Arc<FastOperator>>,
    /// Seconds to exchange produced vector stripes between iterations.
    sync_time: f64,
    /// Host worker threads for the per-device loop (`None` = machine
    /// parallelism), taken from the accelerator configuration.
    threads: Option<usize>,
    /// The ensemble's main diagonal, assembled once at program time.
    diag: Arc<[f64]>,
}

impl MultiOperator {
    /// Splits a matrix row-wise over `devices` accelerators and
    /// programs each stripe independently, so every device only spends
    /// clusters on its own rows. `sync_time` models the
    /// inter-accelerator exchange after each kernel (e.g. over NVLink-
    /// class links).
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or the matrix is not square.
    pub fn program(a: &Csr, devices: usize, config: AcceleratorConfig, sync_time: f64) -> Self {
        assert!(devices > 0, "at least one device");
        let (rows, cols) = a.shape();
        assert_eq!(rows, cols, "platform matrices must be square");
        let n = rows;
        let stripe = n.div_ceil(devices);
        let mut out = Vec::with_capacity(devices);
        for d in 0..devices {
            let r0 = d * stripe;
            if r0 >= n {
                break;
            }
            let r1 = ((d + 1) * stripe).min(n);
            // Embed the stripe in an n×n matrix so column indices (and
            // the incoming x) keep their global meaning.
            let mut coo = Coo::new(n, n);
            for (r, c, v) in a.iter() {
                if r >= r0 && r < r1 {
                    coo.push(r, c, v).expect("in range");
                }
            }
            let blocked = BlockedMatrix::block(&coo.to_csr(), &BlockingConfig::default());
            out.push(Arc::new(FastOperator::program(&blocked, config.clone())));
        }
        // Stripe diagonals add elementwise in device order — the same
        // fold the per-call path used to perform.
        let mut diag = vec![0.0; n];
        for dev in &out {
            for (i, v) in dev.diagonal().iter().enumerate() {
                diag[i] += v;
            }
        }
        MultiOperator {
            n,
            devices: out,
            sync_time,
            threads: config.threads,
            diag: diag.into(),
        }
    }

    /// Problem dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of participating accelerators.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The ensemble's main diagonal, precomputed at program time.
    pub fn diagonal(&self) -> Arc<[f64]> {
        Arc::clone(&self.diag)
    }
}

/// Several accelerators jointly solving one system: a solve session
/// over a shared [`MultiOperator`], owning one stripe session (scratch
/// + cost accumulators) per device.
#[derive(Debug, Clone)]
pub struct MultiAcceleratorPlatform {
    op: Arc<MultiOperator>,
    devices: Vec<DeviceSlot>,
    time: f64,
    energy: f64,
    last_exec: ExecStats,
}

impl MultiAcceleratorPlatform {
    /// Splits a matrix row-wise over `devices` accelerators: programs a
    /// fresh ensemble operator and opens a session on it.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or the matrix is not square.
    pub fn new(a: &Csr, devices: usize, config: AcceleratorConfig, sync_time: f64) -> Self {
        Self::from_operator(Arc::new(MultiOperator::program(
            a, devices, config, sync_time,
        )))
    }

    /// Opens a fresh solve session on an already-programmed ensemble.
    /// No crossbar writes happen here.
    pub fn from_operator(op: Arc<MultiOperator>) -> Self {
        let devices = op
            .devices
            .iter()
            .map(|dev| DeviceSlot {
                dev: AcceleratorPlatform::from_operator(Arc::clone(dev)),
                buf: Vec::new(),
            })
            .collect();
        MultiAcceleratorPlatform {
            op,
            devices,
            time: 0.0,
            energy: 0.0,
            last_exec: ExecStats::default(),
        }
    }

    /// The shared programmed ensemble behind this session.
    pub fn operator(&self) -> &Arc<MultiOperator> {
        &self.op
    }

    /// Number of participating accelerators.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Clusters programmed across all devices.
    pub fn cluster_count(&self) -> usize {
        self.devices.iter().map(|s| s.dev.cluster_count()).sum()
    }

    /// Drops every reusable buffer on this platform and its devices so
    /// the next kernel starts cold. Results are unaffected — warm and
    /// cold kernels are bit-identical.
    pub fn clear_scratch(&mut self) {
        for slot in &mut self.devices {
            slot.buf = Vec::new();
            slot.dev.clear_scratch();
        }
    }

    /// Host execution stats of the most recent per-device parallel
    /// section ([`spmv`](Platform::spmv) or
    /// [`spmv_transpose`](Platform::spmv_transpose)).
    pub fn last_exec(&self) -> ExecStats {
        self.last_exec
    }

    /// Runs one kernel on every device through the staged pipeline's
    /// cluster lane (the devices are the shards; each runs its own
    /// residual pass internally), then merges serially in device order —
    /// the exact reduction order of a serial device loop.
    fn device_kernel(
        &mut self,
        x: &[f64],
        y: &mut [f64],
        kernel: impl Fn(&mut AcceleratorPlatform, &[f64], &mut [f64]) + Sync,
    ) {
        assert_eq!(x.len(), self.op.n, "x length");
        assert_eq!(y.len(), self.op.n, "y length");
        y.fill(0.0);
        let n = self.op.n;
        let spec = PipelineSpec {
            threads: memsci_exec::worker_count(self.op.threads),
            overlap: false,
        };
        let devices = &mut self.devices;
        let mut worst = 0.0f64;
        let mut energy = 0.0f64;
        let (results, exec) = pipeline::run_cluster_only(
            &spec,
            "multi/device_kernel",
            devices.len(),
            |threads| {
                memsci_exec::parallel_map_mut(threads, devices, |_, slot| {
                    let t0 = slot.dev.elapsed_seconds();
                    let e0 = slot.dev.energy_joules();
                    let mut buf = std::mem::take(&mut slot.buf);
                    buf.clear();
                    buf.resize(n, 0.0);
                    kernel(&mut slot.dev, x, &mut buf);
                    (
                        buf,
                        slot.dev.elapsed_seconds() - t0,
                        slot.dev.energy_joules() - e0,
                    )
                })
            },
            |results| {
                // Devices run in parallel: wall time is the slowest
                // stripe plus the synchronization exchange; energies add.
                for (buf, dt, de) in results {
                    for (yi, bi) in y.iter_mut().zip(buf) {
                        *yi += bi;
                    }
                    worst = worst.max(*dt);
                    energy += de;
                }
            },
        );
        self.energy += energy;
        self.time += worst + self.op.sync_time;
        self.last_exec = exec;
        // Return the lent buffers so the next kernel runs warm.
        for (slot, (buf, _, _)) in self.devices.iter_mut().zip(results) {
            slot.buf = buf;
        }
    }
}

impl Platform for MultiAcceleratorPlatform {
    fn n(&self) -> usize {
        self.op.n
    }

    fn spmv(&mut self, x: &[f64], y: &mut [f64]) {
        self.device_kernel(x, y, |dev, x, buf| dev.spmv(x, buf));
    }

    fn spmv_transpose(&mut self, x: &[f64], y: &mut [f64]) {
        self.device_kernel(x, y, |dev, x, buf| dev.spmv_transpose(x, buf));
    }

    fn spmv_batch(&mut self, xs: &[&[f64]], ys: &mut [Vec<f64>]) {
        assert_eq!(xs.len(), ys.len(), "batch rhs/output count mismatch");
        if xs.is_empty() {
            return;
        }
        let k = xs.len();
        let _span = memsci_telemetry::span("multi/spmv_batch");
        let n = self.op.n;
        for x in xs {
            assert_eq!(x.len(), n, "x length");
        }
        for y in ys.iter_mut() {
            y.clear();
            y.resize(n, 0.0);
        }
        let spec = PipelineSpec {
            threads: memsci_exec::worker_count(self.op.threads),
            overlap: false,
        };
        let devices = &mut self.devices;
        let sync_time = self.op.sync_time;
        let mut time = self.time;
        let mut total_energy = self.energy;
        // One device fan-out streams the whole batch: each device's
        // stripe engine (programmed once at build) runs all k vectors
        // back to back with its plans and scratch warm, recording a
        // per-vector (stripe, time, energy) triple. The merge then
        // walks vector-major through the device-major results,
        // reproducing the reduction and accounting order of k solo
        // kernels: stripes add in device order, wall time is the
        // slowest stripe plus one exchange per vector.
        let (results, exec) = pipeline::run_batch_cluster_only(
            &spec,
            "multi/spmv_batch",
            devices.len(),
            k,
            |threads| {
                memsci_exec::parallel_map_mut(threads, devices, |_, slot| {
                    let mut per_vec = Vec::with_capacity(k);
                    for x in xs {
                        let t0 = slot.dev.elapsed_seconds();
                        let e0 = slot.dev.energy_joules();
                        let mut buf = std::mem::take(&mut slot.buf);
                        buf.clear();
                        buf.resize(n, 0.0);
                        slot.dev.spmv(x, &mut buf);
                        per_vec.push((
                            buf,
                            slot.dev.elapsed_seconds() - t0,
                            slot.dev.energy_joules() - e0,
                        ));
                    }
                    per_vec
                })
            },
            |results| {
                for (j, y) in ys.iter_mut().enumerate() {
                    let mut worst = 0.0f64;
                    let mut energy = 0.0f64;
                    for per_vec in results {
                        let (buf, dt, de) = &per_vec[j];
                        for (yi, bi) in y.iter_mut().zip(buf) {
                            *yi += bi;
                        }
                        worst = worst.max(*dt);
                        energy += de;
                    }
                    total_energy += energy;
                    time += worst + sync_time;
                }
            },
        );
        self.time = time;
        self.energy = total_energy;
        self.last_exec = exec;
        // Return the lent buffers so the next kernel runs warm.
        for (slot, mut per_vec) in self.devices.iter_mut().zip(results) {
            if let Some((buf, _, _)) = per_vec.pop() {
                slot.buf = buf;
            }
        }
    }

    fn dot(&mut self, x: &[f64], y: &[f64]) -> f64 {
        // Each device reduces its stripe locally; one exchange combines.
        let mut worst = 0.0f64;
        for slot in &mut self.devices {
            let dev = &mut slot.dev;
            let t0 = dev.elapsed_seconds();
            let e0 = dev.energy_joules();
            let _ = dev.dot(x, y); // per-device cost model
            worst = worst.max(dev.elapsed_seconds() - t0);
            self.energy += dev.energy_joules() - e0;
        }
        self.time += worst + self.op.sync_time;
        dot_f64(x, y)
    }

    fn axpby(&mut self, alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
        let mut worst = 0.0f64;
        for slot in &mut self.devices {
            let dev = &mut slot.dev;
            let t0 = dev.elapsed_seconds();
            let e0 = dev.energy_joules();
            // Reuse the device buffer as the per-device cost-model
            // operand instead of cloning y every call.
            let mut scratch = std::mem::take(&mut slot.buf);
            scratch.clear();
            scratch.extend_from_slice(y);
            dev.axpby(alpha, x, beta, &mut scratch);
            slot.buf = scratch;
            worst = worst.max(dev.elapsed_seconds() - t0);
            self.energy += dev.energy_joules() - e0;
        }
        self.time += worst;
        axpby_f64(alpha, x, beta, y);
    }

    fn diagonal(&self) -> Arc<[f64]> {
        self.op.diagonal()
    }

    fn elapsed_seconds(&self) -> f64 {
        self.time
    }

    fn energy_joules(&self) -> f64 {
        self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsci_solvers::cg::cg;
    use memsci_solvers::SolveOptions;
    use memsci_sparse::generate::{banded, make_diagonally_dominant, symmetrize, ValueModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spd(n: usize) -> Csr {
        let mut rng = StdRng::seed_from_u64(31);
        let base = banded(n, 10, 0.8, ValueModel::with_spread(8), &mut rng);
        make_diagonally_dominant(&symmetrize(&base), 1.3)
    }

    #[test]
    fn multi_matches_single_numerically() {
        let a = spd(800);
        let mut multi =
            MultiAcceleratorPlatform::new(&a, 3, AcceleratorConfig::with_banks(8), 2e-6);
        assert_eq!(multi.device_count(), 3);
        assert!(multi.cluster_count() > 0);
        let x: Vec<f64> = (0..800).map(|i| (i as f64 * 0.11).sin()).collect();
        let mut y1 = vec![0.0; 800];
        let mut y2 = vec![0.0; 800];
        multi.spmv(&x, &mut y1);
        a.spmv(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
        assert_eq!(&*multi.diagonal(), a.diagonal().as_slice());
    }

    #[test]
    fn cg_converges_on_multi_device() {
        let a = spd(600);
        let mut multi =
            MultiAcceleratorPlatform::new(&a, 4, AcceleratorConfig::with_banks(4), 2e-6);
        let b = vec![1.0; 600];
        let mut x = vec![0.0; 600];
        let rep = cg(&mut multi, &b, &mut x, &SolveOptions::with_tol(1e-9));
        assert!(rep.converged);
        assert!(rep.time_seconds > 0.0 && rep.energy_joules > 0.0);
    }

    #[test]
    fn more_devices_do_not_slow_the_stripe() {
        // Splitting reduces (or at worst maintains) the slowest stripe's
        // cluster time, at the cost of synchronization.
        let a = spd(1200);
        let x = vec![1.0; 1200];
        let mut y = vec![0.0; 1200];
        let mut one = MultiAcceleratorPlatform::new(&a, 1, AcceleratorConfig::with_banks(2), 0.0);
        one.spmv(&x, &mut y);
        let t1 = one.elapsed_seconds();
        let mut four = MultiAcceleratorPlatform::new(&a, 4, AcceleratorConfig::with_banks(2), 0.0);
        four.spmv(&x, &mut y);
        let t4 = four.elapsed_seconds();
        assert!(t4 <= t1 * 1.05, "four devices {t4} vs one {t1}");
    }

    #[test]
    fn parallel_devices_are_bit_identical_to_serial() {
        let a = spd(500);
        let x: Vec<f64> = (0..500).map(|i| (i as f64 * 0.17).cos() * 2.0).collect();
        let mut serial_cfg = AcceleratorConfig::with_banks(4);
        serial_cfg.threads = Some(1);
        let mut serial = MultiAcceleratorPlatform::new(&a, 3, serial_cfg, 2e-6);
        let mut y_serial = vec![0.0; 500];
        serial.spmv(&x, &mut y_serial);
        let mut yt_serial = vec![0.0; 500];
        serial.spmv_transpose(&x, &mut yt_serial);
        for threads in [2, 4] {
            let mut cfg = AcceleratorConfig::with_banks(4);
            cfg.threads = Some(threads);
            let mut multi = MultiAcceleratorPlatform::new(&a, 3, cfg, 2e-6);
            let mut y = vec![0.0; 500];
            multi.spmv(&x, &mut y);
            let mut yt = vec![0.0; 500];
            multi.spmv_transpose(&x, &mut yt);
            for (u, v) in y.iter().zip(&y_serial).chain(yt.iter().zip(&yt_serial)) {
                assert_eq!(u.to_bits(), v.to_bits(), "threads={threads}");
            }
            assert_eq!(
                multi.elapsed_seconds().to_bits(),
                serial.elapsed_seconds().to_bits()
            );
            assert_eq!(
                multi.energy_joules().to_bits(),
                serial.energy_joules().to_bits()
            );
            let exec = multi.last_exec();
            assert_eq!(exec.threads, threads);
            assert_eq!(exec.tasks, 3);
        }
    }

    #[test]
    fn sync_cost_is_charged_per_kernel() {
        let a = spd(300);
        let mut multi =
            MultiAcceleratorPlatform::new(&a, 2, AcceleratorConfig::with_banks(2), 1e-3);
        let x = vec![1.0; 300];
        let mut y = vec![0.0; 300];
        multi.spmv(&x, &mut y);
        assert!(multi.elapsed_seconds() >= 1e-3);
    }
}
